//===- runtime/ThreadExecutor.cpp - Real-thread parallel executor ----------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadExecutor.h"

#include "resilience/FaultInjector.h"
#include "runtime/HeapSnapshot.h"
#include "runtime/TaskContext.h"
#include "support/Format.h"
#include "support/Watchdog.h"

#include <algorithm>

#include <atomic>
#include <cassert>
#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

using namespace bamboo;
using namespace bamboo::runtime;

namespace {

struct Invocation {
  ir::TaskId Task = ir::InvalidId;
  int InstanceIdx = -1;
  std::vector<Object *> Params;
  std::map<std::string, TagInstance *> ConstraintTags;
};

struct Delivery {
  Object *Obj = nullptr;
  int InstanceIdx = -1;
  ir::ParamId Param = 0;
};

} // namespace

struct ThreadExecutor::Impl {
  const BoundProgram &BP;
  const ir::Program &Prog;
  const RoutingTable &Routes;
  const machine::Layout &L;
  Heap &TheHeap;
  const ThreadExecOptions &Opts;

  struct Core {
    std::mutex InboxMutex;
    std::deque<Delivery> Inbox;
    // Owned exclusively by the core's worker thread.
    std::deque<Invocation> Ready;
    std::vector<std::vector<Object *>> *ParamSets = nullptr;
    std::map<ir::TaskId, size_t> RoundRobin;
    /// End timestamp (ns) of the last completed invocation, for idle-span
    /// tracing. Owned by the core's worker thread.
    uint64_t LastEnd = 0;
  };

  std::vector<Core> Cores;
  /// One parameter-set table per placed instance (touched only by the
  /// hosting core's thread).
  std::vector<std::vector<std::vector<Object *>>> InstanceSets;
  /// Outstanding work: in-flight deliveries + enqueued invocations +
  /// executing bodies. Zero means quiescent.
  std::atomic<int64_t> Outstanding{0};
  std::atomic<bool> Done{false};
  /// Exit effects and tag mutations are serialized: they touch shared tag
  /// instances. Body execution (the expensive part) stays parallel.
  std::mutex ExitMutex;

  std::atomic<uint64_t> Invocations{0};
  std::atomic<uint64_t> Allocated{0};
  std::atomic<uint64_t> LockRetries{0};

  // Resilience state. Scheduled permanent core failures apply from the
  // start of a host run (no virtual clock to schedule them on): dead
  // cores' workers exit immediately and — with recovery on — their
  // instances are re-homed over the routing table's failover order.
  resilience::FaultInjector Injector;
  std::vector<char> CoreAlive;
  /// Effective host core per placed instance (layout placement, rewritten
  /// by failover re-homing). Immutable once workers start.
  std::vector<int> InstanceCore;
  std::atomic<uint64_t> Drops{0}, Dups{0}, Delays{0}, LockFaults{0};
  std::atomic<uint64_t> Retransmits{0}, Escalations{0}, LostMessages{0};
  uint64_t CoreFails = 0, InstancesMigrated = 0;
  /// Per-core sweep counter keying the clock-free lock-fault draws.
  std::atomic<uint64_t> SweepCounter{0};

  // Pause-the-world checkpoint protocol: the monitor requests a pause,
  // every live worker parks at its next step boundary (holding no object
  // locks, no body executing), the monitor snapshots alone, then releases.
  std::atomic<bool> PauseRequested{false};
  std::atomic<int> PausedWorkers{0};
  std::atomic<int> LiveWorkers{0};

  /// Trace clock base: run() start. Timestamps are ns since this point.
  std::chrono::steady_clock::time_point TraceT0;

  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - TraceT0)
            .count());
  }

  Impl(const BoundProgram &BP, const RoutingTable &Routes,
       const machine::Layout &L, Heap &TheHeap,
       const ThreadExecOptions &Opts)
      : BP(BP), Prog(BP.program()), Routes(Routes), L(L), TheHeap(TheHeap),
        Opts(Opts), Cores(static_cast<size_t>(L.NumCores)) {
    InstanceSets.resize(L.Instances.size());
    for (size_t I = 0; I < L.Instances.size(); ++I)
      InstanceSets[I].resize(
          Prog.taskOf(L.Instances[I].Task).Params.size());
  }

  bool guardAdmits(const ir::TaskParam &Param, const Object &Obj) const {
    if (Obj.Class != Param.Class || !Param.Guard->evaluate(Obj.flags()))
      return false;
    for (const ir::TagConstraint &TC : Param.Tags)
      if (!Obj.tagOfType(TC.Type))
        return false;
    return true;
  }

  void send(Object *Obj, int FromCore) {
    int Node = Routes.nodeOf(*Obj);
    for (const RouteDest &Dest : Routes.destsAt(Node)) {
      size_t Pick = 0;
      switch (Dest.Kind) {
      case DistributionKind::Single:
        break;
      case DistributionKind::RoundRobin: {
        Core &From = Cores[static_cast<size_t>(
            FromCore >= 0 ? FromCore : 0)];
        auto [It, Inserted] = From.RoundRobin.try_emplace(
            Dest.Task, FromCore >= 0 ? static_cast<size_t>(FromCore) : 0);
        (void)Inserted;
        Pick = It->second++ % Dest.Instances.size();
        break;
      }
      case DistributionKind::TagHash: {
        TagInstance *Inst = Obj->tagOfType(Dest.HashTagType);
        Pick = Inst ? static_cast<size_t>(Inst->Id) % Dest.Instances.size()
                    : 0;
        break;
      }
      }
      int InstanceIdx = Dest.Instances[Pick].first;
      // Route to the instance's *effective* home — failover migration may
      // have moved it off its layout placement.
      int CoreIdx = InstanceCore[static_cast<size_t>(InstanceIdx)];
      int Copies = 1;
      if (Injector.active() && FromCore >= 0 && FromCore != CoreIdx) {
        // The host has no virtual clock: the ack/retransmit exchange is
        // resolved inline (Now=0; attempt numbers still vary the draws).
        bool Lost = false;
        for (int Attempt = 0;; ++Attempt) {
          resilience::FaultInjector::SendDecision D =
              Injector.onSend(0, FromCore, CoreIdx, Obj->Id, Attempt);
          if (D.Drop) {
            Drops.fetch_add(1, std::memory_order_relaxed);
            if (Opts.Trace)
              Opts.Trace->faultInject(
                  nowNs(), FromCore,
                  static_cast<int>(resilience::FaultKind::MsgDrop),
                  static_cast<int64_t>(Obj->Id));
            if (!Opts.Recovery) {
              LostMessages.fetch_add(1, std::memory_order_relaxed);
              Lost = true;
              break;
            }
            if (Attempt >= machine::MachineConfig{}.MaxSendRetries) {
              Escalations.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            Retransmits.fetch_add(1, std::memory_order_relaxed);
            if (Opts.Trace)
              Opts.Trace->retransmit(nowNs(), FromCore, CoreIdx,
                                     static_cast<int64_t>(Obj->Id),
                                     static_cast<uint64_t>(Attempt) + 1);
            continue;
          }
          if (D.Duplicate) {
            Dups.fetch_add(1, std::memory_order_relaxed);
            ++Copies;
            if (Opts.Trace)
              Opts.Trace->faultInject(
                  nowNs(), FromCore,
                  static_cast<int>(resilience::FaultKind::MsgDup),
                  static_cast<int64_t>(Obj->Id));
          }
          if (D.Delay) {
            // Counted only: host messages have no modeled latency to add
            // the delay to.
            Delays.fetch_add(1, std::memory_order_relaxed);
            if (Opts.Trace)
              Opts.Trace->faultInject(
                  nowNs(), FromCore,
                  static_cast<int>(resilience::FaultKind::MsgDelay),
                  static_cast<int64_t>(Obj->Id));
          }
          break;
        }
        // A lost transfer never enters Outstanding — quiescence is then
        // reached with work missing, and run() reports the damage.
        if (Lost)
          continue;
      }
      for (int Copy = 0; Copy < Copies; ++Copy) {
        Outstanding.fetch_add(1, std::memory_order_acq_rel);
        // Cross-core transfers only, mirroring the virtual machine's
        // notion of a message; the host has no mesh, so hops/bytes are
        // zero.
        if (Opts.Trace && FromCore >= 0 && FromCore != CoreIdx)
          Opts.Trace->send(nowNs(), FromCore, CoreIdx,
                           static_cast<int64_t>(Obj->Id), /*Hops=*/0,
                           /*Bytes=*/0);
        Core &To = Cores[static_cast<size_t>(CoreIdx)];
        std::lock_guard<std::mutex> Guard(To.InboxMutex);
        To.Inbox.push_back(Delivery{Obj, InstanceIdx, Dest.Param});
      }
    }
  }

  void matchParams(Core &C, int InstanceIdx, const ir::TaskDecl &Task,
                   size_t Next, Invocation &Partial, ir::ParamId FixedParam,
                   Object *FixedObj, bool DedupeReady) {
    if (Next == Task.Params.size()) {
      if (DedupeReady) {
        // Re-delivery path: skip combinations already pending, so
        // re-enumeration never double-builds (and never double-counts
        // Outstanding). Ready is owned by this core's thread.
        for (const Invocation &Pending : C.Ready)
          if (Pending.InstanceIdx == Partial.InstanceIdx &&
              Pending.Params == Partial.Params)
            return;
      }
      Outstanding.fetch_add(1, std::memory_order_acq_rel);
      C.Ready.push_back(Partial);
      return;
    }
    std::vector<Object *> Candidates;
    if (static_cast<ir::ParamId>(Next) == FixedParam)
      Candidates.push_back(FixedObj);
    else
      Candidates = InstanceSets[static_cast<size_t>(InstanceIdx)][Next];
    for (Object *Obj : Candidates) {
      bool Dup = false;
      for (Object *Used : Partial.Params)
        Dup = Dup || Used == Obj;
      if (Dup || !guardAdmits(Task.Params[Next], *Obj))
        continue;
      auto Saved = Partial.ConstraintTags;
      bool TagsOk = true;
      for (const ir::TagConstraint &TC : Task.Params[Next].Tags) {
        auto Bound = Partial.ConstraintTags.find(TC.Var);
        TagInstance *Inst = Obj->tagOfType(TC.Type);
        if (Bound != Partial.ConstraintTags.end()) {
          if (std::find(Obj->Tags.begin(), Obj->Tags.end(),
                        Bound->second) == Obj->Tags.end())
            TagsOk = false;
        } else if (Inst) {
          Partial.ConstraintTags.emplace(TC.Var, Inst);
        } else {
          TagsOk = false;
        }
        if (!TagsOk)
          break;
      }
      if (!TagsOk) {
        Partial.ConstraintTags = std::move(Saved);
        continue;
      }
      Partial.Params.push_back(Obj);
      matchParams(C, InstanceIdx, Task, Next + 1, Partial, FixedParam,
                  FixedObj, DedupeReady);
      Partial.Params.pop_back();
      Partial.ConstraintTags = std::move(Saved);
    }
  }

  void drainInbox(int CoreIdx) {
    Core &C = Cores[static_cast<size_t>(CoreIdx)];
    std::deque<Delivery> Batch;
    {
      std::lock_guard<std::mutex> Guard(C.InboxMutex);
      Batch.swap(C.Inbox);
    }
    for (const Delivery &D : Batch) {
      auto &Set = InstanceSets[static_cast<size_t>(D.InstanceIdx)]
                              [static_cast<size_t>(D.Param)];
      // Same re-delivery semantics as TileExecutor::deliver: an object
      // already in the parameter set re-arrives after a flag/tag
      // transition, so re-enumerate (deduplicating against pending
      // invocations) instead of skipping enumeration entirely.
      bool Present =
          std::find(Set.begin(), Set.end(), D.Obj) != Set.end();
      if (!Present)
        Set.push_back(D.Obj);
      if (Opts.Trace)
        Opts.Trace->deliver(nowNs(), CoreIdx,
                            static_cast<int64_t>(D.Obj->Id));
      ir::TaskId TaskId =
          L.Instances[static_cast<size_t>(D.InstanceIdx)].Task;
      const ir::TaskDecl &Task = Prog.taskOf(TaskId);
      if (guardAdmits(Task.Params[static_cast<size_t>(D.Param)], *D.Obj)) {
        Invocation Partial;
        Partial.Task = TaskId;
        Partial.InstanceIdx = D.InstanceIdx;
        matchParams(C, D.InstanceIdx, Task, 0, Partial, D.Param, D.Obj,
                    /*DedupeReady=*/Present);
      }
      Outstanding.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  bool stillValid(const Invocation &Inv) const {
    const ir::TaskDecl &Task = Prog.taskOf(Inv.Task);
    for (size_t P = 0; P < Inv.Params.size(); ++P) {
      if (!guardAdmits(Task.Params[P], *Inv.Params[P]))
        return false;
      for (const ir::TagConstraint &TC : Task.Params[P].Tags) {
        auto It = Inv.ConstraintTags.find(TC.Var);
        if (It == Inv.ConstraintTags.end() ||
            std::find(Inv.Params[P]->Tags.begin(),
                      Inv.Params[P]->Tags.end(),
                      It->second) == Inv.Params[P]->Tags.end())
          return false;
      }
    }
    return true;
  }

  /// Attempts one invocation from the core's ready queue; returns true if
  /// progress was made (an invocation ran or was dropped).
  bool step(int CoreIdx) {
    Core &C = Cores[static_cast<size_t>(CoreIdx)];
    size_t Attempts = C.Ready.size();
    while (Attempts-- > 0) {
      Invocation Inv = std::move(C.Ready.front());
      C.Ready.pop_front();
      if (!stillValid(Inv)) {
        Outstanding.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
      // An injected lock-sweep fault behaves exactly like a lost
      // all-or-nothing sweep: count a retry and requeue. Keyed by a
      // process-wide sweep counter, so the fault *rate* matches the plan
      // even though which particular sweep faults depends on host
      // interleaving (this engine's traces are nondeterministic anyway).
      if (Injector.active() &&
          Injector.lockSweepFault(
              CoreIdx, Inv.Params[0]->Id,
              SweepCounter.fetch_add(1, std::memory_order_relaxed))) {
        LockFaults.fetch_add(1, std::memory_order_relaxed);
        LockRetries.fetch_add(1, std::memory_order_relaxed);
        if (Opts.Trace) {
          Opts.Trace->faultInject(
              nowNs(), CoreIdx,
              static_cast<int>(resilience::FaultKind::LockSweep),
              static_cast<int64_t>(Inv.Params[0]->Id));
          Opts.Trace->lockRetry(nowNs(), CoreIdx, Inv.Task);
        }
        C.Ready.push_back(std::move(Inv));
        continue;
      }
      // All-or-nothing try-lock; release and retry on any conflict.
      size_t Acquired = 0;
      while (Acquired < Inv.Params.size() &&
             Inv.Params[Acquired]->tryLock())
        ++Acquired;
      if (Acquired < Inv.Params.size()) {
        for (size_t U = 0; U < Acquired; ++U)
          Inv.Params[U]->unlock();
        // Unified retry semantics: one count per failed all-or-nothing
        // sweep (see ThreadExecResult::LockRetries).
        LockRetries.fetch_add(1, std::memory_order_relaxed);
        if (Opts.Trace)
          Opts.Trace->lockRetry(nowNs(), CoreIdx, Inv.Task);
        C.Ready.push_back(std::move(Inv));
        continue;
      }
      // Re-validate under the locks (flags may have changed since the
      // advisory check).
      if (!stillValid(Inv)) {
        for (Object *Obj : Inv.Params)
          Obj->unlock();
        Outstanding.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }

      uint64_t BeginNs = 0;
      if (Opts.Trace) {
        BeginNs = nowNs();
        Opts.Trace->lockAcquire(BeginNs, CoreIdx, Inv.Task,
                                Inv.Params.size());
        // The gap since the last completion on this core was idle time.
        Opts.Trace->idle(C.LastEnd, BeginNs, CoreIdx);
        Opts.Trace->taskBegin(BeginNs, CoreIdx, Inv.Task, C.Ready.size());
      }

      // Consume from the parameter sets, run the body, apply the exit.
      auto &Sets = InstanceSets[static_cast<size_t>(Inv.InstanceIdx)];
      for (size_t P = 0; P < Inv.Params.size(); ++P)
        Sets[P].erase(
            std::remove(Sets[P].begin(), Sets[P].end(), Inv.Params[P]),
            Sets[P].end());

      uint64_t RngSeed = Opts.Seed;
      RngSeed = RngSeed * 0x9e3779b97f4a7c15ULL +
                static_cast<uint64_t>(Inv.Task + 1);
      RngSeed = RngSeed * 0xff51afd7ed558ccdULL + (Inv.Params[0]->Id + 1);
      TaskContext Ctx(BP, TheHeap, Inv.Task, Inv.Params,
                      Inv.ConstraintTags, Opts.Args, RngSeed);
      BP.bodyOf(Inv.Task)(Ctx);
      Invocations.fetch_add(1, std::memory_order_relaxed);
      Allocated.fetch_add(Ctx.newObjects().size(),
                          std::memory_order_relaxed);

      {
        std::lock_guard<std::mutex> Guard(ExitMutex);
        const ir::TaskExit &Exit =
            Prog.taskOf(Inv.Task)
                .Exits[static_cast<size_t>(Ctx.chosenExit())];
        for (size_t P = 0; P < Inv.Params.size(); ++P) {
          const ir::ParamExitEffect &Eff = Exit.Effects[P];
          Inv.Params[P]->updateFlags(Eff.Set, Eff.Clear);
          for (const ir::ExitTagAction &Action : Eff.TagActions) {
            TagInstance *Inst = Ctx.tagVar(Action.Var);
            if (!Inst)
              continue;
            if (Action.IsAdd)
              Inv.Params[P]->bindTag(Inst);
            else
              Inv.Params[P]->unbindTag(Inst);
          }
        }
      }
      for (Object *Obj : Inv.Params)
        Obj->unlock();
      if (Opts.Trace) {
        uint64_t EndNs = nowNs();
        C.LastEnd = EndNs;
        Opts.Trace->taskEnd(EndNs, CoreIdx, Inv.Task, Ctx.chosenExit());
      }

      for (const auto &[Site, Obj] : Ctx.newObjects()) {
        (void)Site;
        send(Obj, CoreIdx);
      }
      for (Object *Obj : Inv.Params)
        send(Obj, CoreIdx);
      Outstanding.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    return false;
  }

  /// Worker side of the pause protocol: park until the monitor releases
  /// the world (or the run ends). Called only at step boundaries, so a
  /// parked worker holds no object locks and has no body in flight.
  void maybePause() {
    if (!PauseRequested.load(std::memory_order_acquire))
      return;
    PausedWorkers.fetch_add(1, std::memory_order_acq_rel);
    while (PauseRequested.load(std::memory_order_acquire) &&
           !Done.load(std::memory_order_acquire))
      std::this_thread::yield();
    PausedWorkers.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Monitor side: returns true once every live worker is parked; false
  /// if the run finished first (the pause is then withdrawn).
  bool pauseWorld() {
    PauseRequested.store(true, std::memory_order_release);
    while (PausedWorkers.load(std::memory_order_acquire) <
           LiveWorkers.load(std::memory_order_acquire)) {
      if (Done.load(std::memory_order_acquire)) {
        PauseRequested.store(false, std::memory_order_release);
        return false;
      }
      std::this_thread::yield();
    }
    return true;
  }

  void resumeWorld() {
    PauseRequested.store(false, std::memory_order_release);
    while (PausedWorkers.load(std::memory_order_acquire) > 0)
      std::this_thread::yield();
  }

  void worker(int CoreIdx) {
    // Fail-stop: a failed core never dispatches. With recovery on its
    // instances were re-homed before boot, so nothing targets it; with
    // recovery off, deliveries sent here sit in the inbox (blackholed)
    // until the watchdog declares the run wedged.
    if (!CoreAlive[static_cast<size_t>(CoreIdx)])
      return;
    LiveWorkers.fetch_add(1, std::memory_order_acq_rel);
    int IdleSpins = 0;
    while (!Done.load(std::memory_order_acquire)) {
      maybePause();
      drainInbox(CoreIdx);
      if (step(CoreIdx)) {
        IdleSpins = 0;
        continue;
      }
      if (Outstanding.load(std::memory_order_acquire) == 0) {
        Done.store(true, std::memory_order_release);
        break;
      }
      if (++IdleSpins > 64) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      } else {
        std::this_thread::yield();
      }
    }
    LiveWorkers.fetch_sub(1, std::memory_order_acq_rel);
  }

  //===--------------------------------------------------------------------===//
  // Checkpoint / restore / watchdog. The world is paused (or not yet
  // started) whenever these run, so plain reads of worker-owned state are
  // safe.
  //===--------------------------------------------------------------------===//

  void saveInvocation(const Invocation &Inv,
                      resilience::ByteWriter &W) const {
    W.i32(Inv.Task);
    W.i32(Inv.InstanceIdx);
    W.u64(Inv.Params.size());
    for (Object *Obj : Inv.Params)
      W.u64(Obj->Id);
    W.u64(Inv.ConstraintTags.size());
    for (const auto &[Var, Tag] : Inv.ConstraintTags) {
      W.str(Var);
      W.u64(Tag->Id);
    }
  }

  std::string loadInvocation(resilience::ByteReader &R, Invocation &Inv) {
    Inv.Task = R.i32();
    Inv.InstanceIdx = R.i32();
    if (!R.ok() || Inv.Task < 0 ||
        static_cast<size_t>(Inv.Task) >= Prog.tasks().size() ||
        Inv.InstanceIdx < 0 ||
        static_cast<size_t>(Inv.InstanceIdx) >= InstanceSets.size())
      return "checkpoint: invocation references an unknown task instance";
    uint64_t NumParams = R.u64();
    if (!R.ok() || NumParams > TheHeap.numObjects())
      return "checkpoint: truncated invocation record";
    for (uint64_t I = 0; I < NumParams; ++I) {
      uint64_t Id = R.u64();
      if (!R.ok() || Id >= TheHeap.numObjects())
        return "checkpoint: invocation references an unknown object";
      Inv.Params.push_back(TheHeap.objectAt(Id));
    }
    uint64_t NumTags = R.u64();
    if (!R.ok() || NumTags > TheHeap.numTags())
      return "checkpoint: truncated invocation tag bindings";
    for (uint64_t I = 0; I < NumTags; ++I) {
      std::string Var = R.str();
      uint64_t Id = R.u64();
      if (!R.ok() || Id >= TheHeap.numTags())
        return "checkpoint: invocation references an unknown tag instance";
      Inv.ConstraintTags.emplace(std::move(Var), TheHeap.tagAt(Id));
    }
    return {};
  }

  std::string makeCheckpoint(resilience::Checkpoint &Out) {
    resilience::Checkpoint C;
    C.Engine = resilience::EngineKind::Thread;
    C.Program = Prog.name();
    C.Seed = Opts.Seed;
    C.FaultSeed = Opts.FaultSeed;
    C.Recovery = Opts.Recovery ? 1 : 0;
    C.FaultSpec = Opts.Faults ? Opts.Faults->str() : std::string();
    C.Args = Opts.Args;
    C.LayoutKey = L.isoKey(Prog);
    C.NumCores = static_cast<uint64_t>(L.NumCores);
    // The host engine has no virtual clock; the snapshot "cycle" is the
    // invocation count it was taken at.
    C.Cycle = Invocations.load(std::memory_order_acquire);
    // Raw (recovery-off) fault damage is irreversible once snapshotted;
    // mark it so a restart policy rolls back further.
    C.Tainted = !Opts.Recovery &&
                (Drops.load() + Dups.load() + Delays.load() +
                 LockFaults.load() + CoreFails) > 0;

    resilience::ByteWriter W;
    CodecSaveCtx Ctx;
    if (std::string Err = saveHeap(TheHeap, BP, W, Ctx); !Err.empty())
      return Err;

    std::vector<int> Budgets = Injector.remainingBudgets();
    W.u64(Budgets.size());
    for (int B : Budgets)
      W.i32(B);

    W.u64(Invocations.load());
    W.u64(Allocated.load());
    W.u64(LockRetries.load());
    W.u64(Drops.load());
    W.u64(Dups.load());
    W.u64(Delays.load());
    W.u64(LockFaults.load());
    W.u64(Retransmits.load());
    W.u64(Escalations.load());
    W.u64(LostMessages.load());
    W.u64(CoreFails);
    W.u64(InstancesMigrated);
    W.u64(SweepCounter.load());
    W.i64(Outstanding.load());

    W.u64(CoreAlive.size());
    for (char A : CoreAlive)
      W.u8(static_cast<uint8_t>(A));
    W.u64(InstanceCore.size());
    for (int IC : InstanceCore)
      W.i32(IC);

    W.u64(Cores.size());
    for (Core &C2 : Cores) {
      W.u64(C2.RoundRobin.size());
      for (const auto &[Task, Val] : C2.RoundRobin) {
        W.i32(Task);
        W.u64(Val);
      }
      W.u64(C2.Inbox.size());
      for (const Delivery &D : C2.Inbox) {
        W.u64(D.Obj->Id);
        W.i32(D.InstanceIdx);
        W.i32(D.Param);
      }
      W.u64(C2.Ready.size());
      for (const Invocation &Inv : C2.Ready)
        saveInvocation(Inv, W);
    }

    W.u64(InstanceSets.size());
    for (const auto &Sets : InstanceSets) {
      W.u64(Sets.size());
      for (const std::vector<Object *> &Set : Sets) {
        W.u64(Set.size());
        for (Object *Obj : Set)
          W.u64(Obj->Id);
      }
    }

    C.Body = W.take();
    Out = std::move(C);
    return {};
  }

  std::string restoreFrom(const resilience::Checkpoint &C) {
    if (C.Engine != resilience::EngineKind::Thread)
      return formatString(
          "checkpoint: engine mismatch (checkpoint is '%s', executor is "
          "'thread')",
          resilience::engineKindName(C.Engine));
    if (C.Program != Prog.name())
      return formatString(
          "checkpoint: program mismatch (checkpoint is '%s', running '%s')",
          C.Program.c_str(), Prog.name().c_str());
    if (C.NumCores != static_cast<uint64_t>(L.NumCores))
      return formatString(
          "checkpoint: core-count mismatch (checkpoint %llu, layout %d)",
          static_cast<unsigned long long>(C.NumCores), L.NumCores);
    if (C.LayoutKey != L.isoKey(Prog))
      return "checkpoint: layout mismatch (was the checkpoint taken under "
             "a different synthesis seed or --jobs value?)";
    if (C.Seed != Opts.Seed)
      return formatString(
          "checkpoint: run-seed mismatch (checkpoint %llu, --seed %llu)",
          static_cast<unsigned long long>(C.Seed),
          static_cast<unsigned long long>(Opts.Seed));
    if (C.Args != Opts.Args)
      return "checkpoint: program-argument mismatch";
    if (C.FaultSpec != (Opts.Faults ? Opts.Faults->str() : std::string()))
      return "checkpoint: fault-plan mismatch (pass the same --faults spec "
             "the checkpoint was taken under)";

    resilience::ByteReader R(C.Body);
    CodecLoadCtx Ctx;
    if (std::string Err = loadHeap(R, BP, TheHeap, Ctx); !Err.empty())
      return Err;

    uint64_t NumBudgets = R.u64();
    if (!R.ok() || NumBudgets > C.Body.size())
      return "checkpoint: truncated body (injector budgets)";
    std::vector<int> Budgets;
    for (uint64_t I = 0; I < NumBudgets; ++I)
      Budgets.push_back(R.i32());
    Injector.restoreBudgets(Budgets);

    Invocations.store(R.u64());
    Allocated.store(R.u64());
    LockRetries.store(R.u64());
    Drops.store(R.u64());
    Dups.store(R.u64());
    Delays.store(R.u64());
    LockFaults.store(R.u64());
    Retransmits.store(R.u64());
    Escalations.store(R.u64());
    LostMessages.store(R.u64());
    CoreFails = R.u64();
    InstancesMigrated = R.u64();
    SweepCounter.store(R.u64());
    Outstanding.store(R.i64());

    uint64_t NumCores = R.u64();
    if (!R.ok() || NumCores != CoreAlive.size())
      return "checkpoint: body core count diverges from the layout";
    for (size_t I = 0; I < CoreAlive.size(); ++I)
      CoreAlive[I] = static_cast<char>(R.u8());
    uint64_t NumInst = R.u64();
    if (!R.ok() || NumInst != InstanceCore.size())
      return "checkpoint: body instance count diverges from the layout";
    for (size_t I = 0; I < InstanceCore.size(); ++I)
      InstanceCore[I] = R.i32();

    uint64_t NumCoreStates = R.u64();
    if (!R.ok() || NumCoreStates != Cores.size())
      return "checkpoint: truncated body (core states)";
    for (Core &C2 : Cores) {
      uint64_t NumRR = R.u64();
      if (!R.ok() || NumRR > Prog.tasks().size())
        return "checkpoint: truncated body (round-robin counters)";
      for (uint64_t I = 0; I < NumRR; ++I) {
        ir::TaskId Task = R.i32();
        uint64_t Val = R.u64();
        C2.RoundRobin[Task] = static_cast<size_t>(Val);
      }
      uint64_t NumInbox = R.u64();
      if (!R.ok() || NumInbox > C.Body.size())
        return "checkpoint: truncated body (inboxes)";
      for (uint64_t I = 0; I < NumInbox; ++I) {
        uint64_t Id = R.u64();
        Delivery D;
        D.InstanceIdx = R.i32();
        D.Param = R.i32();
        if (!R.ok() || Id >= TheHeap.numObjects() || D.InstanceIdx < 0 ||
            static_cast<size_t>(D.InstanceIdx) >= InstanceSets.size())
          return "checkpoint: inbox delivery references unknown state";
        D.Obj = TheHeap.objectAt(Id);
        C2.Inbox.push_back(D);
      }
      uint64_t NumReady = R.u64();
      if (!R.ok() || NumReady > C.Body.size())
        return "checkpoint: truncated body (ready queues)";
      for (uint64_t I = 0; I < NumReady; ++I) {
        Invocation Inv;
        if (std::string Err = loadInvocation(R, Inv); !Err.empty())
          return Err;
        C2.Ready.push_back(std::move(Inv));
      }
    }

    uint64_t NumInstSets = R.u64();
    if (!R.ok() || NumInstSets != InstanceSets.size())
      return "checkpoint: truncated body (instance states)";
    for (auto &Sets : InstanceSets) {
      uint64_t NumSets = R.u64();
      if (!R.ok() || NumSets != Sets.size())
        return "checkpoint: parameter-set shape diverges from the program";
      for (std::vector<Object *> &Set : Sets) {
        uint64_t Count = R.u64();
        if (!R.ok() || Count > TheHeap.numObjects())
          return "checkpoint: truncated body (parameter sets)";
        for (uint64_t I = 0; I < Count; ++I) {
          uint64_t Id = R.u64();
          if (!R.ok() || Id >= TheHeap.numObjects())
            return "checkpoint: parameter set references an unknown object";
          Set.push_back(TheHeap.objectAt(Id));
        }
      }
    }
    if (!R.ok())
      return "checkpoint: truncated body";
    if (!R.atEnd())
      return "checkpoint: trailing bytes after body";
    return {};
  }

  /// Built after workers have joined, so worker-owned state is stable.
  std::string watchdogDump(int64_t NowMs, int64_t LastProgressMs) const {
    support::WatchdogReport Rep("thread", static_cast<uint64_t>(NowMs),
                                static_cast<uint64_t>(LastProgressMs),
                                static_cast<uint64_t>(Opts.WatchdogMs),
                                "ms");
    Rep.traceTail(Opts.Trace, 20);
    Rep.section("per-core state");
    for (size_t C = 0; C < Cores.size(); ++C)
      Rep.line(formatString("core %zu: %s inbox=%zu ready=%zu", C,
                            CoreAlive[C] ? "alive" : "DEAD",
                            Cores[C].Inbox.size(), Cores[C].Ready.size()));
    Rep.section("progress counters");
    Rep.line(formatString(
        "outstanding=%lld invocations=%llu lock-retries=%llu",
        static_cast<long long>(Outstanding.load()),
        static_cast<unsigned long long>(Invocations.load()),
        static_cast<unsigned long long>(LockRetries.load())));
    Rep.section("held locks");
    size_t Held = 0;
    for (size_t I = 0; I < TheHeap.numObjects(); ++I) {
      const Object *Obj = TheHeap.objectAt(I);
      if (Obj->locked()) {
        ++Held;
        Rep.line(formatString(
            "object %llu (class %d)",
            static_cast<unsigned long long>(Obj->Id), Obj->Class));
      }
    }
    if (Held == 0)
      Rep.line("(none)");
    return Rep.str();
  }
};

ThreadExecutor::ThreadExecutor(const BoundProgram &BP,
                               const analysis::Cstg &Graph,
                               const machine::Layout &L)
    : BP(BP), Graph(Graph), L(L), Routes(BP.program(), Graph, L),
      TheHeap(std::make_unique<Heap>()) {
  assert(BP.fullyBound() && "every task needs a body");
  assert(L.covers(BP.program()) && "layout must instantiate every task");
}

ThreadExecutor::~ThreadExecutor() = default;

ThreadExecResult ThreadExecutor::run(const ThreadExecOptions &Opts) {
  TheHeap->clear();
  Impl State(BP, Routes, L, *TheHeap, Opts);
  State.TraceT0 = std::chrono::steady_clock::now();

  // Resilience: scheduled permanent core failures apply from run start
  // (there is no virtual clock to fire them later). Dead cores' instances
  // are re-homed (recovery on) before any message is routed, so the
  // rewritten InstanceCore table is immutable once workers launch.
  State.Injector = resilience::FaultInjector(Opts.Faults, Opts.FaultSeed);
  State.CoreAlive.assign(static_cast<size_t>(L.NumCores), 1);
  State.InstanceCore.resize(L.Instances.size());
  for (size_t I = 0; I < L.Instances.size(); ++I)
    State.InstanceCore[I] = L.Instances[I].Core;
  if (Opts.Restore) {
    // Resuming: CoreAlive / InstanceCore / inboxes / ready queues /
    // counters all come from the snapshot (scheduled core failures were
    // already applied before it was taken), so the failure-application
    // and boot blocks below are skipped entirely.
    if (std::string Err = State.restoreFrom(*Opts.Restore); !Err.empty()) {
      ThreadExecResult Failed;
      Failed.RestoreError = Err;
      return Failed;
    }
    if (Opts.Trace) {
      std::vector<std::string> Names;
      Names.reserve(BP.program().tasks().size());
      for (const ir::TaskDecl &T : BP.program().tasks())
        Names.push_back(T.Name);
      Opts.Trace->setTaskNames(std::move(Names));
      Opts.Trace->resume(0);
    }
  } else {
  for (const resilience::ScheduledFault &F : State.Injector.coreFailures()) {
    if (F.Core < 0 || F.Core >= L.NumCores ||
        !State.CoreAlive[static_cast<size_t>(F.Core)])
      continue;
    State.CoreAlive[static_cast<size_t>(F.Core)] = 0;
    ++State.CoreFails;
    if (Opts.Trace)
      Opts.Trace->faultInject(
          0, F.Core, static_cast<int>(resilience::FaultKind::CoreFail), -1);
    if (!Opts.Recovery)
      continue;
    std::vector<int> Targets;
    for (int C : Routes.failoverOrder(F.Core))
      if (State.CoreAlive[static_cast<size_t>(C)])
        Targets.push_back(C);
    if (Targets.empty())
      for (int C = 0; C < L.NumCores; ++C)
        if (State.CoreAlive[static_cast<size_t>(C)])
          Targets.push_back(C);
    if (Targets.empty())
      continue; // Every core failed; nowhere to migrate.
    size_t RR = 0;
    for (size_t I = 0; I < L.Instances.size(); ++I) {
      if (State.InstanceCore[I] != F.Core)
        continue;
      State.InstanceCore[I] = Targets[RR++ % Targets.size()];
      ++State.InstancesMigrated;
      if (Opts.Trace)
        Opts.Trace->failover(0, F.Core, State.InstanceCore[I],
                             static_cast<int64_t>(I));
    }
  }
  if (Opts.Trace) {
    std::vector<std::string> Names;
    Names.reserve(BP.program().tasks().size());
    for (const ir::TaskDecl &T : BP.program().tasks())
      Names.push_back(T.Name);
    Opts.Trace->setTaskNames(std::move(Names));
  }

  // Boot.
  {
    const ir::Program &Prog = BP.program();
    std::unique_ptr<ObjectData> Data;
    if (BP.startupFactory())
      Data = BP.startupFactory()(Opts.Args);
    Object *Startup = TheHeap->allocate(
        Prog.startupClass(), ir::FlagMask(1) << Prog.startupFlag(),
        std::move(Data));
    State.send(Startup, /*FromCore=*/-1);
  }
  } // !Opts.Restore

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(L.NumCores));
  for (int C = 0; C < L.NumCores; ++C)
    Threads.emplace_back([&State, C] { State.worker(C); });

  // Monitor loop: enforce the total timeout, fire the no-progress
  // watchdog, and take pause-the-world checkpoints at invocation-count
  // thresholds.
  uint64_t NextCkpt = 0;
  if (Opts.CheckpointEveryInvocations > 0)
    NextCkpt = (State.Invocations.load() / Opts.CheckpointEveryInvocations +
                1) *
               Opts.CheckpointEveryInvocations;
  uint64_t CkptWritten = 0;
  std::string CkptError;
  bool WatchdogTripped = false;
  uint64_t LastInvCount = State.Invocations.load();
  auto LastProgressT = T0;
  int64_t TrippedAtMs = 0, TrippedLastMs = 0;
  for (;;) {
    if (State.Done.load(std::memory_order_acquire))
      break;
    auto Now = std::chrono::steady_clock::now();
    auto Elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(Now - T0)
            .count();
    if (Elapsed > Opts.TimeoutMs) {
      State.Done.store(true, std::memory_order_release);
      break;
    }
    uint64_t InvNow = State.Invocations.load(std::memory_order_acquire);
    if (InvNow != LastInvCount) {
      LastInvCount = InvNow;
      LastProgressT = Now;
    } else if (Opts.WatchdogMs > 0 &&
               State.Outstanding.load(std::memory_order_acquire) != 0 &&
               std::chrono::duration_cast<std::chrono::milliseconds>(
                   Now - LastProgressT)
                       .count() > Opts.WatchdogMs) {
      WatchdogTripped = true;
      TrippedAtMs = Elapsed;
      TrippedLastMs =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              LastProgressT - T0)
              .count();
      State.Done.store(true, std::memory_order_release);
      break;
    }
    if (Opts.CheckpointEveryInvocations > 0 && InvNow >= NextCkpt) {
      if (State.pauseWorld()) {
        resilience::Checkpoint C;
        std::string Err = State.makeCheckpoint(C);
        if (Err.empty()) {
          ++CkptWritten;
          if (Opts.OnCheckpoint)
            Opts.OnCheckpoint(C);
        }
        while (NextCkpt <= State.Invocations.load())
          NextCkpt += Opts.CheckpointEveryInvocations;
        State.resumeWorld();
        if (!Err.empty()) {
          CkptError = Err;
          State.Done.store(true, std::memory_order_release);
          break;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();

  ThreadExecResult Result;
  Result.CheckpointsWritten = CkptWritten;
  Result.CheckpointError = CkptError;
  if (WatchdogTripped) {
    Result.WatchdogFired = true;
    Result.WatchdogDump = State.watchdogDump(TrippedAtMs, TrippedLastMs);
  }
  Result.TaskInvocations = State.Invocations.load();
  Result.ObjectsAllocated = State.Allocated.load();
  Result.LockRetries = State.LockRetries.load();
  Result.WallSeconds = std::chrono::duration<double>(T1 - T0).count();

  resilience::RecoveryReport &R = Result.Recovery;
  R.RecoveryEnabled = Opts.Recovery;
  R.Drops = State.Drops.load();
  R.Dups = State.Dups.load();
  R.Delays = State.Delays.load();
  R.LockFaults = State.LockFaults.load();
  R.CoreFails = State.CoreFails;
  R.Retransmits = State.Retransmits.load();
  R.Escalations = State.Escalations.load();
  R.LostMessages = State.LostMessages.load();
  R.InstancesMigrated = State.InstancesMigrated;
  // Anything still sitting in a dead core's inbox was swallowed for good
  // (recovery off leaves dead placements reachable). Workers have joined,
  // so the inboxes are stable here.
  for (int C = 0; C < L.NumCores; ++C)
    if (!State.CoreAlive[static_cast<size_t>(C)])
      R.BlackholedDeliveries += State.Cores[static_cast<size_t>(C)].Inbox.size();

  // Quiescence alone is not completion: a run that lost work can drain to
  // zero with results missing. Damage, a watchdog abort, or a failed
  // snapshot always force a failed report.
  Result.Completed =
      State.Outstanding.load(std::memory_order_acquire) == 0 &&
      !R.damaged() && !Result.WatchdogFired && Result.CheckpointError.empty();
  return Result;
}
