//===- runtime/ThreadExecutor.cpp - Real-thread parallel executor ----------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Host-thread policy over the shared engine machinery (DESIGN.md §3f):
// dispatch, checkpoint chunks, fault resolution, and the monitor loop
// come from src/exec; this file owns what is genuinely host-specific —
// the inbox/worker transport, the lock-sweep dispatch loop, and the
// pause-the-world snapshot wiring.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadExecutor.h"

#include "exec/CheckpointChunks.h"
#include "exec/HostEngine.h"
#include "runtime/HeapSnapshot.h"
#include "runtime/TaskContext.h"
#include "support/Format.h"
#include "support/Watchdog.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

using namespace bamboo;
using namespace bamboo::runtime;

namespace {

using Invocation = exec::ObjectInvocation;

struct Delivery {
  Object *Obj = nullptr;
  int InstanceIdx = -1;
  ir::ParamId Param = 0;
};

} // namespace

struct ThreadExecutor::Impl {
  const BoundProgram &BP;
  const ir::Program &Prog;
  const RoutingTable &Routes;
  const machine::Layout &L;
  Heap &TheHeap;
  const ThreadExecOptions &Opts;

  struct Core {
    std::mutex InboxMutex;
    std::deque<Delivery> Inbox;
    // Owned exclusively by the core's worker thread.
    std::deque<Invocation> Ready;
    /// End timestamp (ns) of the last completed invocation, for idle-span
    /// tracing. Owned by the core's worker thread.
    uint64_t LastEnd = 0;
  };

  std::vector<Core> Cores;
  /// Placement policy (src/sched). Round-robin counters are bucketed by
  /// the *sending* core, so each worker only ever touches its own rows —
  /// no synchronization needed (the boot send, bucket 0, happens before
  /// workers start).
  std::unique_ptr<sched::Scheduler> Sched;
  /// One parameter-set table per placed instance (touched only by the
  /// hosting core's thread).
  std::vector<exec::EngineInstanceState<Object *>> InstanceSets;
  /// Outstanding work: in-flight deliveries + enqueued invocations +
  /// executing bodies. Zero means quiescent.
  std::atomic<int64_t> Outstanding{0};
  std::atomic<bool> Done{false};
  /// Exit effects and tag mutations are serialized: they touch shared tag
  /// instances. Body execution (the expensive part) stays parallel.
  std::mutex ExitMutex;

  std::atomic<uint64_t> Invocations{0};
  std::atomic<uint64_t> Allocated{0};
  std::atomic<uint64_t> LockRetries{0};

  // Resilience state. Scheduled permanent core failures apply from the
  // start of a host run (no virtual clock to schedule them on): dead
  // cores' workers exit immediately and — with recovery on — their
  // instances are re-homed over the routing table's failover order.
  resilience::FaultInjector Injector;
  std::vector<char> CoreAlive;
  /// Effective host core per placed instance (layout placement, rewritten
  /// by failover re-homing). Immutable once workers start.
  std::vector<int> InstanceCore;
  exec::HostSendStats Send;
  std::atomic<uint64_t> LockFaults{0};
  uint64_t CoreFails = 0, InstancesMigrated = 0;
  /// Per-core sweep counter keying the clock-free lock-fault draws.
  std::atomic<uint64_t> SweepCounter{0};

  exec::PauseWorld Pause;

  /// Trace clock base: run() start. Timestamps are ns since this point.
  std::chrono::steady_clock::time_point TraceT0;

  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - TraceT0)
            .count());
  }

  Impl(const BoundProgram &BP, const RoutingTable &Routes,
       const machine::Layout &L, Heap &TheHeap,
       const ThreadExecOptions &Opts)
      : BP(BP), Prog(BP.program()), Routes(Routes), L(L), TheHeap(TheHeap),
        Opts(Opts), Cores(static_cast<size_t>(L.NumCores)) {
    InstanceSets.resize(L.Instances.size());
    for (size_t I = 0; I < L.Instances.size(); ++I)
      InstanceSets[I].ParamSets.resize(
          Prog.taskOf(L.Instances[I].Task).Params.size());
  }

  void sendObject(Object *Obj, int FromCore) {
    int Node = Routes.nodeOf(*Obj);
    for (const RouteDest &Dest : Routes.destsAt(Node)) {
      size_t Pick = 0;
      switch (Dest.Kind) {
      case DistributionKind::Single:
        break;
      case DistributionKind::RoundRobin: {
        // Bucket by the sending core (boot shares core 0's bucket),
        // matching the historical per-core counter maps bit-for-bit
        // under rr.
        int Bucket = FromCore >= 0 ? FromCore : 0;
        Pick = Sched->pickInstance(Dest, Bucket,
                                   static_cast<size_t>(Bucket), FromCore);
        break;
      }
      case DistributionKind::TagHash: {
        TagInstance *Inst = Obj->tagOfType(Dest.HashTagType);
        Pick = Inst ? static_cast<size_t>(Inst->Id) % Dest.Instances.size()
                    : 0;
        break;
      }
      }
      int InstanceIdx = Dest.Instances[Pick].first;
      // Route to the instance's *effective* home — failover migration may
      // have moved it off its layout placement.
      int CoreIdx = InstanceCore[static_cast<size_t>(InstanceIdx)];
      int Copies = 1;
      if (Injector.active() && FromCore >= 0 && FromCore != CoreIdx) {
        Copies = exec::resolveHostSend(
            Injector, Opts.Recovery, Opts.Trace, [this] { return nowNs(); },
            Obj->Id, FromCore, CoreIdx, Send);
        // A lost transfer never enters Outstanding — quiescence is then
        // reached with work missing, and run() reports the damage.
        if (Copies == 0)
          continue;
      }
      for (int Copy = 0; Copy < Copies; ++Copy) {
        Outstanding.fetch_add(1, std::memory_order_acq_rel);
        // Cross-core transfers only, mirroring the virtual machine's
        // notion of a message; the host has no mesh, so hops/bytes are
        // zero.
        if (Opts.Trace && FromCore >= 0 && FromCore != CoreIdx)
          Opts.Trace->send(nowNs(), FromCore, CoreIdx,
                           static_cast<int64_t>(Obj->Id), /*Hops=*/0,
                           /*Bytes=*/0);
        Core &To = Cores[static_cast<size_t>(CoreIdx)];
        std::lock_guard<std::mutex> Guard(To.InboxMutex);
        To.Inbox.push_back(Delivery{Obj, InstanceIdx, Dest.Param});
      }
    }
  }

  void matchParams(Core &C, int InstanceIdx, const ir::TaskDecl &Task,
                   Invocation &Partial, ir::ParamId FixedParam,
                   Object *FixedObj, bool DedupeReady) {
    exec::matchParamCombos(
        Task, 0, Partial, FixedParam, FixedObj,
        InstanceSets[static_cast<size_t>(InstanceIdx)].ParamSets, C.Ready,
        DedupeReady,
        [](const ir::TaskParam &Param, Object *Obj) {
          return exec::guardAdmitsObject(Param, *Obj);
        },
        [](const ir::TaskParam &Param, Object *Obj, Invocation &Inv) {
          return exec::bindObjectParamTags(Param, Obj, Inv.ConstraintTags);
        },
        [](Object *A, Object *B) { return A == B; },
        [&] { Outstanding.fetch_add(1, std::memory_order_acq_rel); });
  }

  void drainInbox(int CoreIdx) {
    Core &C = Cores[static_cast<size_t>(CoreIdx)];
    std::deque<Delivery> Batch;
    {
      std::lock_guard<std::mutex> Guard(C.InboxMutex);
      Batch.swap(C.Inbox);
    }
    for (const Delivery &D : Batch) {
      auto &Set = InstanceSets[static_cast<size_t>(D.InstanceIdx)]
                      .ParamSets[static_cast<size_t>(D.Param)];
      // Same re-delivery semantics as TileExecutor::deliver: an object
      // already in the parameter set re-arrives after a flag/tag
      // transition, so re-enumerate (deduplicating against pending
      // invocations) instead of skipping enumeration entirely.
      bool Present = std::find(Set.begin(), Set.end(), D.Obj) != Set.end();
      if (!Present)
        Set.push_back(D.Obj);
      if (Opts.Trace)
        Opts.Trace->deliver(nowNs(), CoreIdx,
                            static_cast<int64_t>(D.Obj->Id));
      ir::TaskId TaskId =
          L.Instances[static_cast<size_t>(D.InstanceIdx)].Task;
      const ir::TaskDecl &Task = Prog.taskOf(TaskId);
      if (exec::guardAdmitsObject(Task.Params[static_cast<size_t>(D.Param)],
                                  *D.Obj)) {
        Invocation Partial;
        Partial.Task = TaskId;
        Partial.InstanceIdx = D.InstanceIdx;
        matchParams(C, D.InstanceIdx, Task, Partial, D.Param, D.Obj,
                    /*DedupeReady=*/Present);
      }
      Outstanding.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  /// Attempts one invocation from the core's ready queue; returns true if
  /// progress was made (an invocation ran or was dropped).
  bool step(int CoreIdx) {
    Core &C = Cores[static_cast<size_t>(CoreIdx)];
    size_t Attempts = C.Ready.size();
    while (Attempts-- > 0) {
      Invocation Inv = std::move(C.Ready.front());
      C.Ready.pop_front();
      if (!exec::objectInvocationStillValid(Prog, Inv)) {
        Outstanding.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
      // An injected lock-sweep fault behaves exactly like a lost
      // all-or-nothing sweep: count a retry and requeue. Keyed by a
      // process-wide sweep counter, so the fault *rate* matches the plan
      // even though which particular sweep faults depends on host
      // interleaving (this engine's traces are nondeterministic anyway).
      if (Injector.active() &&
          Injector.lockSweepFault(
              CoreIdx, Inv.Params[0]->Id,
              SweepCounter.fetch_add(1, std::memory_order_relaxed))) {
        LockFaults.fetch_add(1, std::memory_order_relaxed);
        LockRetries.fetch_add(1, std::memory_order_relaxed);
        if (Opts.Trace) {
          Opts.Trace->faultInject(
              nowNs(), CoreIdx,
              static_cast<int>(resilience::FaultKind::LockSweep),
              static_cast<int64_t>(Inv.Params[0]->Id));
          Opts.Trace->lockRetry(nowNs(), CoreIdx, Inv.Task);
        }
        C.Ready.push_back(std::move(Inv));
        continue;
      }
      // All-or-nothing try-lock; release and retry on any conflict.
      size_t Acquired = 0;
      while (Acquired < Inv.Params.size() &&
             Inv.Params[Acquired]->tryLock())
        ++Acquired;
      if (Acquired < Inv.Params.size()) {
        for (size_t U = 0; U < Acquired; ++U)
          Inv.Params[U]->unlock();
        // Unified retry semantics: one count per failed all-or-nothing
        // sweep (see ThreadExecResult::LockRetries).
        LockRetries.fetch_add(1, std::memory_order_relaxed);
        if (Opts.Trace)
          Opts.Trace->lockRetry(nowNs(), CoreIdx, Inv.Task);
        C.Ready.push_back(std::move(Inv));
        continue;
      }
      // Re-validate under the locks (flags may have changed since the
      // advisory check).
      if (!exec::objectInvocationStillValid(Prog, Inv)) {
        for (Object *Obj : Inv.Params)
          Obj->unlock();
        Outstanding.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }

      uint64_t BeginNs = 0;
      if (Opts.Trace) {
        BeginNs = nowNs();
        Opts.Trace->lockAcquire(BeginNs, CoreIdx, Inv.Task,
                                Inv.Params.size());
        // The gap since the last completion on this core was idle time.
        Opts.Trace->idle(C.LastEnd, BeginNs, CoreIdx);
        Opts.Trace->taskBegin(BeginNs, CoreIdx, Inv.Task, C.Ready.size());
      }

      // Consume from the parameter sets, run the body, apply the exit.
      auto &Sets = InstanceSets[static_cast<size_t>(Inv.InstanceIdx)]
                       .ParamSets;
      for (size_t P = 0; P < Inv.Params.size(); ++P)
        Sets[P].erase(
            std::remove(Sets[P].begin(), Sets[P].end(), Inv.Params[P]),
            Sets[P].end());

      TaskContext Ctx(BP, TheHeap, Inv.Task, Inv.Params, Inv.ConstraintTags,
                      Opts.Args,
                      exec::taskRngSeed(Opts.Seed, Inv.Task,
                                        Inv.Params[0]->Id));
      BP.bodyOf(Inv.Task)(Ctx);
      Invocations.fetch_add(1, std::memory_order_relaxed);
      Allocated.fetch_add(Ctx.newObjects().size(),
                          std::memory_order_relaxed);

      {
        std::lock_guard<std::mutex> Guard(ExitMutex);
        exec::applyObjectExitEffects(
            Prog.taskOf(Inv.Task)
                .Exits[static_cast<size_t>(Ctx.chosenExit())],
            Inv.Params,
            [&Ctx](const std::string &Var) { return Ctx.tagVar(Var); });
      }
      for (Object *Obj : Inv.Params)
        Obj->unlock();
      if (Opts.Trace) {
        uint64_t EndNs = nowNs();
        C.LastEnd = EndNs;
        Opts.Trace->taskEnd(EndNs, CoreIdx, Inv.Task, Ctx.chosenExit());
      }

      for (const auto &[Site, Obj] : Ctx.newObjects()) {
        (void)Site;
        sendObject(Obj, CoreIdx);
      }
      for (Object *Obj : Inv.Params)
        sendObject(Obj, CoreIdx);
      Outstanding.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    return false;
  }

  void worker(int CoreIdx) {
    // Fail-stop: a failed core never dispatches. With recovery on its
    // instances were re-homed before boot, so nothing targets it; with
    // recovery off, deliveries sent here sit in the inbox (blackholed)
    // until the watchdog declares the run wedged.
    if (!CoreAlive[static_cast<size_t>(CoreIdx)])
      return;
    Pause.workerEnter();
    int IdleSpins = 0;
    while (!Done.load(std::memory_order_acquire)) {
      Pause.maybePause(Done);
      drainInbox(CoreIdx);
      if (step(CoreIdx)) {
        IdleSpins = 0;
        continue;
      }
      if (Outstanding.load(std::memory_order_acquire) == 0) {
        Done.store(true, std::memory_order_release);
        break;
      }
      if (++IdleSpins > 64)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      else
        std::this_thread::yield();
    }
    Pause.workerExit();
  }

  //===--------------------------------------------------------------------===//
  // Checkpoint / restore / watchdog. The world is paused (or not yet
  // started) whenever these run, so plain reads of worker-owned state are
  // safe.
  //===--------------------------------------------------------------------===//

  std::string makeCheckpoint(resilience::Checkpoint &Out) {
    // The host engine has no virtual clock; the snapshot "cycle" is the
    // invocation count it was taken at.
    resilience::Checkpoint C = exec::makeCheckpointHeader(
        resilience::EngineKind::Thread, Prog, L, Opts.Seed, Opts.FaultSeed,
        Opts.Recovery, Opts.Faults, Opts.Args,
        Invocations.load(std::memory_order_acquire),
        !Opts.Recovery &&
            (Send.Drops.load() + Send.Dups.load() + Send.Delays.load() +
             LockFaults.load() + CoreFails) > 0);

    resilience::ByteWriter W;
    CodecSaveCtx Ctx;
    if (std::string Err = saveHeap(TheHeap, BP, W, Ctx); !Err.empty())
      return Err;

    exec::saveInjectorBudgets(W, Injector);

    for (uint64_t V :
         {Invocations.load(), Allocated.load(), LockRetries.load(),
          Send.Drops.load(), Send.Dups.load(), Send.Delays.load(),
          LockFaults.load(), Send.Retransmits.load(),
          Send.Escalations.load(), Send.LostMessages.load(), CoreFails,
          InstancesMigrated, SweepCounter.load()})
      W.u64(V);
    W.i64(Outstanding.load());

    // The host engine has no stall/lock windows (empty cycle arrays), so
    // the shared resilience chunk is exactly CoreAlive + InstanceCore.
    exec::saveResilienceState(W, CoreAlive, InstanceCore, {}, {});

    W.u64(Cores.size());
    for (size_t CoreIdx = 0; CoreIdx < Cores.size(); ++CoreIdx) {
      Core &C2 = Cores[CoreIdx];
      // Same bytes the historical per-core counter map produced.
      Sched->saveBucket(W, static_cast<int>(CoreIdx));
      W.u64(C2.Inbox.size());
      for (const Delivery &D : C2.Inbox) {
        W.u64(D.Obj->Id);
        W.i32(D.InstanceIdx);
        W.i32(D.Param);
      }
      W.u64(C2.Ready.size());
      for (const Invocation &Inv : C2.Ready)
        exec::saveObjectInvocation(W, Inv);
    }

    exec::saveParamSets<Object *>(
        W, InstanceSets,
        [](resilience::ByteWriter &W2, Object *Obj) { W2.u64(Obj->Id); });

    Sched->savePolicyState(W);

    C.Body = W.take();
    Out = std::move(C);
    return {};
  }

  std::string restoreFrom(const resilience::Checkpoint &C) {
    exec::RunIdentity Id;
    Id.Engine = resilience::EngineKind::Thread;
    Id.EngineSelf = "executor is 'thread'";
    Id.Seed = Opts.Seed;
    Id.Args = &Opts.Args;
    Id.Faults = Opts.Faults;
    if (std::string Err = exec::validateRunIdentity(C, Prog, L, Id);
        !Err.empty())
      return Err;

    resilience::ByteReader R(C.Body);
    CodecLoadCtx Ctx;
    if (std::string Err = loadHeap(R, BP, TheHeap, Ctx); !Err.empty())
      return Err;
    if (std::string Err =
            exec::loadInjectorBudgets(R, C.Body.size(), Injector);
        !Err.empty())
      return Err;

    for (std::atomic<uint64_t> *Counter :
         {&Invocations, &Allocated, &LockRetries, &Send.Drops, &Send.Dups,
          &Send.Delays, &LockFaults, &Send.Retransmits, &Send.Escalations,
          &Send.LostMessages})
      Counter->store(R.u64());
    CoreFails = R.u64();
    InstancesMigrated = R.u64();
    SweepCounter.store(R.u64());
    Outstanding.store(R.i64());

    std::vector<machine::Cycles> NoWindows;
    if (std::string Err = exec::loadResilienceState(
            R, CoreAlive, InstanceCore, NoWindows, NoWindows);
        !Err.empty())
      return Err;

    uint64_t NumCoreStates = R.u64();
    if (!R.ok() || NumCoreStates != Cores.size())
      return "checkpoint: truncated body (core states)";
    for (size_t CoreIdx = 0; CoreIdx < Cores.size(); ++CoreIdx) {
      Core &C2 = Cores[CoreIdx];
      if (std::string Err = Sched->loadBucket(R, static_cast<int>(CoreIdx));
          !Err.empty())
        return Err;
      uint64_t NumInbox = R.u64();
      if (!R.ok() || NumInbox > C.Body.size())
        return "checkpoint: truncated body (inboxes)";
      for (uint64_t I = 0; I < NumInbox; ++I) {
        uint64_t Id2 = R.u64();
        Delivery D;
        D.InstanceIdx = R.i32();
        D.Param = R.i32();
        if (!R.ok() || Id2 >= TheHeap.numObjects() || D.InstanceIdx < 0 ||
            static_cast<size_t>(D.InstanceIdx) >= InstanceSets.size())
          return "checkpoint: inbox delivery references unknown state";
        D.Obj = TheHeap.objectAt(Id2);
        C2.Inbox.push_back(D);
      }
      uint64_t NumReady = R.u64();
      if (!R.ok() || NumReady > C.Body.size())
        return "checkpoint: truncated body (ready queues)";
      for (uint64_t I = 0; I < NumReady; ++I) {
        Invocation Inv;
        if (std::string Err = exec::loadObjectInvocation(
                R, Prog, TheHeap, InstanceSets.size(), Inv);
            !Err.empty())
          return Err;
        C2.Ready.push_back(std::move(Inv));
      }
    }

    if (std::string Err = exec::loadParamSets<Object *>(
            R, InstanceSets, TheHeap.numObjects(),
            [&](resilience::ByteReader &R2, Object *&Obj) -> std::string {
              uint64_t Id2 = R2.u64();
              if (!R2.ok() || Id2 >= TheHeap.numObjects())
                return "checkpoint: parameter set references an unknown "
                       "object";
              Obj = TheHeap.objectAt(Id2);
              return {};
            });
        !Err.empty())
      return Err;
    if (std::string Err = Sched->loadPolicyState(R); !Err.empty())
      return Err;
    return exec::finishBody(R);
  }

  /// Built after workers have joined, so worker-owned state is stable.
  std::string watchdogDump(int64_t NowMs, int64_t LastProgressMs) const {
    support::WatchdogReport Rep("thread", static_cast<uint64_t>(NowMs),
                                static_cast<uint64_t>(LastProgressMs),
                                static_cast<uint64_t>(Opts.WatchdogMs),
                                "ms");
    Rep.traceTail(Opts.Trace, 20);
    Rep.section("per-core state");
    for (size_t C = 0; C < Cores.size(); ++C)
      Rep.line(formatString("core %zu: %s inbox=%zu ready=%zu", C,
                            CoreAlive[C] ? "alive" : "DEAD",
                            Cores[C].Inbox.size(), Cores[C].Ready.size()));
    Rep.section("progress counters");
    Rep.line(formatString(
        "outstanding=%lld invocations=%llu lock-retries=%llu",
        static_cast<long long>(Outstanding.load()),
        static_cast<unsigned long long>(Invocations.load()),
        static_cast<unsigned long long>(LockRetries.load())));
    exec::appendHeldLocks(Rep, TheHeap);
    return Rep.str();
  }
};

ThreadExecutor::ThreadExecutor(const BoundProgram &BP,
                               const analysis::Cstg &Graph,
                               const machine::Layout &L)
    : BP(BP), Graph(Graph), L(L), Routes(BP.program(), Graph, L),
      TheHeap(std::make_unique<Heap>()) {
  assert(BP.fullyBound() && "every task needs a body");
  assert(L.covers(BP.program()) && "layout must instantiate every task");
}

ThreadExecutor::~ThreadExecutor() = default;

ThreadExecResult ThreadExecutor::run(const ThreadExecOptions &Opts) {
  TheHeap->clear();
  Impl State(BP, Routes, L, *TheHeap, Opts);
  State.TraceT0 = std::chrono::steady_clock::now();

  State.Injector = resilience::FaultInjector(Opts.Faults, Opts.FaultSeed);
  State.CoreAlive.assign(static_cast<size_t>(L.NumCores), 1);
  State.InstanceCore.resize(L.Instances.size());
  for (size_t I = 0; I < L.Instances.size(); ++I)
    State.InstanceCore[I] = L.Instances[I].Core;
  // The host has no mesh: "distance" for locality/dep placement is the
  // linear core-index gap. InstanceCore is passed by pointer, so failover
  // re-homing below is visible to the policy.
  State.Sched = sched::makeScheduler(Opts.Sched, Opts.Seed);
  State.Sched->beginRun(L.NumCores, BP.program().tasks().size(),
                        &State.InstanceCore,
                        [](int A, int B) { return A < B ? B - A : A - B; });
  if (Opts.Restore) {
    // Resuming: CoreAlive / InstanceCore / inboxes / ready queues /
    // counters all come from the snapshot (scheduled core failures were
    // already applied before it was taken), so boot-time failure
    // application and the startup object are skipped entirely.
    if (std::string Err = State.restoreFrom(*Opts.Restore); !Err.empty()) {
      ThreadExecResult Failed;
      Failed.RestoreError = Err;
      return Failed;
    }
  } else {
    exec::applyBootCoreFailures(State.Injector, Routes, L.NumCores,
                                Opts.Recovery, Opts.Trace, State.CoreAlive,
                                State.InstanceCore, State.CoreFails,
                                State.InstancesMigrated);
  }
  exec::announceTaskNames(Opts.Trace, BP.program());
  if (Opts.Trace && Opts.Restore)
    Opts.Trace->resume(0);
  if (!Opts.Restore) {
    // Boot.
    const ir::Program &Prog = BP.program();
    std::unique_ptr<ObjectData> Data;
    if (BP.startupFactory())
      Data = BP.startupFactory()(Opts.Args);
    Object *Startup = TheHeap->allocate(
        Prog.startupClass(), ir::FlagMask(1) << Prog.startupFlag(),
        std::move(Data));
    State.sendObject(Startup, /*FromCore=*/-1);
  }

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(L.NumCores));
  for (int C = 0; C < L.NumCores; ++C)
    Threads.emplace_back([&State, C] { State.worker(C); });

  exec::HostMonitorOutcome Mon = exec::hostMonitorLoop(
      State.Done, T0, Opts.TimeoutMs, Opts.WatchdogMs,
      Opts.CheckpointEveryInvocations,
      [&] { return State.Invocations.load(std::memory_order_acquire); },
      [&] { return State.Outstanding.load(std::memory_order_acquire); },
      [&](uint64_t &NextCkpt, std::string &Err) {
        if (!State.Pause.pauseAll(State.Done))
          return false;
        resilience::Checkpoint C;
        Err = State.makeCheckpoint(C);
        if (Err.empty() && Opts.OnCheckpoint)
          Opts.OnCheckpoint(C);
        while (NextCkpt <= State.Invocations.load())
          NextCkpt += Opts.CheckpointEveryInvocations;
        State.Pause.resumeAll();
        return Err.empty();
      },
      Opts.Stop);
  for (std::thread &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();

  ThreadExecResult Result;
  Result.CheckpointsWritten = Mon.CheckpointsWritten;
  Result.CheckpointError = Mon.CheckpointError;
  Result.Interrupted = Mon.StopObserved;
  if (Mon.WatchdogTripped) {
    Result.WatchdogFired = true;
    Result.WatchdogDump =
        State.watchdogDump(Mon.TrippedAtMs, Mon.TrippedLastMs);
  }
  Result.TaskInvocations = State.Invocations.load();
  Result.ObjectsAllocated = State.Allocated.load();
  Result.LockRetries = State.LockRetries.load();
  Result.WallSeconds = std::chrono::duration<double>(T1 - T0).count();

  resilience::RecoveryReport &R = Result.Recovery;
  R.RecoveryEnabled = Opts.Recovery;
  R.Drops = State.Send.Drops.load();
  R.Dups = State.Send.Dups.load();
  R.Delays = State.Send.Delays.load();
  R.LockFaults = State.LockFaults.load();
  R.CoreFails = State.CoreFails;
  R.Retransmits = State.Send.Retransmits.load();
  R.Escalations = State.Send.Escalations.load();
  R.LostMessages = State.Send.LostMessages.load();
  R.InstancesMigrated = State.InstancesMigrated;
  // Anything still sitting in a dead core's inbox was swallowed for good
  // (recovery off leaves dead placements reachable). Workers have joined,
  // so the inboxes are stable here.
  for (int C = 0; C < L.NumCores; ++C)
    if (!State.CoreAlive[static_cast<size_t>(C)])
      R.BlackholedDeliveries +=
          State.Cores[static_cast<size_t>(C)].Inbox.size();

  // Quiescence alone is not completion: a run that lost work can drain to
  // zero with results missing. Damage, a watchdog abort, or a failed
  // snapshot always force a failed report.
  Result.Completed =
      State.Outstanding.load(std::memory_order_acquire) == 0 &&
      !R.damaged() && !Result.WatchdogFired && !Result.Interrupted &&
      Result.CheckpointError.empty();
  return Result;
}
