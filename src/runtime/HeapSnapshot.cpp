//===- runtime/HeapSnapshot.cpp - Heap <-> checkpoint serialization -------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/HeapSnapshot.h"

#include "support/Format.h"

namespace bamboo::runtime {

using resilience::ByteReader;
using resilience::ByteWriter;

std::string saveHeap(Heap &H, const BoundProgram &BP, ByteWriter &W,
                     CodecSaveCtx &Ctx) {
  // Tag instances first (objects reference them by id).
  W.u64(H.numTags());
  for (size_t I = 0; I < H.numTags(); ++I)
    W.i32(H.tagAt(I)->Type);

  // Object metadata: class, flags, lock bit, bound tag ids in binding
  // order (Object::Tags order is program-visible via tagOfType).
  W.u64(H.numObjects());
  for (size_t I = 0; I < H.numObjects(); ++I) {
    Object *Obj = H.objectAt(I);
    W.i32(Obj->Class);
    W.u64(Obj->flags());
    W.u8(Obj->locked() ? 1 : 0);
    W.u64(Obj->Tags.size());
    for (TagInstance *T : Obj->Tags)
      W.u64(T->Id);
  }

  // Payloads, each framed as a length-prefixed blob so the loader can
  // validate that the codec consumed exactly what was written.
  for (size_t I = 0; I < H.numObjects(); ++I) {
    Object *Obj = H.objectAt(I);
    if (!Obj->Data) {
      W.u8(0);
      continue;
    }
    const char *Key = Obj->Data->checkpointKey();
    if (!Key)
      return formatString(
          "checkpoint: heap object %llu (class %d) has a payload with no "
          "checkpoint codec key",
          static_cast<unsigned long long>(Obj->Id), Obj->Class);
    const ObjectCodec *Codec = BP.codec(Key);
    if (!Codec)
      return formatString(
          "checkpoint: no codec registered for payload key '%s' (object "
          "%llu)",
          Key, static_cast<unsigned long long>(Obj->Id));
    W.u8(1);
    W.str(Key);
    ByteWriter Sub;
    Codec->Save(*Obj->Data, Sub, Ctx);
    W.str(Sub.buffer());
  }

  // Tag bound lists (order = binding order; not derivable from the
  // objects' tag lists, which interleave differently).
  for (size_t I = 0; I < H.numTags(); ++I) {
    TagInstance *T = H.tagAt(I);
    W.u64(T->Bound.size());
    for (Object *Obj : T->Bound)
      W.u64(Obj->Id);
  }
  return {};
}

std::string loadHeap(ByteReader &R, const BoundProgram &BP, Heap &H,
                     CodecLoadCtx &Ctx) {
  if (H.numObjects() != 0 || H.numTags() != 0)
    return "checkpoint: heap restore requires an empty heap";
  Ctx.TheHeap = &H;

  uint64_t NumTags = R.u64();
  if (!R.ok() || NumTags > (uint64_t(1) << 32))
    return "checkpoint: heap body truncated (tag count)";
  for (uint64_t I = 0; I < NumTags; ++I) {
    int32_t Type = R.i32();
    if (!R.ok())
      return "checkpoint: heap body truncated (tag types)";
    H.newTag(Type);
  }

  uint64_t NumObjects = R.u64();
  if (!R.ok() || NumObjects > (uint64_t(1) << 32))
    return "checkpoint: heap body truncated (object count)";
  std::vector<uint64_t> Locked;
  for (uint64_t I = 0; I < NumObjects; ++I) {
    int32_t Class = R.i32();
    uint64_t Flags = R.u64();
    uint8_t IsLocked = R.u8();
    uint64_t NumBoundTags = R.u64();
    if (!R.ok() || NumBoundTags > NumTags)
      return "checkpoint: heap body truncated (object metadata)";
    Object *Obj = H.allocate(Class, Flags, nullptr);
    if (Obj->Id != I)
      return "checkpoint: heap ids diverged during restore";
    for (uint64_t K = 0; K < NumBoundTags; ++K) {
      uint64_t TagId = R.u64();
      if (!R.ok() || TagId >= NumTags)
        return "checkpoint: heap body references an unknown tag instance";
      Obj->Tags.push_back(H.tagAt(TagId));
    }
    if (IsLocked) {
      Locked.push_back(I);
    }
  }
  for (uint64_t I : Locked)
    H.objectAt(I)->tryLock();

  for (uint64_t I = 0; I < NumObjects; ++I) {
    uint8_t HasData = R.u8();
    if (!R.ok())
      return "checkpoint: heap body truncated (payloads)";
    if (!HasData)
      continue;
    std::string Key = R.str();
    std::string Blob = R.str();
    if (!R.ok())
      return "checkpoint: heap body truncated (payload blob)";
    const ObjectCodec *Codec = BP.codec(Key);
    if (!Codec)
      return formatString(
          "checkpoint: no codec registered for payload key '%s' (object "
          "%llu) — was the checkpoint written by a different program?",
          Key.c_str(), static_cast<unsigned long long>(I));
    ByteReader Sub(Blob);
    std::unique_ptr<ObjectData> Data = Codec->Load(Sub, Ctx);
    if (!Sub.ok() || !Data)
      return formatString(
          "checkpoint: payload codec '%s' failed on object %llu",
          Key.c_str(), static_cast<unsigned long long>(I));
    if (!Sub.atEnd())
      return formatString(
          "checkpoint: payload codec '%s' left %llu trailing bytes on "
          "object %llu",
          Key.c_str(),
          static_cast<unsigned long long>(Blob.size() - Sub.pos()),
          static_cast<unsigned long long>(I));
    H.objectAt(I)->Data = std::move(Data);
  }

  for (uint64_t I = 0; I < NumTags; ++I) {
    uint64_t NumBound = R.u64();
    if (!R.ok() || NumBound > NumObjects)
      return "checkpoint: heap body truncated (tag bound lists)";
    TagInstance *T = H.tagAt(I);
    for (uint64_t K = 0; K < NumBound; ++K) {
      uint64_t ObjId = R.u64();
      if (!R.ok() || ObjId >= NumObjects)
        return "checkpoint: tag bound list references an unknown object";
      T->Bound.push_back(H.objectAt(ObjId));
    }
  }
  return {};
}

} // namespace bamboo::runtime
