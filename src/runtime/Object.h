//===- runtime/Object.h - Runtime objects, tags, and the heap ---*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime object model: heap objects carrying their class, current
/// flag valuation, and tag bindings; tag instances with back references to
/// the objects they are bound to (Section 4.7 — the runtime uses the back
/// references to prune tag-constrained task invocations); and the heap that
/// owns them.
///
/// Application payloads hang off Object::Data as ObjectData subclasses
/// (embedded programs define their own; the DSL interpreter stores field
/// vectors). The runtime never interprets payloads — abstract state lives
/// entirely in the flag word and tag bindings.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_RUNTIME_OBJECT_H
#define BAMBOO_RUNTIME_OBJECT_H

#include "ir/Program.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace bamboo::runtime {

class Object;

/// Base class for application data attached to runtime objects.
struct ObjectData {
  virtual ~ObjectData() = default;

  /// Key of the payload codec registered on the BoundProgram (see
  /// BoundProgram::registerCodec) that can serialize this payload into a
  /// checkpoint. Null means "not checkpointable" — taking a checkpoint of
  /// a heap holding such a payload fails with a clean error.
  virtual const char *checkpointKey() const { return nullptr; }
};

/// A tag instance. Binding is symmetric: the object lists its instances and
/// the instance lists its objects.
struct TagInstance {
  ir::TagTypeId Type = ir::InvalidId;
  uint64_t Id = 0;
  std::vector<Object *> Bound;
};

/// One heap object.
class Object {
public:
  Object(uint64_t Id, ir::ClassId Class, ir::FlagMask Flags)
      : Id(Id), Class(Class), FlagBits(Flags) {}

  const uint64_t Id;
  const ir::ClassId Class;
  std::vector<TagInstance *> Tags;
  std::unique_ptr<ObjectData> Data;

  /// Current flag valuation. Reads outside the object's lock are advisory
  /// (guard pre-checks); authoritative checks re-run under the lock.
  ir::FlagMask flags() const {
    return FlagBits.load(std::memory_order_acquire);
  }

  /// Applies a task exit's flag effect. Callers hold the object's lock,
  /// so a plain read-modify-store suffices.
  void updateFlags(ir::FlagMask Set, ir::FlagMask Clear) {
    FlagBits.store((FlagBits.load(std::memory_order_relaxed) | Set) & ~Clear,
                   std::memory_order_release);
  }

  /// All-or-nothing lock protocol (Section 4.7): acquire with tryLock,
  /// release everything on any failure, never block.
  bool tryLock() {
    bool Expected = false;
    return LockBit.compare_exchange_strong(Expected, true,
                                           std::memory_order_acquire);
  }
  void unlock() { LockBit.store(false, std::memory_order_release); }
  bool locked() const { return LockBit.load(std::memory_order_acquire); }

  /// First bound tag instance of \p Type, or null.
  TagInstance *tagOfType(ir::TagTypeId Type) const {
    for (TagInstance *T : Tags)
      if (T->Type == Type)
        return T;
    return nullptr;
  }

  /// All bound instances of \p Type.
  std::vector<TagInstance *> tagsOfType(ir::TagTypeId Type) const {
    std::vector<TagInstance *> Out;
    for (TagInstance *T : Tags)
      if (T->Type == Type)
        Out.push_back(T);
    return Out;
  }

  void bindTag(TagInstance *T) {
    if (std::find(Tags.begin(), Tags.end(), T) != Tags.end())
      return;
    Tags.push_back(T);
    T->Bound.push_back(this);
  }

  void unbindTag(TagInstance *T) {
    Tags.erase(std::remove(Tags.begin(), Tags.end(), T), Tags.end());
    T->Bound.erase(std::remove(T->Bound.begin(), T->Bound.end(), this),
                   T->Bound.end());
  }

  template <typename T> T &dataAs() {
    assert(Data && "object has no payload");
    return static_cast<T &>(*Data);
  }

private:
  std::atomic<ir::FlagMask> FlagBits;
  std::atomic<bool> LockBit{false};
};

/// Owns all objects and tag instances of one execution.
class Heap {
public:
  Object *allocate(ir::ClassId Class, ir::FlagMask Flags,
                   std::unique_ptr<ObjectData> Data) {
    std::lock_guard<std::mutex> Guard(M);
    auto Obj = std::make_unique<Object>(NextObjectId++, Class, Flags);
    Obj->Data = std::move(Data);
    Objects.push_back(std::move(Obj));
    return Objects.back().get();
  }

  TagInstance *newTag(ir::TagTypeId Type) {
    std::lock_guard<std::mutex> Guard(M);
    auto Tag = std::make_unique<TagInstance>();
    Tag->Type = Type;
    Tag->Id = NextTagId++;
    TagInstances.push_back(std::move(Tag));
    return TagInstances.back().get();
  }

  /// Drops all objects and tag instances (start of a fresh run).
  void clear() {
    std::lock_guard<std::mutex> Guard(M);
    Objects.clear();
    TagInstances.clear();
    NextObjectId = 0;
    NextTagId = 0;
  }

  size_t numObjects() const { return Objects.size(); }
  size_t numTags() const { return TagInstances.size(); }

  Object *objectAt(size_t I) { return Objects[I].get(); }
  TagInstance *tagAt(size_t I) { return TagInstances[I].get(); }

private:
  std::mutex M;
  std::vector<std::unique_ptr<Object>> Objects;
  std::vector<std::unique_ptr<TagInstance>> TagInstances;
  uint64_t NextObjectId = 0;
  uint64_t NextTagId = 0;
};

} // namespace bamboo::runtime

#endif // BAMBOO_RUNTIME_OBJECT_H
