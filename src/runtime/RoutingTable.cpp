//===- runtime/RoutingTable.cpp - Object routing from layouts -------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/RoutingTable.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace bamboo;
using namespace bamboo::runtime;

RoutingTable::RoutingTable(const ir::Program &Prog,
                           const analysis::Cstg &Graph,
                           const machine::Layout &L)
    : Prog(Prog), Graph(Graph), L(L) {
  PerNode.resize(Graph.Nodes.size());
  for (size_t Node = 0; Node < Graph.Nodes.size(); ++Node) {
    for (auto [Task, Param] : Graph.enabledAt(static_cast<int>(Node))) {
      RouteDest Dest;
      Dest.Task = Task;
      Dest.Param = Param;
      for (int InstIdx : L.instancesOf(Task))
        Dest.Instances.emplace_back(
            InstIdx, L.Instances[static_cast<size_t>(InstIdx)].Core);
      assert(!Dest.Instances.empty() &&
             "layout must instantiate every task");

      if (Dest.Instances.size() == 1) {
        Dest.Kind = DistributionKind::Single;
      } else {
        const ir::TaskParam &P =
            Prog.taskOf(Task).Params[static_cast<size_t>(Param)];
        if (Prog.taskOf(Task).Params.size() > 1) {
          // Replicated multi-parameter tasks must be tag-linked
          // (Section 4.3.4); hash the constrained tag type so linked
          // objects meet on one core.
          assert(!P.Tags.empty() &&
                 "replicated multi-parameter task without tag link");
          Dest.Kind = DistributionKind::TagHash;
          Dest.HashTagType = P.Tags.front().Type;
        } else {
          Dest.Kind = DistributionKind::RoundRobin;
        }
      }
      PerNode[Node].push_back(std::move(Dest));
    }
  }
}

namespace {

/// Ascending \p Cores rotated to start just after \p Pivot (wrap-around).
/// The input set is already sorted and deduplicated.
std::vector<int> rotateAfter(const std::set<int> &Cores, int Pivot) {
  std::vector<int> Out;
  Out.reserve(Cores.size());
  for (auto It = Cores.upper_bound(Pivot); It != Cores.end(); ++It)
    Out.push_back(*It);
  for (auto It = Cores.begin();
       It != Cores.end() && *It <= Pivot; ++It)
    if (*It != Pivot)
      Out.push_back(*It);
  return Out;
}

} // namespace

std::vector<int> RoutingTable::siblingsOf(int Core) const {
  std::set<int> Group;
  for (const machine::TaskInstance &Inst : L.Instances) {
    if (Inst.Core != Core)
      continue;
    for (int Sib : L.instancesOf(Inst.Task))
      Group.insert(L.Instances[static_cast<size_t>(Sib)].Core);
  }
  Group.erase(Core);
  return rotateAfter(Group, Core);
}

std::vector<int> RoutingTable::failoverOrder(int Core) const {
  std::vector<int> Order = siblingsOf(Core);
  std::set<int> Rest;
  for (int Used : L.usedCores())
    if (Used != Core &&
        std::find(Order.begin(), Order.end(), Used) == Order.end())
      Rest.insert(Used);
  for (int C : rotateAfter(Rest, Core))
    Order.push_back(C);
  return Order;
}

int RoutingTable::nodeOf(const Object &Obj) const {
  analysis::AbstractState State;
  State.Flags = Obj.flags();
  State.TagCounts.assign(Prog.tagTypes().size(), analysis::TagCount::Zero);
  for (const TagInstance *T : Obj.Tags) {
    analysis::TagCount &C =
        State.TagCounts[static_cast<size_t>(T->Type)];
    C = C == analysis::TagCount::Zero ? analysis::TagCount::One
                                      : analysis::TagCount::Many;
  }
  int Node = Graph.findNode(Obj.Class, State);
  // With exact 1-limited counts, "many" is imprecise: an object with two
  // or more instances matches Many. If the exact state is missing (an
  // object holding N>=2 instances where the analysis saturated), retry
  // with saturation already applied — findNode above covers it because we
  // saturate identically. A miss therefore indicates a real divergence.
  assert(Node >= 0 && "live object reached a state outside the analysis");
  return Node;
}
