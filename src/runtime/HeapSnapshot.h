//===- runtime/HeapSnapshot.h - Heap <-> checkpoint serialization -*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a complete runtime heap — objects with class, flag word,
/// lock bit, tag bindings and application payloads, plus tag instances
/// with their bound lists — into a checkpoint body, and rebuilds it.
///
/// Identity preservation: heap ids are dense and never freed, so the
/// loader re-allocates objects and tag instances in id order and the
/// fresh ids match the serialized ones by construction. Payloads go
/// through the BoundProgram's codec registry (ObjectData::checkpointKey);
/// object/tag cross references inside payloads are serialized as ids and
/// resolved against the rebuilt heap. Both directions fail with a clean
/// error string when a payload has no codec.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_RUNTIME_HEAPSNAPSHOT_H
#define BAMBOO_RUNTIME_HEAPSNAPSHOT_H

#include "runtime/BoundProgram.h"

#include <string>

namespace bamboo::runtime {

/// Appends the heap to \p W. Returns an empty string on success, a
/// descriptive error otherwise (the writer's contents are then invalid).
std::string saveHeap(Heap &H, const BoundProgram &BP,
                     resilience::ByteWriter &W, CodecSaveCtx &Ctx);

/// Rebuilds \p H (which must be empty) from \p R. Same error convention.
std::string loadHeap(resilience::ByteReader &R, const BoundProgram &BP,
                     Heap &H, CodecLoadCtx &Ctx);

} // namespace bamboo::runtime

#endif // BAMBOO_RUNTIME_HEAPSNAPSHOT_H
