//===- runtime/HeapSnapshot.h - Heap <-> checkpoint serialization -*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a complete runtime heap — objects with class, flag word,
/// lock bit, tag bindings and application payloads, plus tag instances
/// with their bound lists — into a checkpoint body, and rebuilds it.
///
/// Identity preservation: heap ids are dense and never freed, so the
/// loader re-allocates objects and tag instances in id order and the
/// fresh ids match the serialized ones by construction. Payloads go
/// through the BoundProgram's codec registry (ObjectData::checkpointKey);
/// object/tag cross references inside payloads are serialized as ids and
/// resolved against the rebuilt heap. Both directions fail with a clean
/// error string when a payload has no codec.
///
/// Also hosts the field-list codec helper: every application payload in
/// this repo is a pure field list, so registerFieldCodec turns each
/// hand-written save/load pair into one registration statement.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_RUNTIME_HEAPSNAPSHOT_H
#define BAMBOO_RUNTIME_HEAPSNAPSHOT_H

#include "runtime/BoundProgram.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace bamboo::runtime {

/// Appends the heap to \p W. Returns an empty string on success, a
/// descriptive error otherwise (the writer's contents are then invalid).
std::string saveHeap(Heap &H, const BoundProgram &BP,
                     resilience::ByteWriter &W, CodecSaveCtx &Ctx);

/// Rebuilds \p H (which must be empty) from \p R. Same error convention.
std::string loadHeap(resilience::ByteReader &R, const BoundProgram &BP,
                     Heap &H, CodecLoadCtx &Ctx);

//===----------------------------------------------------------------------===//
// Field-list payload codecs
//===----------------------------------------------------------------------===//
//
// Every application payload codec is the same shape: write the members
// in declaration order, read them back in the same order, never touch
// the codec contexts. registerFieldCodec captures that pattern in one
// statement per class:
//
//   registerFieldCodec<RowData>(BP, "fractal.row", &RowData::Row,
//                               &RowData::Iterations);
//
// The byte format is defined entirely by the member-pointer order, so a
// hand-written save/load pair migrates onto the helper with its
// checkpoint bytes unchanged (the golden-checkpoint fixtures hold this).
//
// Scalars map onto the ByteWriter primitives (int -> i32, int64_t ->
// i64, uint64_t -> u64, double -> f64); vectors of those are
// length-prefixed with a u64 count. A struct-valued member (a nested
// parameter block, a feature record) is supported by overloading
// saveCodecField/loadCodecField for the member's type in the namespace
// where that type lives -- the helper finds the pair through
// argument-dependent lookup at registration sites.

inline void saveCodecField(resilience::ByteWriter &W, int V) { W.i32(V); }
inline void saveCodecField(resilience::ByteWriter &W, int64_t V) {
  W.i64(V);
}
inline void saveCodecField(resilience::ByteWriter &W, uint64_t V) {
  W.u64(V);
}
inline void saveCodecField(resilience::ByteWriter &W, double V) {
  W.f64(V);
}
inline void saveCodecField(resilience::ByteWriter &W,
                           const std::vector<double> &V) {
  W.u64(V.size());
  for (double D : V)
    W.f64(D);
}
inline void saveCodecField(resilience::ByteWriter &W,
                           const std::vector<int64_t> &V) {
  W.u64(V.size());
  for (int64_t I : V)
    W.i64(I);
}

inline void loadCodecField(resilience::ByteReader &R, int &V) {
  V = R.i32();
}
inline void loadCodecField(resilience::ByteReader &R, int64_t &V) {
  V = R.i64();
}
inline void loadCodecField(resilience::ByteReader &R, uint64_t &V) {
  V = R.u64();
}
inline void loadCodecField(resilience::ByteReader &R, double &V) {
  V = R.f64();
}
inline void loadCodecField(resilience::ByteReader &R,
                           std::vector<double> &V) {
  V.resize(R.u64());
  for (double &D : V)
    D = R.f64();
}
inline void loadCodecField(resilience::ByteReader &R,
                           std::vector<int64_t> &V) {
  V.resize(R.u64());
  for (int64_t &I : V)
    I = R.i64();
}

/// Registers a payload codec for \p T under \p Key serializing exactly
/// the listed members, in the listed order.
template <typename T, typename... MemberT>
void registerFieldCodec(BoundProgram &BP, const char *Key,
                        MemberT T::*...Fields) {
  ObjectCodec C;
  C.Save = [Fields...](const ObjectData &D, resilience::ByteWriter &W,
                       CodecSaveCtx &) {
    const T &Obj = static_cast<const T &>(D);
    (saveCodecField(W, Obj.*Fields), ...);
  };
  C.Load = [Fields...](resilience::ByteReader &R,
                       CodecLoadCtx &) -> std::unique_ptr<ObjectData> {
    auto Obj = std::make_unique<T>();
    (loadCodecField(R, (*Obj).*Fields), ...);
    return Obj;
  };
  BP.registerCodec(Key, std::move(C));
}

} // namespace bamboo::runtime

#endif // BAMBOO_RUNTIME_HEAPSNAPSHOT_H
