//===- runtime/TaskContext.h - Per-invocation task context ------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface a running task body sees: its locked parameter objects,
/// allocation of new objects at declared sites, tag creation and binding,
/// work metering (virtual cycles), exit selection, and a deterministic
/// per-invocation PRNG. The executor owns the context; after the body
/// returns, the executor applies the chosen exit's flag/tag effects and
/// routes the transitioned and newly created objects.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_RUNTIME_TASKCONTEXT_H
#define BAMBOO_RUNTIME_TASKCONTEXT_H

#include "machine/MachineConfig.h"
#include "runtime/BoundProgram.h"
#include "runtime/Object.h"
#include "support/Rng.h"

#include <cassert>
#include <map>
#include <string>
#include <vector>

namespace bamboo::runtime {

/// Context handed to a task body for one invocation.
class TaskContext {
public:
  TaskContext(const BoundProgram &BP, Heap &TheHeap, ir::TaskId Task,
              std::vector<Object *> Params,
              std::map<std::string, TagInstance *> ConstraintTags,
              const std::vector<std::string> &Args, uint64_t RngSeed)
      : BP(BP), TheHeap(TheHeap), Task(Task), Params(std::move(Params)),
        TagVars(std::move(ConstraintTags)), Args(Args), Prng(RngSeed) {
    const ir::TaskDecl &Decl = BP.program().taskOf(Task);
    assert(this->Params.size() == Decl.Params.size() &&
           "parameter count mismatch");
    ChosenExit = static_cast<ir::ExitId>(Decl.Exits.size() - 1); // Fallthrough.
  }

  /// Rebuilds a *post-body* context from a checkpoint: the body already
  /// ran before the snapshot, so only the state the executor's completion
  /// step consumes (charged cycles, chosen exit, new objects, tag vars) is
  /// restored; the PRNG is irrelevant after the body returned.
  static std::unique_ptr<TaskContext>
  restore(const BoundProgram &BP, Heap &TheHeap, ir::TaskId Task,
          std::vector<Object *> Params,
          std::map<std::string, TagInstance *> TagVars,
          const std::vector<std::string> &Args, machine::Cycles Charged,
          ir::ExitId ChosenExit,
          std::vector<std::pair<ir::SiteId, Object *>> NewObjects) {
    auto Ctx = std::make_unique<TaskContext>(BP, TheHeap, Task,
                                             std::move(Params),
                                             std::move(TagVars), Args,
                                             /*RngSeed=*/0);
    Ctx->Charged = Charged;
    Ctx->ChosenExit = ChosenExit;
    Ctx->NewObjects = std::move(NewObjects);
    return Ctx;
  }

  const ir::Program &program() const { return BP.program(); }
  ir::TaskId task() const { return Task; }

  /// The \p I-th locked parameter object.
  Object &param(int I) { return *Params[static_cast<size_t>(I)]; }

  /// The payload of parameter \p I, downcast to the app's type.
  template <typename T> T &paramData(int I) {
    return param(I).dataAs<T>();
  }

  /// Allocates an object at site \p Site: its class and initial flags come
  /// from the site declaration; tags bound at the site are resolved from
  /// the context's tag variables (bindTagVar / constraint vars), or can be
  /// passed explicitly.
  Object *allocate(ir::SiteId Site, std::unique_ptr<ObjectData> Data,
                   const std::vector<TagInstance *> &Tags = {}) {
    const ir::AllocSite &S = program().siteOf(Site);
    assert(S.Owner == Task && "allocating at another task's site");
    Object *Obj = TheHeap.allocate(S.Class, S.InitialFlags, std::move(Data));
    for (TagInstance *T : Tags)
      Obj->bindTag(T);
    NewObjects.emplace_back(Site, Obj);
    return Obj;
  }

  /// Creates a fresh tag instance.
  TagInstance *newTag(ir::TagTypeId Type) { return TheHeap.newTag(Type); }

  /// Direct heap access for allocations that are *not* allocation sites
  /// (plain helper objects with no abstract state). Such objects are never
  /// routed; they are ordinary data reachable from the parameters.
  Heap &heap() { return TheHeap; }

  /// The tag instance bound to variable \p Var (from the parameter `with`
  /// constraints, a bindTagVar call, or a tag the body created). Null if
  /// unbound.
  TagInstance *tagVar(const std::string &Var) const {
    auto It = TagVars.find(Var);
    return It == TagVars.end() ? nullptr : It->second;
  }

  /// Binds \p Var for exit tag actions and site bindings.
  void bindTagVar(const std::string &Var, TagInstance *Inst) {
    TagVars[Var] = Inst;
  }

  /// Adds \p C virtual cycles of work to this invocation.
  void charge(machine::Cycles C) { Charged += C; }

  /// Selects the exit whose effects the runtime applies when the body
  /// returns. Convention: call exitWith and then return.
  void exitWith(ir::ExitId E) {
    assert(E >= 0 &&
           static_cast<size_t>(E) < program().taskOf(Task).Exits.size() &&
           "exit out of range");
    ChosenExit = E;
  }

  /// Deterministic per-invocation PRNG (seeded from the run seed, the
  /// task, and the primary parameter's identity, so results do not depend
  /// on the layout).
  Rng &rng() { return Prng; }

  /// Command-line style arguments of the run.
  const std::vector<std::string> &args() const { return Args; }

  // Executor-facing accessors.
  machine::Cycles chargedCycles() const { return Charged; }
  ir::ExitId chosenExit() const { return ChosenExit; }
  const std::vector<std::pair<ir::SiteId, Object *>> &newObjects() const {
    return NewObjects;
  }
  const std::map<std::string, TagInstance *> &tagVars() const {
    return TagVars;
  }

private:
  const BoundProgram &BP;
  Heap &TheHeap;
  ir::TaskId Task;
  std::vector<Object *> Params;
  std::map<std::string, TagInstance *> TagVars;
  const std::vector<std::string> &Args;
  Rng Prng;

  machine::Cycles Charged = 0;
  ir::ExitId ChosenExit = 0;
  std::vector<std::pair<ir::SiteId, Object *>> NewObjects;
};

} // namespace bamboo::runtime

#endif // BAMBOO_RUNTIME_TASKCONTEXT_H
