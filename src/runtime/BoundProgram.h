//===- runtime/BoundProgram.h - Programs bound to executable bodies -*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BoundProgram pairs a task-level ir::Program with an executable body
/// per task. Bodies are std::function callables over a TaskContext —
/// embedded C++ applications register lambdas, and the DSL interpreter
/// registers closures that evaluate the parsed task ASTs. The executors
/// only ever see BoundPrograms.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_RUNTIME_BOUNDPROGRAM_H
#define BAMBOO_RUNTIME_BOUNDPROGRAM_H

#include "ir/Program.h"
#include "profile/Profile.h"
#include "runtime/Object.h"

#include <functional>
#include <memory>
#include <vector>

namespace bamboo::runtime {

class TaskContext;

/// An executable task body.
using TaskBody = std::function<void(TaskContext &)>;

/// Creates the payload of the startup object from the run's arguments.
using StartupFactory =
    std::function<std::unique_ptr<ObjectData>(const std::vector<std::string> &)>;

/// A program plus its executable bodies and simulator hints.
class BoundProgram {
public:
  explicit BoundProgram(ir::Program Prog)
      : Prog(std::move(Prog)) {
    Bodies.resize(this->Prog.tasks().size());
  }

  const ir::Program &program() const { return Prog; }

  void bind(ir::TaskId Task, TaskBody Body) {
    Bodies[static_cast<size_t>(Task)] = std::move(Body);
  }

  const TaskBody &bodyOf(ir::TaskId Task) const {
    return Bodies[static_cast<size_t>(Task)];
  }

  /// True when every task has a body.
  bool fullyBound() const {
    for (const TaskBody &B : Bodies)
      if (!B)
        return false;
    return true;
  }

  void setStartupFactory(StartupFactory F) { MakeStartup = std::move(F); }
  const StartupFactory &startupFactory() const { return MakeStartup; }

  profile::SimHints &hints() { return Hints; }
  const profile::SimHints &hints() const { return Hints; }

  /// Marks \p Task's exit counts as tracked per primary parameter object in
  /// the scheduling simulator (Section 4.4's developer hint).
  void hintPerObjectExits(ir::TaskId Task) {
    if (Hints.PerTask.size() < Prog.tasks().size())
      Hints.PerTask.resize(Prog.tasks().size(),
                           profile::ExitCountHint::PerTask);
    Hints.PerTask[static_cast<size_t>(Task)] =
        profile::ExitCountHint::PerObject;
  }

private:
  ir::Program Prog;
  std::vector<TaskBody> Bodies;
  StartupFactory MakeStartup;
  profile::SimHints Hints;
};

} // namespace bamboo::runtime

#endif // BAMBOO_RUNTIME_BOUNDPROGRAM_H
