//===- runtime/BoundProgram.h - Programs bound to executable bodies -*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BoundProgram pairs a task-level ir::Program with an executable body
/// per task. Bodies are std::function callables over a TaskContext —
/// embedded C++ applications register lambdas, and the DSL interpreter
/// registers closures that evaluate the parsed task ASTs. The executors
/// only ever see BoundPrograms.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_RUNTIME_BOUNDPROGRAM_H
#define BAMBOO_RUNTIME_BOUNDPROGRAM_H

#include "ir/Program.h"
#include "profile/Profile.h"
#include "resilience/Checkpoint.h"
#include "runtime/Object.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bamboo::runtime {

class TaskContext;

/// An executable task body.
using TaskBody = std::function<void(TaskContext &)>;

/// Creates the payload of the startup object from the run's arguments.
using StartupFactory =
    std::function<std::unique_ptr<ObjectData>(const std::vector<std::string> &)>;

/// Checkpoint-wide state threaded through payload codecs while saving.
/// SharedIds lets codecs serialize aliased shared structures (e.g. the DSL
/// interpreter's shared arrays) once: the first occurrence inlines the
/// contents under a fresh id, later occurrences write only the id.
struct CodecSaveCtx {
  std::map<const void *, uint64_t> SharedIds;
  uint64_t NextSharedId = 0;
};

/// Load-side counterpart: the heap being rebuilt (object/tag cross
/// references in payloads are serialized as ids and resolved here — ids
/// are dense indices, restored in order) and the shared structures decoded
/// so far.
struct CodecLoadCtx {
  Heap *TheHeap = nullptr;
  std::map<uint64_t, std::shared_ptr<void>> Shared;
};

/// A payload codec: serializes one ObjectData subclass into checkpoint
/// bytes and back. Registered on the BoundProgram under the key the
/// payload's ObjectData::checkpointKey() returns. Save and Load must be
/// exactly symmetric (Load consumes precisely the bytes Save wrote).
struct ObjectCodec {
  std::function<void(const ObjectData &, resilience::ByteWriter &,
                     CodecSaveCtx &)>
      Save;
  std::function<std::unique_ptr<ObjectData>(resilience::ByteReader &,
                                            CodecLoadCtx &)>
      Load;
};

/// A program plus its executable bodies and simulator hints.
class BoundProgram {
public:
  explicit BoundProgram(ir::Program Prog)
      : Prog(std::move(Prog)) {
    Bodies.resize(this->Prog.tasks().size());
  }

  const ir::Program &program() const { return Prog; }

  void bind(ir::TaskId Task, TaskBody Body) {
    Bodies[static_cast<size_t>(Task)] = std::move(Body);
  }

  const TaskBody &bodyOf(ir::TaskId Task) const {
    return Bodies[static_cast<size_t>(Task)];
  }

  /// True when every task has a body.
  bool fullyBound() const {
    for (const TaskBody &B : Bodies)
      if (!B)
        return false;
    return true;
  }

  void setStartupFactory(StartupFactory F) { MakeStartup = std::move(F); }
  const StartupFactory &startupFactory() const { return MakeStartup; }

  /// Registers the payload codec for checkpointKey() == \p Key.
  void registerCodec(const std::string &Key, ObjectCodec C) {
    Codecs[Key] = std::move(C);
  }

  /// The codec registered under \p Key; null when unknown (the checkpoint
  /// writer turns that into a clean "payload not checkpointable" error).
  const ObjectCodec *codec(const std::string &Key) const {
    auto It = Codecs.find(Key);
    return It == Codecs.end() ? nullptr : &It->second;
  }

  profile::SimHints &hints() { return Hints; }
  const profile::SimHints &hints() const { return Hints; }

  /// Marks \p Task's exit counts as tracked per primary parameter object in
  /// the scheduling simulator (Section 4.4's developer hint).
  void hintPerObjectExits(ir::TaskId Task) {
    if (Hints.PerTask.size() < Prog.tasks().size())
      Hints.PerTask.resize(Prog.tasks().size(),
                           profile::ExitCountHint::PerTask);
    Hints.PerTask[static_cast<size_t>(Task)] =
        profile::ExitCountHint::PerObject;
  }

private:
  ir::Program Prog;
  std::vector<TaskBody> Bodies;
  StartupFactory MakeStartup;
  profile::SimHints Hints;
  std::map<std::string, ObjectCodec> Codecs;
};

} // namespace bamboo::runtime

#endif // BAMBOO_RUNTIME_BOUNDPROGRAM_H
