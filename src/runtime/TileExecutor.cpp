//===- runtime/TileExecutor.cpp - Discrete-event many-core executor -------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/TileExecutor.h"

#include "runtime/HeapSnapshot.h"
#include "runtime/TaskContext.h"
#include "support/Debug.h"
#include "support/Format.h"
#include "support/Watchdog.h"

#include <algorithm>
#include <cassert>

using namespace bamboo;
using namespace bamboo::runtime;
using machine::Cycles;

TileExecutor::TileExecutor(const BoundProgram &BP,
                           const analysis::Cstg &Graph,
                           const machine::MachineConfig &Machine,
                           const machine::Layout &L)
    : BP(BP), Prog(BP.program()), Graph(Graph), Machine(Machine), L(L),
      Routes(Prog, Graph, L), LockPlans(analysis::buildLockPlans(Prog)) {
  assert(BP.fullyBound() && "every task needs a body");
  assert(L.covers(Prog) && "layout must instantiate every task");
  assert(L.NumCores <= Machine.NumCores && "layout exceeds the machine");
}

void TileExecutor::push(Event E) {
  E.Seq = NextSeq++;
  Queue.push(std::move(E));
}

bool TileExecutor::guardAdmitsObject(const ir::TaskParam &Param,
                                     const Object &Obj) const {
  if (Obj.Class != Param.Class)
    return false;
  if (!Param.Guard->evaluate(Obj.flags()))
    return false;
  for (const ir::TagConstraint &TC : Param.Tags)
    if (!Obj.tagOfType(TC.Type))
      return false;
  return true;
}

bool TileExecutor::bindParamTags(const ir::TaskParam &Param, Object *Obj,
                                 Invocation &Partial) const {
  for (const ir::TagConstraint &TC : Param.Tags) {
    auto Bound = Partial.ConstraintTags.find(TC.Var);
    if (Bound != Partial.ConstraintTags.end()) {
      // Variable already fixed by an earlier parameter: this object must
      // carry the same instance.
      if (std::find(Obj->Tags.begin(), Obj->Tags.end(), Bound->second) ==
          Obj->Tags.end())
        return false;
      continue;
    }
    // Bind the object's instance of this type. Objects in this runtime
    // carry at most a handful of instances per type; when several exist,
    // the first is chosen — later parameters constrained by the same
    // variable re-validate against it, and mismatching combinations are
    // simply produced by other deliveries.
    TagInstance *Inst = Obj->tagOfType(TC.Type);
    if (!Inst)
      return false;
    Partial.ConstraintTags.emplace(TC.Var, Inst);
  }
  return true;
}

void TileExecutor::matchParams(int Core, int InstanceIdx,
                               const ir::TaskDecl &Task, size_t NextParam,
                               Invocation &Partial, ir::ParamId FixedParam,
                               Object *FixedObj, bool DedupeReady) {
  if (NextParam == Task.Params.size()) {
    if (DedupeReady) {
      // Re-enumeration after a re-delivery: the same combination may
      // already be pending from the original arrivals. Enqueueing it
      // twice would execute the task twice once the objects' guards
      // hold, so skip exact duplicates.
      for (const Invocation &Pending :
           Cores[static_cast<size_t>(Core)].Ready)
        if (Pending.InstanceIdx == Partial.InstanceIdx &&
            Pending.Params == Partial.Params)
          return;
    }
    Cores[static_cast<size_t>(Core)].Ready.push_back(Partial);
    return;
  }
  const ir::TaskParam &Param = Task.Params[NextParam];
  InstanceState &Inst = Instances[static_cast<size_t>(InstanceIdx)];

  std::vector<Object *> Candidates;
  if (static_cast<ir::ParamId>(NextParam) == FixedParam)
    Candidates.push_back(FixedObj);
  else
    Candidates = Inst.ParamSets[NextParam];

  for (Object *Obj : Candidates) {
    // One object cannot serve two parameters of the same invocation: the
    // all-or-nothing lock step would self-conflict.
    if (std::find(Partial.Params.begin(), Partial.Params.end(), Obj) !=
        Partial.Params.end())
      continue;
    if (!guardAdmitsObject(Param, *Obj))
      continue;
    auto SavedTags = Partial.ConstraintTags;
    if (!bindParamTags(Param, Obj, Partial)) {
      Partial.ConstraintTags = std::move(SavedTags);
      continue;
    }
    Partial.Params.push_back(Obj);
    matchParams(Core, InstanceIdx, Task, NextParam + 1, Partial, FixedParam,
                FixedObj, DedupeReady);
    Partial.Params.pop_back();
    Partial.ConstraintTags = std::move(SavedTags);
  }
}

void TileExecutor::enumerateInvocations(int Core, int InstanceIdx,
                                        ir::ParamId Param, Object *Obj,
                                        bool DedupeReady) {
  ir::TaskId TaskId = L.Instances[static_cast<size_t>(InstanceIdx)].Task;
  const ir::TaskDecl &Task = Prog.taskOf(TaskId);
  if (!guardAdmitsObject(Task.Params[static_cast<size_t>(Param)], *Obj))
    return;
  Invocation Partial;
  Partial.Task = TaskId;
  Partial.InstanceIdx = InstanceIdx;
  matchParams(Core, InstanceIdx, Task, 0, Partial, Param, Obj, DedupeReady);
}

bool TileExecutor::stillValid(const Invocation &Inv) const {
  const ir::TaskDecl &Task = Prog.taskOf(Inv.Task);
  for (size_t P = 0; P < Inv.Params.size(); ++P)
    if (!guardAdmitsObject(Task.Params[P], *Inv.Params[P]))
      return false;
  // Tag constraints: the bound instances must still link the objects.
  for (size_t P = 0; P < Inv.Params.size(); ++P) {
    for (const ir::TagConstraint &TC : Task.Params[P].Tags) {
      auto It = Inv.ConstraintTags.find(TC.Var);
      if (It == Inv.ConstraintTags.end())
        return false;
      Object *Obj = Inv.Params[P];
      if (std::find(Obj->Tags.begin(), Obj->Tags.end(), It->second) ==
          Obj->Tags.end())
        return false;
    }
  }
  return true;
}

void TileExecutor::deliver(const Event &E) {
  if (!CoreAlive[static_cast<size_t>(E.Core)]) {
    // In-flight delivery racing a permanent core failure.
    resilience::RecoveryReport &Rep = Result.Recovery;
    int Fwd = InstanceCore[static_cast<size_t>(E.InstanceIdx)];
    if (!Opts->Recovery || Fwd == E.Core ||
        !CoreAlive[static_cast<size_t>(Fwd)]) {
      ++Rep.BlackholedDeliveries; // The dead core swallows it.
      return;
    }
    // Recovery: forward to the instance's failover home.
    Cycles Hop = Machine.SendOverhead + Machine.transferLatency(E.Core, Fwd);
    ++Rep.RedirectedDeliveries;
    Rep.AddedCycles += Hop;
    if (Opts->Trace)
      Opts->Trace->failover(E.Time, E.Core, Fwd,
                            static_cast<int64_t>(E.Obj->Id));
    Event Redirected = E;
    Redirected.Time = E.Time + Hop;
    Redirected.Core = Fwd;
    push(std::move(Redirected));
    return;
  }
  InstanceState &Inst = Instances[static_cast<size_t>(E.InstanceIdx)];
  std::vector<Object *> &Set =
      Inst.ParamSets[static_cast<size_t>(E.Param)];
  // A re-delivery of an object already sitting in the parameter set is
  // NOT a no-op: the object is only re-routed after a task transitioned
  // its flags/tags, so combinations with objects that arrived while it
  // was inadmissible may be newly enabled. Re-enumerate (deduplicating
  // against already-pending invocations) instead of returning early.
  bool Known = std::find(Set.begin(), Set.end(), E.Obj) != Set.end();
  if (!Known)
    Set.push_back(E.Obj);
  if (Opts->Trace)
    Opts->Trace->deliver(E.Time, E.Core,
                         static_cast<int64_t>(E.Obj->Id));
  enumerateInvocations(E.Core, E.InstanceIdx, E.Param, E.Obj,
                       /*DedupeReady=*/Known);
  if (!Cores[static_cast<size_t>(E.Core)].Executing)
    tryStart(E.Core, std::max(E.Time,
                              Cores[static_cast<size_t>(E.Core)].BusyUntil));
}

bool TileExecutor::resolveSend(Object *Obj, int FromCore, int ToCore,
                               Cycles Now, Cycles &Penalty,
                               int &Duplicates) {
  resilience::RecoveryReport &Rep = Result.Recovery;
  for (int Attempt = 0;; ++Attempt) {
    auto D = Injector.onSend(Now, FromCore, ToCore,
                             static_cast<uint64_t>(Obj->Id), Attempt);
    if (D.Drop) {
      ++Rep.Drops;
      if (Opts->Trace)
        Opts->Trace->faultInject(
            Now + Penalty, FromCore,
            static_cast<int>(resilience::FaultKind::MsgDrop),
            static_cast<int64_t>(Obj->Id));
      if (!Opts->Recovery) {
        ++Rep.LostMessages;
        return false;
      }
      if (Attempt >= Machine.MaxSendRetries) {
        // Retry budget exhausted: escalate to the slow verified channel.
        // The transfer still arrives — with the full backoff already paid.
        ++Rep.Escalations;
        return true;
      }
      // The missing ack is noticed AckTimeout cycles in; the retransmit
      // waits out an exponential backoff on top.
      ++Rep.Retransmits;
      Penalty += Machine.AckTimeout +
                 (Machine.RetryBackoffBase << std::min(Attempt, 16));
      if (Opts->Trace)
        Opts->Trace->retransmit(Now + Penalty, FromCore, ToCore,
                                static_cast<int64_t>(Obj->Id),
                                static_cast<uint64_t>(Attempt) + 1);
      continue;
    }
    if (D.Duplicate) {
      ++Rep.Dups;
      ++Duplicates;
      if (Opts->Trace)
        Opts->Trace->faultInject(
            Now + Penalty, FromCore,
            static_cast<int>(resilience::FaultKind::MsgDup),
            static_cast<int64_t>(Obj->Id));
    }
    if (D.Delay) {
      ++Rep.Delays;
      Penalty += D.Delay;
      if (Opts->Trace)
        Opts->Trace->faultInject(
            Now + Penalty, FromCore,
            static_cast<int>(resilience::FaultKind::MsgDelay),
            static_cast<int64_t>(Obj->Id));
    }
    return true;
  }
}

void TileExecutor::routeObject(Object *Obj, int FromCore, Cycles Now) {
  int Node = Routes.nodeOf(*Obj);
  for (const RouteDest &Dest : Routes.destsAt(Node)) {
    size_t Pick = 0;
    switch (Dest.Kind) {
    case DistributionKind::Single:
      break;
    case DistributionKind::RoundRobin: {
      // Per-sender counters, seeded with the sender core: senders start
      // their round-robin walk at "their own" replica, so concurrent
      // producers spread over all instances instead of all hammering
      // instance 0 (and a core whose own replica hosts the next task
      // tends to keep the object local — the data locality rule).
      auto [It, Inserted] = RoundRobin.try_emplace(
          {FromCore, Dest.Task},
          FromCore >= 0 ? static_cast<size_t>(FromCore) : 0);
      Pick = It->second++ % Dest.Instances.size();
      (void)Inserted;
      break;
    }
    case DistributionKind::TagHash: {
      TagInstance *Inst = Obj->tagOfType(Dest.HashTagType);
      Pick = Inst ? static_cast<size_t>(Inst->Id) % Dest.Instances.size()
                  : 0;
      break;
    }
    }
    int InstanceIdx = Dest.Instances[Pick].first;
    // The instance's *current* home: failover migration may have moved it
    // off the layout's original core.
    int Core = InstanceCore[static_cast<size_t>(InstanceIdx)];
    Cycles Latency = 0;
    Cycles Penalty = 0;
    int Duplicates = 0;
    if (FromCore >= 0 && FromCore != Core) {
      Latency = Machine.SendOverhead + Machine.transferLatency(FromCore, Core);
      ++Result.MessagesSent;
      uint32_t Hops =
          static_cast<uint32_t>(Machine.hopDistance(FromCore, Core));
      Result.MessageHops += Hops;
      if (Opts->Trace)
        Opts->Trace->send(Now, FromCore, Core,
                          static_cast<int64_t>(Obj->Id), Hops,
                          Machine.MsgBytesPerObject);
      if (Injector.active()) {
        // The whole ack/retransmit exchange is resolved analytically at
        // send time (every per-attempt decision is deterministic), so the
        // event queue only ever sees the final arrival.
        if (!resolveSend(Obj, FromCore, Core, Now, Penalty, Duplicates))
          continue; // Lost for good (recovery off): no arrival.
        Result.Recovery.AddedCycles += Penalty;
      }
    }
    Event Arrival;
    Arrival.Kind = EventKind::Delivery;
    Arrival.Time = Now + Latency + Penalty;
    Arrival.Core = Core;
    Arrival.Obj = Obj;
    Arrival.InstanceIdx = InstanceIdx;
    Arrival.Param = Dest.Param;
    // A duplicated transfer arrives again; the executors' idempotent
    // re-delivery (dedupe against pending invocations) absorbs it.
    for (int Copy = 0; Copy < 1 + Duplicates; ++Copy)
      push(Arrival);
  }
}

void TileExecutor::tryStart(int CoreIdx, Cycles Now) {
  CoreState &Core = Cores[static_cast<size_t>(CoreIdx)];
  if (!CoreAlive[static_cast<size_t>(CoreIdx)])
    return; // Fail-stop: a dead core never dispatches again.
  if (Core.Executing)
    return;
  if (Core.Ready.empty())
    return;
  if (Injector.active()) {
    resilience::RecoveryReport &Rep = Result.Recovery;
    Cycles &Stall = StallEnd[static_cast<size_t>(CoreIdx)];
    if (Now >= Stall) {
      if (Cycles End = Injector.stallUntil(Now, CoreIdx); End > Stall) {
        // A new stall window opens: the core dispatches nothing until it
        // ends. Stalls are transient by definition, so the window closes
        // regardless of the recovery setting.
        Stall = End;
        ++Rep.Stalls;
        Rep.AddedCycles += End - Now;
        if (Opts->Trace)
          Opts->Trace->faultInject(
              Now, CoreIdx, static_cast<int>(resilience::FaultKind::CoreStall),
              -1);
      }
    }
    if (Now < Stall) {
      Event Wake;
      Wake.Kind = EventKind::Wake;
      Wake.Time = Stall;
      Wake.Core = CoreIdx;
      push(std::move(Wake));
      return;
    }
    Cycles &Lock = LockEnd[static_cast<size_t>(CoreIdx)];
    if (Now >= Lock) {
      if (Cycles End = Injector.lockFaultUntil(Now, CoreIdx); End > Lock) {
        Lock = End;
        ++Rep.LockFaults;
        Rep.AddedCycles += End - Now;
        if (Opts->Trace)
          Opts->Trace->faultInject(
              Now, CoreIdx, static_cast<int>(resilience::FaultKind::LockSweep),
              -1);
      }
    }
    if (Now < Lock) {
      // Livelock window: every all-or-nothing sweep on this core fails.
      // Count it like any other failed sweep and retry at the window end.
      ++Result.LockRetries;
      if (Opts->Trace)
        Opts->Trace->lockRetry(Now, CoreIdx, Core.Ready.front().Task);
      Event Wake;
      Wake.Kind = EventKind::Wake;
      Wake.Time = Lock;
      Wake.Core = CoreIdx;
      push(std::move(Wake));
      return;
    }
  }
  size_t Attempts = Core.Ready.size();
  while (Attempts-- > 0) {
    Invocation Inv = std::move(Core.Ready.front());
    Core.Ready.pop_front();
    if (!stillValid(Inv))
      continue; // Stale: some parameter transitioned away.

    // All-or-nothing locking (Section 4.7): if any parameter is locked,
    // release everything, put the invocation back, and try another one.
    size_t Acquired = 0;
    while (Acquired < Inv.Params.size() &&
           Inv.Params[Acquired]->tryLock())
      ++Acquired;
    if (Acquired < Inv.Params.size()) {
      for (size_t U = 0; U < Acquired; ++U)
        Inv.Params[U]->unlock();
      // Unified retry semantics: one count per failed all-or-nothing
      // sweep (see ExecResult::LockRetries).
      ++Result.LockRetries;
      if (Opts->Trace)
        Opts->Trace->lockRetry(Now, CoreIdx, Inv.Task);
      Core.Ready.push_back(std::move(Inv));
      continue;
    }
    if (Opts->Trace)
      Opts->Trace->lockAcquire(Now, CoreIdx, Inv.Task, Inv.Params.size());

    // Consume the parameter objects from this instance's parameter sets so
    // no further combinations are built with them; the exit routing will
    // re-deliver any that remain eligible.
    InstanceState &Inst = Instances[static_cast<size_t>(Inv.InstanceIdx)];
    for (size_t P = 0; P < Inv.Params.size(); ++P) {
      auto &Set = Inst.ParamSets[P];
      Set.erase(std::remove(Set.begin(), Set.end(), Inv.Params[P]),
                Set.end());
    }

    // Run the body now (host time); effects become visible to the rest of
    // the virtual machine at completion time, and the locks exclude every
    // other observer in between.
    uint64_t RngSeed = Opts->Seed;
    RngSeed = RngSeed * 0x9e3779b97f4a7c15ULL +
              static_cast<uint64_t>(Inv.Task + 1);
    RngSeed = RngSeed * 0xff51afd7ed558ccdULL + (Inv.Params[0]->Id + 1);
    auto Ctx = std::make_unique<TaskContext>(BP, TheHeap, Inv.Task,
                                             Inv.Params, Inv.ConstraintTags,
                                             Opts->Args, RngSeed);
    BP.bodyOf(Inv.Task)(*Ctx);

    const analysis::TaskLockPlan &Plan =
        LockPlans[static_cast<size_t>(Inv.Task)];
    // Contention: body work stretches with the fraction of other cores
    // currently busy (see MachineConfig::LoadSlowdown).
    Cycles Charged = Ctx->chargedCycles();
    if (Machine.LoadSlowdown > 0.0 && Cores.size() > 1) {
      int OthersBusy = 0;
      for (const CoreState &Other : Cores)
        OthersBusy += Other.Executing ? 1 : 0;
      double Fraction = static_cast<double>(OthersBusy) /
                        static_cast<double>(Cores.size() - 1);
      Charged = static_cast<Cycles>(
          static_cast<double>(Charged) *
          (1.0 + Machine.LoadSlowdown * Fraction));
    }
    Cycles Duration = Machine.DispatchOverhead +
                      Machine.LockOverhead *
                          static_cast<Cycles>(Plan.NumGroups) +
                      Charged;
    Core.Executing = true;
    Core.BusyUntil = Now + Duration;
    Core.BusyTotal += Duration;
    ++Result.TaskInvocations;
    LastProgress = std::max(LastProgress, Now); // Watchdog: real progress.
    if (Opts->Trace) {
      // The gap since the last completion on this core was idle time.
      Opts->Trace->idle(Core.LastEnd, Now, CoreIdx);
      Opts->Trace->taskBegin(Now, CoreIdx, Inv.Task, Core.Ready.size());
    }

    int FlightIdx;
    if (!FreeFlightSlots.empty()) {
      FlightIdx = FreeFlightSlots.back();
      FreeFlightSlots.pop_back();
      InFlights[static_cast<size_t>(FlightIdx)] = {std::move(Inv),
                                                   std::move(Ctx)};
    } else {
      FlightIdx = static_cast<int>(InFlights.size());
      InFlights.push_back({std::move(Inv), std::move(Ctx)});
    }

    Event Done;
    Done.Kind = EventKind::Completion;
    Done.Time = Core.BusyUntil;
    Done.Core = CoreIdx;
    Done.FlightIdx = FlightIdx;
    push(std::move(Done));
    return;
  }
}

void TileExecutor::complete(const Event &E) {
  InFlight &Flight = InFlights[static_cast<size_t>(E.FlightIdx)];
  TaskContext &Ctx = *Flight.Ctx;
  const ir::TaskDecl &Task = Prog.taskOf(Flight.Inv.Task);
  const ir::TaskExit &Exit =
      Task.Exits[static_cast<size_t>(Ctx.chosenExit())];

  // Apply the exit's flag and tag effects to the parameter objects.
  for (size_t P = 0; P < Flight.Inv.Params.size(); ++P) {
    Object *Obj = Flight.Inv.Params[P];
    const ir::ParamExitEffect &Eff = Exit.Effects[P];
    Obj->updateFlags(Eff.Set, Eff.Clear);
    for (const ir::ExitTagAction &Action : Eff.TagActions) {
      TagInstance *Inst = Ctx.tagVar(Action.Var);
      assert(Inst && "exit tag action references an unbound tag variable");
      if (!Inst)
        continue;
      if (Action.IsAdd)
        Obj->bindTag(Inst);
      else
        Obj->unbindTag(Inst);
    }
  }

  // Profile collection.
  if (Result.CollectedProfile) {
    std::map<ir::SiteId, uint64_t> SiteCounts;
    for (const auto &[Site, Obj] : Ctx.newObjects()) {
      (void)Obj;
      ++SiteCounts[Site];
    }
    Result.CollectedProfile->recordInvocation(Flight.Inv.Task,
                                              Ctx.chosenExit(),
                                              Ctx.chargedCycles(),
                                              SiteCounts);
  }

  // Unlock before routing so re-deliveries can immediately dispatch.
  for (Object *Obj : Flight.Inv.Params)
    Obj->unlock();
  Cores[static_cast<size_t>(E.Core)].Executing = false;
  Cores[static_cast<size_t>(E.Core)].LastEnd = E.Time;
  LastProgress = std::max(LastProgress, E.Time); // Watchdog: real progress.
  if (Opts->Trace)
    Opts->Trace->taskEnd(E.Time, E.Core, Flight.Inv.Task,
                         Ctx.chosenExit());

  Result.ObjectsAllocated += Ctx.newObjects().size();
  for (const auto &[Site, Obj] : Ctx.newObjects()) {
    (void)Site;
    routeObject(Obj, E.Core, E.Time);
  }
  for (Object *Obj : Flight.Inv.Params)
    routeObject(Obj, E.Core, E.Time);

  // Recycle the flight slot.
  Flight.Ctx.reset();
  Flight.Inv = Invocation();
  FreeFlightSlots.push_back(E.FlightIdx);

  tryStart(E.Core, E.Time);

  // Lock releases may unblock other cores' queued invocations.
  for (size_t C = 0; C < Cores.size(); ++C) {
    if (static_cast<int>(C) == E.Core)
      continue;
    if (!Cores[C].Executing && !Cores[C].Ready.empty()) {
      Event Wake;
      Wake.Kind = EventKind::Wake;
      Wake.Time = E.Time;
      Wake.Core = static_cast<int>(C);
      push(std::move(Wake));
    }
  }
}

void TileExecutor::applyCoreFailure(int CoreIdx, Cycles Now) {
  if (!CoreAlive[static_cast<size_t>(CoreIdx)])
    return; // Already dead (duplicate schedule entry).
  resilience::RecoveryReport &Rep = Result.Recovery;
  CoreAlive[static_cast<size_t>(CoreIdx)] = 0;
  ++Rep.CoreFails;
  if (Opts->Trace)
    Opts->Trace->faultInject(
        Now, CoreIdx, static_cast<int>(resilience::FaultKind::CoreFail), -1);
  // Fail-stop at the dispatch boundary: an invocation already in flight
  // on this core finishes (its body ran; re-running it would double-apply
  // host side effects) — the core just never dispatches again.
  if (!Opts->Recovery)
    return; // Queued work strands; deliveries blackhole; run wedges.

  // Failover candidates: core-group siblings first, then the other used
  // cores, skipping the dead.
  std::vector<int> Alive;
  for (int C : Routes.failoverOrder(CoreIdx))
    if (CoreAlive[static_cast<size_t>(C)])
      Alive.push_back(C);
  if (Alive.empty())
    for (int C = 0; C < L.NumCores; ++C)
      if (CoreAlive[static_cast<size_t>(C)])
        Alive.push_back(C);
  if (Alive.empty())
    return; // Every core failed: nothing left to migrate to.

  // Migrate this core's placed instances round-robin over the candidates
  // (their parameter sets travel with the InstanceState).
  size_t Next = 0;
  for (size_t I = 0; I < InstanceCore.size(); ++I) {
    if (InstanceCore[I] != CoreIdx)
      continue;
    int NewCore = Alive[Next++ % Alive.size()];
    InstanceCore[I] = NewCore;
    ++Rep.InstancesMigrated;
    if (Opts->Trace)
      Opts->Trace->failover(Now, CoreIdx, NewCore, -1);
  }

  // Re-dispatch queued-but-unstarted invocations on their instances' new
  // homes, charging one transfer per moved invocation.
  CoreState &Dead = Cores[static_cast<size_t>(CoreIdx)];
  while (!Dead.Ready.empty()) {
    Invocation Inv = std::move(Dead.Ready.front());
    Dead.Ready.pop_front();
    int NewCore = InstanceCore[static_cast<size_t>(Inv.InstanceIdx)];
    Cycles Hop = Machine.SendOverhead +
                 Machine.transferLatency(CoreIdx, NewCore);
    Rep.AddedCycles += Hop;
    ++Rep.RedispatchedInvocations;
    Cores[static_cast<size_t>(NewCore)].Ready.push_back(std::move(Inv));
    Event Wake;
    Wake.Kind = EventKind::Wake;
    Wake.Time = Now + Hop;
    Wake.Core = NewCore;
    push(std::move(Wake));
  }
}

ExecResult TileExecutor::run(const ExecOptions &Options) {
  Opts = &Options;
  if (Options.Trace) {
    std::vector<std::string> Names;
    for (const ir::TaskDecl &T : Prog.tasks())
      Names.push_back(T.Name);
    Options.Trace->setTaskNames(std::move(Names));
  }
  Result = ExecResult();
  TheHeap.clear();
  Cores.assign(static_cast<size_t>(L.NumCores), CoreState());
  Instances.clear();
  Instances.resize(L.Instances.size());
  for (size_t I = 0; I < L.Instances.size(); ++I)
    Instances[I].ParamSets.resize(
        Prog.taskOf(L.Instances[I].Task).Params.size());
  InFlights.clear();
  FreeFlightSlots.clear();
  RoundRobin.clear();
  NextSeq = 0;
  while (!Queue.empty())
    Queue.pop();
  if (Options.CollectProfile)
    Result.CollectedProfile.emplace(Prog);

  // Resilience state.
  Injector = resilience::FaultInjector(Options.Faults, Options.FaultSeed);
  Result.Recovery.RecoveryEnabled = Options.Recovery;
  CoreAlive.assign(static_cast<size_t>(L.NumCores), 1);
  InstanceCore.clear();
  for (const machine::TaskInstance &Inst : L.Instances)
    InstanceCore.push_back(Inst.Core);
  StallEnd.assign(static_cast<size_t>(L.NumCores), 0);
  LockEnd.assign(static_cast<size_t>(L.NumCores), 0);
  LastProgress = 0;

  Cycles LastTime = 0;
  uint64_t Events = 0;
  if ((Options.CheckpointEvery > 0 || Options.Restore) &&
      Options.CollectProfile) {
    // Profiles are not serialized; a restored profiling run would be
    // silently wrong, so the combination is rejected up front.
    Result.RestoreError = "checkpointing is incompatible with profile "
                          "collection (profiles are not serialized)";
    return Result;
  }
  if (Options.Restore) {
    if (std::string Err = restoreFrom(*Options.Restore, LastTime, Events);
        !Err.empty()) {
      ExecResult Failed;
      Failed.RestoreError = Err;
      Result = std::move(Failed);
      return Result;
    }
    LastProgress = Options.Restore->Cycle;
    if (Options.Trace)
      Options.Trace->resume(Options.Restore->Cycle);
  } else {
    for (const resilience::ScheduledFault &F : Injector.coreFailures()) {
      if (F.Core < 0 || F.Core >= L.NumCores)
        continue;
      Event Fail;
      Fail.Kind = EventKind::Fault;
      Fail.Time = F.Cycle;
      Fail.Core = F.Core;
      push(std::move(Fail));
    }

    // Boot: create the startup object and deliver it (no transfer cost —
    // it is created wherever the startup task lives).
    std::unique_ptr<ObjectData> Data;
    if (BP.startupFactory())
      Data = BP.startupFactory()(Options.Args);
    Object *Startup =
        TheHeap.allocate(Prog.startupClass(),
                         ir::FlagMask(1) << Prog.startupFlag(),
                         std::move(Data));
    routeObject(Startup, /*FromCore=*/-1, /*Now=*/0);
  }

  // First checkpoint boundary past the current high-water time.
  Cycles NextCkpt = 0;
  if (Options.CheckpointEvery > 0)
    NextCkpt =
        (LastTime / Options.CheckpointEvery + 1) * Options.CheckpointEvery;

  bool Aborted = false;
  while (!Queue.empty()) {
    // Snapshot at the quiescent point between events, the first time the
    // next event would carry virtual time across a checkpoint boundary.
    // Taking it here perturbs nothing: the snapshot captures the queue
    // (including the event about to run), so the continuation replays the
    // exact schedule.
    if (Options.CheckpointEvery > 0 && Queue.top().Time >= NextCkpt) {
      resilience::Checkpoint C;
      if (std::string Err = makeCheckpoint(NextCkpt, Events, LastTime, C);
          !Err.empty()) {
        Result.CheckpointError = Err;
        Aborted = true;
        break;
      }
      ++Result.CheckpointsWritten;
      if (Options.OnCheckpoint)
        Options.OnCheckpoint(C);
      while (NextCkpt <= Queue.top().Time)
        NextCkpt += Options.CheckpointEvery;
    }
    if (++Events > Options.MaxEvents) {
      Aborted = true;
      break;
    }
    Event E = Queue.top();
    Queue.pop();
    LastTime = std::max(LastTime, E.Time);
    // Watchdog: virtual time ran away from the last dispatch/completion
    // (e.g. an endlessly re-armed stall window). Abort with a diagnostic
    // dump instead of spinning to MaxEvents.
    if (Options.WatchdogCycles > 0 && E.Time > LastProgress &&
        E.Time - LastProgress > Options.WatchdogCycles) {
      Result.WatchdogFired = true;
      Result.WatchdogDump = watchdogDump(E.Time);
      Aborted = true;
      break;
    }
    switch (E.Kind) {
    case EventKind::Delivery:
      deliver(E);
      break;
    case EventKind::Completion:
      complete(E);
      break;
    case EventKind::Wake:
      tryStart(E.Core, E.Time);
      break;
    case EventKind::Fault:
      applyCoreFailure(E.Core, E.Time);
      break;
    }
  }
  return finishRun(LastTime, Aborted);
}

ExecResult &TileExecutor::finishRun(Cycles LastTime, bool Aborted) {
  // Single epilogue for both the drained and the MaxEvents-aborted exit:
  // aborted runs must still report per-core utilization and a profile
  // marked non-terminated (the early return used to skip both).
  bool AllDrained = !Aborted;
  for (CoreState &Core : Cores) {
    // Purge stale leftovers so drained-ness reflects real pending work.
    while (!Core.Ready.empty()) {
      if (stillValid(Core.Ready.front()))
        break;
      Core.Ready.pop_front();
    }
    AllDrained = AllDrained && Core.Ready.empty() && !Core.Executing;
  }
  Result.Completed = AllDrained;
  // With recovery off, lost or blackholed messages mean work silently
  // disappeared: the queues drain but the application did not finish, so
  // the run must report failed (bounded abort, never a hang).
  if (Result.Recovery.damaged())
    Result.Completed = false;
  Result.TotalCycles = LastTime;
  Result.CoreBusy.clear();
  for (const CoreState &Core : Cores)
    Result.CoreBusy.push_back(Core.BusyTotal);
  if (Result.CollectedProfile)
    Result.CollectedProfile->setTerminated(Result.Completed);
  return Result;
}

//===----------------------------------------------------------------------===//
// Checkpoint / restore / watchdog
//===----------------------------------------------------------------------===//

using resilience::ByteReader;
using resilience::ByteWriter;

void TileExecutor::saveInvocation(const Invocation &Inv,
                                  ByteWriter &W) const {
  W.i32(Inv.Task);
  W.i32(Inv.InstanceIdx);
  W.u64(Inv.Params.size());
  for (Object *Obj : Inv.Params)
    W.u64(Obj->Id);
  W.u64(Inv.ConstraintTags.size());
  for (const auto &[Var, Tag] : Inv.ConstraintTags) {
    W.str(Var);
    W.u64(Tag->Id);
  }
}

std::string TileExecutor::loadInvocation(ByteReader &R, Invocation &Inv) {
  Inv.Task = R.i32();
  Inv.InstanceIdx = R.i32();
  if (!R.ok() || Inv.Task < 0 ||
      static_cast<size_t>(Inv.Task) >= Prog.tasks().size() ||
      Inv.InstanceIdx < 0 ||
      static_cast<size_t>(Inv.InstanceIdx) >= Instances.size())
    return "checkpoint: invocation references an unknown task instance";
  uint64_t NumParams = R.u64();
  if (!R.ok() || NumParams > TheHeap.numObjects())
    return "checkpoint: truncated invocation record";
  for (uint64_t I = 0; I < NumParams; ++I) {
    uint64_t Id = R.u64();
    if (!R.ok() || Id >= TheHeap.numObjects())
      return "checkpoint: invocation references an unknown object";
    Inv.Params.push_back(TheHeap.objectAt(Id));
  }
  uint64_t NumTags = R.u64();
  if (!R.ok() || NumTags > TheHeap.numTags())
    return "checkpoint: truncated invocation tag bindings";
  for (uint64_t I = 0; I < NumTags; ++I) {
    std::string Var = R.str();
    uint64_t Id = R.u64();
    if (!R.ok() || Id >= TheHeap.numTags())
      return "checkpoint: invocation references an unknown tag instance";
    Inv.ConstraintTags.emplace(std::move(Var), TheHeap.tagAt(Id));
  }
  return {};
}

std::string TileExecutor::makeCheckpoint(Cycles AtCycle,
                                         uint64_t EventsProcessed,
                                         Cycles LastTime,
                                         resilience::Checkpoint &Out) {
  resilience::Checkpoint C;
  C.Engine = resilience::EngineKind::Tile;
  C.Program = Prog.name();
  C.Seed = Opts->Seed;
  C.FaultSeed = Opts->FaultSeed;
  C.Recovery = Opts->Recovery ? 1 : 0;
  C.FaultSpec = Opts->Faults ? Opts->Faults->str() : std::string();
  C.Args = Opts->Args;
  C.LayoutKey = L.isoKey(Prog);
  C.NumCores = static_cast<uint64_t>(L.NumCores);
  C.Cycle = AtCycle;
  // With recovery off, any fault that has taken raw effect is damage the
  // snapshot already contains; flag it so a restart policy rolls back
  // further.
  C.Tainted = !Opts->Recovery && Result.Recovery.totalInjected() > 0;

  ByteWriter W;
  CodecSaveCtx Ctx;
  if (std::string Err = saveHeap(TheHeap, BP, W, Ctx); !Err.empty())
    return Err;

  std::vector<int> Budgets = Injector.remainingBudgets();
  W.u64(Budgets.size());
  for (int B : Budgets)
    W.i32(B);

  W.u64(NextSeq);
  W.u64(EventsProcessed);
  W.u64(LastTime);
  W.u64(LastProgress);

  W.u64(Result.TaskInvocations);
  W.u64(Result.ObjectsAllocated);
  W.u64(Result.MessagesSent);
  W.u64(Result.MessageHops);
  W.u64(Result.LockRetries);
  resilience::writeRecoveryReport(W, Result.Recovery);

  W.u64(CoreAlive.size());
  for (char A : CoreAlive)
    W.u8(static_cast<uint8_t>(A));
  W.u64(InstanceCore.size());
  for (int C2 : InstanceCore)
    W.i32(C2);
  for (Cycles S : StallEnd)
    W.u64(S);
  for (Cycles Lk : LockEnd)
    W.u64(Lk);

  W.u64(Cores.size());
  for (const CoreState &Core : Cores) {
    W.u8(Core.Executing ? 1 : 0);
    W.u64(Core.BusyUntil);
    W.u64(Core.BusyTotal);
    W.u64(Core.LastEnd);
    W.u64(Core.Ready.size());
    for (const Invocation &Inv : Core.Ready)
      saveInvocation(Inv, W);
  }

  W.u64(Instances.size());
  for (const InstanceState &Inst : Instances) {
    W.u64(Inst.ParamSets.size());
    for (const std::vector<Object *> &Set : Inst.ParamSets) {
      W.u64(Set.size());
      for (Object *Obj : Set)
        W.u64(Obj->Id);
    }
  }

  W.u64(RoundRobin.size());
  for (const auto &[Key, Val] : RoundRobin) {
    W.i32(Key.first);
    W.i32(Key.second);
    W.u64(Val);
  }

  W.u64(InFlights.size());
  for (const InFlight &Flight : InFlights) {
    if (!Flight.Ctx) {
      W.u8(0);
      continue;
    }
    // The body already ran at dispatch time; the completion step only
    // needs the post-body context (charged cycles, chosen exit, new
    // objects, tag vars).
    W.u8(1);
    saveInvocation(Flight.Inv, W);
    const auto &TagVars = Flight.Ctx->tagVars();
    W.u64(TagVars.size());
    for (const auto &[Var, Tag] : TagVars) {
      W.str(Var);
      W.u64(Tag->Id);
    }
    W.u64(Flight.Ctx->chargedCycles());
    W.i32(Flight.Ctx->chosenExit());
    const auto &NewObjs = Flight.Ctx->newObjects();
    W.u64(NewObjs.size());
    for (const auto &[Site, Obj] : NewObjs) {
      W.i32(Site);
      W.u64(Obj->Id);
    }
  }
  W.u64(FreeFlightSlots.size());
  for (int S : FreeFlightSlots)
    W.i32(S);

  // The event queue, in deterministic (Time, Seq) order: the
  // priority_queue is copyable (payloads are ids and raw pointers), so a
  // drained copy yields the exact pending schedule without disturbing it.
  auto QCopy = Queue;
  W.u64(QCopy.size());
  while (!QCopy.empty()) {
    const Event &E = QCopy.top();
    W.u64(E.Time);
    W.u64(E.Seq);
    W.u8(static_cast<uint8_t>(E.Kind));
    W.i32(E.Core);
    W.i64(E.Obj ? static_cast<int64_t>(E.Obj->Id) : -1);
    W.i32(E.InstanceIdx);
    W.i32(E.Param);
    W.i32(E.FlightIdx);
    QCopy.pop();
  }

  C.Body = W.take();
  Out = std::move(C);
  return {};
}

std::string TileExecutor::restoreFrom(const resilience::Checkpoint &C,
                                      Cycles &LastTime,
                                      uint64_t &EventsProcessed) {
  // Identity validation: a checkpoint resumes *this* run — same program,
  // layout, machine width, seed, arguments, and fault plan. The fault
  // seed and recovery mode may legitimately differ (the restart policy
  // bumps the fault seed so a deterministic failure is not replayed).
  if (C.Engine != resilience::EngineKind::Tile)
    return formatString(
        "checkpoint: engine mismatch (checkpoint is '%s', executor is "
        "'tile')",
        resilience::engineKindName(C.Engine));
  if (C.Program != Prog.name())
    return formatString(
        "checkpoint: program mismatch (checkpoint is '%s', running '%s')",
        C.Program.c_str(), Prog.name().c_str());
  if (C.NumCores != static_cast<uint64_t>(L.NumCores))
    return formatString(
        "checkpoint: core-count mismatch (checkpoint %llu, layout %d)",
        static_cast<unsigned long long>(C.NumCores), L.NumCores);
  if (C.LayoutKey != L.isoKey(Prog))
    return "checkpoint: layout mismatch (was the checkpoint taken under a "
           "different synthesis seed or --jobs value?)";
  if (C.Seed != Opts->Seed)
    return formatString(
        "checkpoint: run-seed mismatch (checkpoint %llu, --seed %llu)",
        static_cast<unsigned long long>(C.Seed),
        static_cast<unsigned long long>(Opts->Seed));
  if (C.Args != Opts->Args)
    return "checkpoint: program-argument mismatch";
  if (C.FaultSpec != (Opts->Faults ? Opts->Faults->str() : std::string()))
    return "checkpoint: fault-plan mismatch (pass the same --faults spec "
           "the checkpoint was taken under)";

  ByteReader R(C.Body);
  CodecLoadCtx Ctx;
  if (std::string Err = loadHeap(R, BP, TheHeap, Ctx); !Err.empty())
    return Err;

  uint64_t NumBudgets = R.u64();
  if (!R.ok() || NumBudgets > C.Body.size())
    return "checkpoint: truncated body (injector budgets)";
  std::vector<int> Budgets;
  for (uint64_t I = 0; I < NumBudgets; ++I)
    Budgets.push_back(R.i32());
  Injector.restoreBudgets(Budgets);

  NextSeq = R.u64();
  EventsProcessed = R.u64();
  LastTime = R.u64();
  LastProgress = R.u64();

  Result.TaskInvocations = R.u64();
  Result.ObjectsAllocated = R.u64();
  Result.MessagesSent = R.u64();
  Result.MessageHops = R.u64();
  Result.LockRetries = R.u64();
  resilience::readRecoveryReport(R, Result.Recovery);
  Result.Recovery.RecoveryEnabled = Opts->Recovery;

  uint64_t NumCores = R.u64();
  if (!R.ok() || NumCores != CoreAlive.size())
    return "checkpoint: body core count diverges from the layout";
  for (size_t I = 0; I < CoreAlive.size(); ++I)
    CoreAlive[I] = static_cast<char>(R.u8());
  uint64_t NumInstances = R.u64();
  if (!R.ok() || NumInstances != InstanceCore.size())
    return "checkpoint: body instance count diverges from the layout";
  for (size_t I = 0; I < InstanceCore.size(); ++I)
    InstanceCore[I] = R.i32();
  for (size_t I = 0; I < StallEnd.size(); ++I)
    StallEnd[I] = R.u64();
  for (size_t I = 0; I < LockEnd.size(); ++I)
    LockEnd[I] = R.u64();

  uint64_t NumCoreStates = R.u64();
  if (!R.ok() || NumCoreStates != Cores.size())
    return "checkpoint: truncated body (core states)";
  for (CoreState &Core : Cores) {
    Core.Executing = R.u8() != 0;
    Core.BusyUntil = R.u64();
    Core.BusyTotal = R.u64();
    Core.LastEnd = R.u64();
    uint64_t NumReady = R.u64();
    if (!R.ok() || NumReady > C.Body.size())
      return "checkpoint: truncated body (ready queues)";
    for (uint64_t I = 0; I < NumReady; ++I) {
      Invocation Inv;
      if (std::string Err = loadInvocation(R, Inv); !Err.empty())
        return Err;
      Core.Ready.push_back(std::move(Inv));
    }
  }

  uint64_t NumInstStates = R.u64();
  if (!R.ok() || NumInstStates != Instances.size())
    return "checkpoint: truncated body (instance states)";
  for (InstanceState &Inst : Instances) {
    uint64_t NumParams = R.u64();
    if (!R.ok() || NumParams != Inst.ParamSets.size())
      return "checkpoint: parameter-set shape diverges from the program";
    for (std::vector<Object *> &Set : Inst.ParamSets) {
      uint64_t Count = R.u64();
      if (!R.ok() || Count > TheHeap.numObjects())
        return "checkpoint: truncated body (parameter sets)";
      for (uint64_t I = 0; I < Count; ++I) {
        uint64_t Id = R.u64();
        if (!R.ok() || Id >= TheHeap.numObjects())
          return "checkpoint: parameter set references an unknown object";
        Set.push_back(TheHeap.objectAt(Id));
      }
    }
  }

  uint64_t NumRR = R.u64();
  if (!R.ok() || NumRR > C.Body.size())
    return "checkpoint: truncated body (round-robin counters)";
  for (uint64_t I = 0; I < NumRR; ++I) {
    int CoreKey = R.i32();
    ir::TaskId Task = R.i32();
    uint64_t Val = R.u64();
    RoundRobin[{CoreKey, Task}] = static_cast<size_t>(Val);
  }

  uint64_t NumFlights = R.u64();
  if (!R.ok() || NumFlights > C.Body.size())
    return "checkpoint: truncated body (in-flight invocations)";
  for (uint64_t I = 0; I < NumFlights; ++I) {
    uint8_t Occupied = R.u8();
    if (!R.ok())
      return "checkpoint: truncated body (in-flight slot)";
    if (!Occupied) {
      InFlights.push_back(InFlight());
      continue;
    }
    Invocation Inv;
    if (std::string Err = loadInvocation(R, Inv); !Err.empty())
      return Err;
    uint64_t NumVars = R.u64();
    if (!R.ok() || NumVars > TheHeap.numTags() + 64)
      return "checkpoint: truncated body (in-flight tag vars)";
    std::map<std::string, TagInstance *> TagVars;
    for (uint64_t V = 0; V < NumVars; ++V) {
      std::string Var = R.str();
      uint64_t Id = R.u64();
      if (!R.ok() || Id >= TheHeap.numTags())
        return "checkpoint: in-flight tag var references an unknown tag";
      TagVars.emplace(std::move(Var), TheHeap.tagAt(Id));
    }
    Cycles Charged = R.u64();
    ir::ExitId ChosenExit = R.i32();
    uint64_t NumNew = R.u64();
    if (!R.ok() || NumNew > TheHeap.numObjects())
      return "checkpoint: truncated body (in-flight new objects)";
    std::vector<std::pair<ir::SiteId, Object *>> NewObjects;
    for (uint64_t N = 0; N < NumNew; ++N) {
      ir::SiteId Site = R.i32();
      uint64_t Id = R.u64();
      if (!R.ok() || Id >= TheHeap.numObjects())
        return "checkpoint: in-flight new object is unknown";
      NewObjects.emplace_back(Site, TheHeap.objectAt(Id));
    }
    const ir::TaskDecl &Decl = Prog.taskOf(Inv.Task);
    if (Inv.Params.size() != Decl.Params.size() || ChosenExit < 0 ||
        static_cast<size_t>(ChosenExit) >= Decl.Exits.size())
      return "checkpoint: in-flight invocation diverges from the program";
    InFlight Flight;
    Flight.Ctx = TaskContext::restore(BP, TheHeap, Inv.Task, Inv.Params,
                                      std::move(TagVars), Opts->Args,
                                      Charged, ChosenExit,
                                      std::move(NewObjects));
    Flight.Inv = std::move(Inv);
    InFlights.push_back(std::move(Flight));
  }
  uint64_t NumFree = R.u64();
  if (!R.ok() || NumFree > InFlights.size())
    return "checkpoint: truncated body (free flight slots)";
  for (uint64_t I = 0; I < NumFree; ++I)
    FreeFlightSlots.push_back(R.i32());

  uint64_t NumEvents = R.u64();
  if (!R.ok() || NumEvents > C.Body.size())
    return "checkpoint: truncated body (event queue)";
  for (uint64_t I = 0; I < NumEvents; ++I) {
    Event E;
    E.Time = R.u64();
    E.Seq = R.u64();
    uint8_t Kind = R.u8();
    if (!R.ok() || Kind > static_cast<uint8_t>(EventKind::Fault))
      return "checkpoint: unknown event kind in queue";
    E.Kind = static_cast<EventKind>(Kind);
    E.Core = R.i32();
    int64_t ObjId = R.i64();
    if (ObjId >= 0) {
      if (static_cast<uint64_t>(ObjId) >= TheHeap.numObjects())
        return "checkpoint: queued event references an unknown object";
      E.Obj = TheHeap.objectAt(static_cast<uint64_t>(ObjId));
    }
    E.InstanceIdx = R.i32();
    E.Param = R.i32();
    E.FlightIdx = R.i32();
    if (E.Kind == EventKind::Completion &&
        (E.FlightIdx < 0 ||
         static_cast<size_t>(E.FlightIdx) >= InFlights.size() ||
         !InFlights[static_cast<size_t>(E.FlightIdx)].Ctx))
      return "checkpoint: completion event references an empty flight slot";
    // Preserve the original sequence numbers: ordering ties must replay
    // exactly, so events bypass push() (which would renumber them).
    Queue.push(std::move(E));
  }
  if (!R.ok())
    return "checkpoint: truncated body";
  if (!R.atEnd())
    return "checkpoint: trailing bytes after body";
  return {};
}

std::string TileExecutor::watchdogDump(Cycles Now) {
  support::WatchdogReport Rep("tile", Now, LastProgress,
                              Opts->WatchdogCycles, "cycles");
  Rep.traceTail(Opts->Trace, 20);
  Rep.section("per-core state");
  for (size_t C = 0; C < Cores.size(); ++C)
    Rep.line(formatString(
        "core %zu: %s%s ready=%zu busy-until=%llu stall-until=%llu "
        "lock-until=%llu",
        C, CoreAlive[C] ? "alive" : "DEAD",
        Cores[C].Executing ? " executing" : "", Cores[C].Ready.size(),
        static_cast<unsigned long long>(Cores[C].BusyUntil),
        static_cast<unsigned long long>(StallEnd[C]),
        static_cast<unsigned long long>(LockEnd[C])));
  Rep.section("held locks");
  size_t Held = 0;
  for (size_t I = 0; I < TheHeap.numObjects(); ++I) {
    Object *Obj = TheHeap.objectAt(I);
    if (Obj->locked()) {
      ++Held;
      Rep.line(formatString("object %llu (class %d)",
                                     static_cast<unsigned long long>(Obj->Id),
                                     Obj->Class));
    }
  }
  if (Held == 0)
    Rep.line("(none)");
  return Rep.str();
}
