//===- runtime/TileExecutor.cpp - Discrete-event many-core executor -------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/TileExecutor.h"

#include "runtime/HeapSnapshot.h"
#include "runtime/TaskContext.h"
#include "support/Debug.h"
#include "support/Format.h"
#include "support/Watchdog.h"

#include <algorithm>
#include <cassert>

using namespace bamboo;
using namespace bamboo::runtime;
using machine::Cycles;

TileExecutor::TileExecutor(const BoundProgram &BP,
                           const analysis::Cstg &Graph,
                           const machine::MachineConfig &Machine,
                           const machine::Layout &L)
    : Base(BP.program(), Graph, Machine, L), BP(BP) {
  assert(BP.fullyBound() && "every task needs a body");
  assert(L.covers(Prog) && "layout must instantiate every task");
  assert(L.NumCores <= Machine.NumCores && "layout exceeds the machine");
}

void TileExecutor::onCrossSend(Object *Obj, int FromCore, int ToCore,
                               Cycles Now) {
  ++Result.MessagesSent;
  uint32_t Hops =
      static_cast<uint32_t>(Machine.hopDistance(FromCore, ToCore));
  Result.MessageHops += Hops;
  if (Opts->Trace)
    Opts->Trace->send(Now, FromCore, ToCore, static_cast<int64_t>(Obj->Id),
                      Hops, Machine.MsgBytesPerObject);
}

void TileExecutor::tryStart(int CoreIdx, Cycles Now) {
  CoreState &Core = Cores[static_cast<size_t>(CoreIdx)];
  if (!CoreAlive[static_cast<size_t>(CoreIdx)])
    return; // Fail-stop: a dead core never dispatches again.
  if (Core.Executing)
    return;
  if (Core.Ready.empty()) {
    // Nothing local: a stealing policy may pull queued work from a
    // loaded victim (the stolen invocation dispatches at the wake the
    // steal schedules, after the transfer latency).
    trySteal(CoreIdx, Now);
    return;
  }
  if (Injector.active()) {
    // A stall window means the core dispatches nothing until it ends.
    if (Cycles Stall = armStallWindow(CoreIdx, Now); Now < Stall) {
      pushWake(CoreIdx, Stall);
      return;
    }
    if (Cycles Lock = armLockWindow(CoreIdx, Now); Now < Lock) {
      // Livelock window: every all-or-nothing sweep on this core fails.
      // Count it like any other failed sweep and retry at the window end.
      ++Result.LockRetries;
      if (Opts->Trace)
        Opts->Trace->lockRetry(Now, CoreIdx, Core.Ready.front().Task);
      pushWake(CoreIdx, Lock);
      return;
    }
  }
  size_t Attempts = Core.Ready.size();
  while (Attempts-- > 0) {
    Invocation Inv = std::move(Core.Ready.front());
    Core.Ready.pop_front();
    if (!stillValid(Inv))
      continue; // Stale: some parameter transitioned away.

    // All-or-nothing locking (Section 4.7): if any parameter is locked,
    // release everything, put the invocation back, and try another one.
    size_t Acquired = 0;
    while (Acquired < Inv.Params.size() &&
           Inv.Params[Acquired]->tryLock())
      ++Acquired;
    if (Acquired < Inv.Params.size()) {
      for (size_t U = 0; U < Acquired; ++U)
        Inv.Params[U]->unlock();
      // Unified retry semantics: one count per failed all-or-nothing
      // sweep (see ExecResult::LockRetries).
      ++Result.LockRetries;
      if (Opts->Trace)
        Opts->Trace->lockRetry(Now, CoreIdx, Inv.Task);
      Core.Ready.push_back(std::move(Inv));
      continue;
    }
    if (Opts->Trace)
      Opts->Trace->lockAcquire(Now, CoreIdx, Inv.Task, Inv.Params.size());

    // Consume the parameter objects from this instance's parameter sets so
    // no further combinations are built with them; the exit routing will
    // re-deliver any that remain eligible.
    InstanceState &Inst = Instances[static_cast<size_t>(Inv.InstanceIdx)];
    for (size_t P = 0; P < Inv.Params.size(); ++P) {
      auto &Set = Inst.ParamSets[P];
      Set.erase(std::remove(Set.begin(), Set.end(), Inv.Params[P]),
                Set.end());
    }

    // Run the body now (host time); effects become visible to the rest of
    // the virtual machine at completion time, and the locks exclude every
    // other observer in between.
    uint64_t RngSeed =
        exec::taskRngSeed(Opts->Seed, Inv.Task, Inv.Params[0]->Id);
    auto Ctx = std::make_unique<TaskContext>(BP, TheHeap, Inv.Task,
                                             Inv.Params, Inv.ConstraintTags,
                                             Opts->Args, RngSeed);
    BP.bodyOf(Inv.Task)(*Ctx);

    const analysis::TaskLockPlan &Plan =
        LockPlans[static_cast<size_t>(Inv.Task)];
    // Contention: body work stretches with the fraction of other cores
    // currently busy (see MachineConfig::LoadSlowdown).
    Cycles Charged = Ctx->chargedCycles();
    if (Machine.LoadSlowdown > 0.0 && Cores.size() > 1) {
      // This core is not Executing yet, so the index's population is
      // exactly the historical "count every other busy core" scan.
      double Fraction = static_cast<double>(ExecCores.size()) /
                        static_cast<double>(Cores.size() - 1);
      Charged = static_cast<Cycles>(
          static_cast<double>(Charged) *
          (1.0 + Machine.LoadSlowdown * Fraction));
    }
    Cycles Duration = Machine.DispatchOverhead +
                      Machine.LockOverhead *
                          static_cast<Cycles>(Plan.NumGroups) +
                      Charged;
    Core.Executing = true;
    Core.BusyUntil = Now + Duration;
    Core.BusyTotal += Duration;
    ++Result.TaskInvocations;
    LastProgress = std::max(LastProgress, Now); // Watchdog: real progress.
    if (Opts->Trace) {
      // The gap since the last completion on this core was idle time.
      Opts->Trace->idle(Core.LastEnd, Now, CoreIdx);
      Opts->Trace->taskBegin(Now, CoreIdx, Inv.Task, Core.Ready.size());
    }

    int FlightIdx = exec::allocFlightSlot(
        InFlights, FreeFlightSlots, InFlight{std::move(Inv), std::move(Ctx)});
    pushCompletion(CoreIdx, Core.BusyUntil, FlightIdx);
    noteCoreState(CoreIdx);
    return;
  }
  noteCoreState(CoreIdx); // Stale drops / lock requeues changed the queue.
}

void TileExecutor::complete(const Event &E) {
  InFlight &Flight = InFlights[static_cast<size_t>(E.FlightIdx)];
  TaskContext &Ctx = *Flight.Ctx;
  const ir::TaskDecl &Task = Prog.taskOf(Flight.Inv.Task);
  const ir::TaskExit &Exit =
      Task.Exits[static_cast<size_t>(Ctx.chosenExit())];

  exec::applyObjectExitEffects(
      Exit, Flight.Inv.Params,
      [&Ctx](const std::string &Var) { return Ctx.tagVar(Var); });

  // Profile collection.
  if (Result.CollectedProfile) {
    std::map<ir::SiteId, uint64_t> SiteCounts;
    for (const auto &[Site, Obj] : Ctx.newObjects()) {
      (void)Obj;
      ++SiteCounts[Site];
    }
    Result.CollectedProfile->recordInvocation(Flight.Inv.Task,
                                              Ctx.chosenExit(),
                                              Ctx.chargedCycles(),
                                              SiteCounts);
  }

  // Unlock before routing so re-deliveries can immediately dispatch.
  for (Object *Obj : Flight.Inv.Params)
    Obj->unlock();
  Cores[static_cast<size_t>(E.Core)].Executing = false;
  Cores[static_cast<size_t>(E.Core)].LastEnd = E.Time;
  noteCoreState(E.Core);
  LastProgress = std::max(LastProgress, E.Time); // Watchdog: real progress.
  if (Opts->Trace)
    Opts->Trace->taskEnd(E.Time, E.Core, Flight.Inv.Task,
                         Ctx.chosenExit());

  Result.ObjectsAllocated += Ctx.newObjects().size();
  for (const auto &[Site, Obj] : Ctx.newObjects()) {
    (void)Site;
    routeItem(Obj, E.Core, E.Time);
  }
  for (Object *Obj : Flight.Inv.Params)
    routeItem(Obj, E.Core, E.Time);

  // Recycle the flight slot.
  Flight.Ctx.reset();
  Flight.Inv = Invocation();
  FreeFlightSlots.push_back(E.FlightIdx);

  tryStart(E.Core, E.Time);

  // Lock releases may unblock other cores' queued invocations.
  wakeOtherCores(E.Core, E.Time);
}

ExecResult TileExecutor::run(const ExecOptions &Options) {
  Opts = &Options;
  announceTaskNames(Options.Trace);
  Result = ExecResult();
  TheHeap.clear();
  InFlights.clear();
  FreeFlightSlots.clear();
  beginRun(Options.Faults, Options.FaultSeed, Options.Recovery,
           Options.Trace, &Result.Recovery, Options.Sched, Options.Seed);
  if (Options.CollectProfile)
    Result.CollectedProfile.emplace(Prog);

  Cycles LastTime = 0;
  uint64_t Events = 0;
  if ((Options.CheckpointEvery > 0 || Options.Restore) &&
      Options.CollectProfile) {
    // Profiles are not serialized; a restored profiling run would be
    // silently wrong, so the combination is rejected up front.
    Result.RestoreError = "checkpointing is incompatible with profile "
                          "collection (profiles are not serialized)";
    return Result;
  }
  if (Options.Restore) {
    if (std::string Err = restoreFrom(*Options.Restore, LastTime, Events);
        !Err.empty()) {
      ExecResult Failed;
      Failed.RestoreError = Err;
      Result = std::move(Failed);
      return Result;
    }
    LastProgress = Options.Restore->Cycle;
    if (Options.Trace)
      Options.Trace->resume(Options.Restore->Cycle);
  } else {
    seedScheduledFailures();

    // Boot: create the startup object and deliver it (no transfer cost —
    // it is created wherever the startup task lives).
    std::unique_ptr<ObjectData> Data;
    if (BP.startupFactory())
      Data = BP.startupFactory()(Options.Args);
    Object *Startup =
        TheHeap.allocate(Prog.startupClass(),
                         ir::FlagMask(1) << Prog.startupFlag(),
                         std::move(Data));
    routeItem(Startup, /*FromCore=*/-1, /*Now=*/0);
  }

  bool Aborted = false;
  runEventLoop(
      LastTime, Options.CheckpointEvery,
      [&](Cycles NextCkpt) {
        resilience::Checkpoint C;
        if (std::string Err = makeCheckpoint(NextCkpt, Events, LastTime, C);
            !Err.empty()) {
          Result.CheckpointError = Err;
          return false;
        }
        ++Result.CheckpointsWritten;
        if (Options.OnCheckpoint)
          Options.OnCheckpoint(C);
        return true;
      },
      Options.WatchdogCycles,
      [&](Cycles Now) {
        Result.WatchdogFired = true;
        Result.WatchdogDump = watchdogDump(Now);
      },
      [&] {
        if (Options.Stop &&
            Options.Stop->load(std::memory_order_acquire)) {
          Result.Interrupted = true;
          return false;
        }
        return ++Events <= Options.MaxEvents;
      },
      [] { return true; }, Aborted);
  Result.EventsProcessed = Events;
  return finishRun(LastTime, Aborted);
}

ExecResult &TileExecutor::finishRun(Cycles LastTime, bool Aborted) {
  // Single epilogue for both the drained and the MaxEvents-aborted exit:
  // aborted runs must still report per-core utilization and a profile
  // marked non-terminated (the early return used to skip both).
  bool AllDrained = !Aborted;
  for (CoreState &Core : Cores) {
    // Purge stale leftovers so drained-ness reflects real pending work.
    while (!Core.Ready.empty()) {
      if (stillValid(Core.Ready.front()))
        break;
      Core.Ready.pop_front();
    }
    AllDrained = AllDrained && Core.Ready.empty() && !Core.Executing;
  }
  Result.Completed = AllDrained;
  // With recovery off, lost or blackholed messages mean work silently
  // disappeared: the queues drain but the application did not finish, so
  // the run must report failed (bounded abort, never a hang).
  if (Result.Recovery.damaged())
    Result.Completed = false;
  Result.TotalCycles = LastTime;
  Result.Steals = Sched->steals();
  Result.CoreBusy.clear();
  for (const CoreState &Core : Cores)
    Result.CoreBusy.push_back(Core.BusyTotal);
  if (Result.CollectedProfile)
    Result.CollectedProfile->setTerminated(Result.Completed);
  return Result;
}

//===----------------------------------------------------------------------===//
// Checkpoint / restore / watchdog
//===----------------------------------------------------------------------===//

using resilience::ByteReader;
using resilience::ByteWriter;

std::string TileExecutor::makeCheckpoint(Cycles AtCycle,
                                         uint64_t EventsProcessed,
                                         Cycles LastTime,
                                         resilience::Checkpoint &Out) {
  resilience::Checkpoint C = exec::makeCheckpointHeader(
      resilience::EngineKind::Tile, Prog, L, Opts->Seed, Opts->FaultSeed,
      Opts->Recovery, Opts->Faults, Opts->Args, AtCycle,
      !Opts->Recovery && Result.Recovery.totalInjected() > 0,
      Machine.topologySpec());

  ByteWriter W;
  CodecSaveCtx Ctx;
  if (std::string Err = saveHeap(TheHeap, BP, W, Ctx); !Err.empty())
    return Err;

  exec::saveInjectorBudgets(W, Injector);

  W.u64(NextSeq);
  W.u64(EventsProcessed);
  W.u64(LastTime);
  W.u64(LastProgress);

  W.u64(Result.TaskInvocations);
  W.u64(Result.ObjectsAllocated);
  W.u64(Result.MessagesSent);
  W.u64(Result.MessageHops);
  W.u64(Result.LockRetries);
  resilience::writeRecoveryReport(W, Result.Recovery);

  exec::saveResilienceState(W, CoreAlive, InstanceCore, StallEnd, LockEnd);

  exec::saveCoreStates(
      W, Cores,
      [](ByteWriter &BW, const CoreState &Core) { BW.u64(Core.BusyUntil); },
      [](ByteWriter &BW, const Invocation &Inv) {
        exec::saveObjectInvocation(BW, Inv);
      });

  exec::saveParamSets<Object *>(
      W, Instances,
      [](ByteWriter &BW, Object *Obj) { BW.u64(Obj->Id); });

  Sched->save(W);

  // The body already ran at dispatch time; an occupied slot only needs
  // the post-body context (charged cycles, chosen exit, new objects, tag
  // vars) for the completion step.
  exec::saveFlightSlots(
      W, InFlights, FreeFlightSlots,
      [](const InFlight &Flight) { return Flight.Ctx != nullptr; },
      [](ByteWriter &BW, const InFlight &Flight) {
        exec::saveObjectInvocation(BW, Flight.Inv);
        const auto &TagVars = Flight.Ctx->tagVars();
        BW.u64(TagVars.size());
        for (const auto &[Var, Tag] : TagVars) {
          BW.str(Var);
          BW.u64(Tag->Id);
        }
        BW.u64(Flight.Ctx->chargedCycles());
        BW.i32(Flight.Ctx->chosenExit());
        const auto &NewObjs = Flight.Ctx->newObjects();
        BW.u64(NewObjs.size());
        for (const auto &[Site, Obj] : NewObjs) {
          BW.i32(Site);
          BW.u64(Obj->Id);
        }
      });

  exec::saveEventQueue(W, Queue, [](ByteWriter &BW, const Event &E) {
    BW.i64(E.Item ? static_cast<int64_t>(E.Item->Id) : -1);
    BW.i32(E.InstanceIdx);
    BW.i32(E.Param);
    BW.i32(E.FlightIdx);
  });

  C.Body = W.take();
  Out = std::move(C);
  return {};
}

std::string TileExecutor::restoreFrom(const resilience::Checkpoint &C,
                                      Cycles &LastTime,
                                      uint64_t &EventsProcessed) {
  exec::RunIdentity Id;
  Id.Seed = Opts->Seed;
  Id.Args = &Opts->Args;
  Id.Faults = Opts->Faults;
  Id.Topology = Machine.topologySpec();
  if (std::string Err = exec::validateRunIdentity(C, Prog, L, Id);
      !Err.empty())
    return Err;

  ByteReader R(C.Body);
  CodecLoadCtx Ctx;
  if (std::string Err = loadHeap(R, BP, TheHeap, Ctx); !Err.empty())
    return Err;

  if (std::string Err = exec::loadInjectorBudgets(R, C.Body.size(), Injector);
      !Err.empty())
    return Err;

  NextSeq = R.u64();
  EventsProcessed = R.u64();
  LastTime = R.u64();
  LastProgress = R.u64();

  Result.TaskInvocations = R.u64();
  Result.ObjectsAllocated = R.u64();
  Result.MessagesSent = R.u64();
  Result.MessageHops = R.u64();
  Result.LockRetries = R.u64();
  resilience::readRecoveryReport(R, Result.Recovery);
  Result.Recovery.RecoveryEnabled = Opts->Recovery;

  if (std::string Err = exec::loadResilienceState(R, CoreAlive, InstanceCore,
                                                  StallEnd, LockEnd);
      !Err.empty())
    return Err;

  if (std::string Err = exec::loadCoreStates(
          R, C.Body.size(), Cores,
          [](ByteReader &BR, CoreState &Core) {
            Core.BusyUntil = BR.u64();
          },
          [this](ByteReader &BR, Invocation &Inv) {
            return exec::loadObjectInvocation(BR, Prog, TheHeap,
                                              Instances.size(), Inv);
          });
      !Err.empty())
    return Err;
  rebuildCoreIndices();

  if (std::string Err = exec::loadParamSets<Object *>(
          R, Instances, TheHeap.numObjects(),
          [this](ByteReader &BR, Object *&Obj) -> std::string {
            uint64_t Id2 = BR.u64();
            if (!BR.ok() || Id2 >= TheHeap.numObjects())
              return "checkpoint: parameter set references an unknown "
                     "object";
            Obj = TheHeap.objectAt(Id2);
            return {};
          });
      !Err.empty())
    return Err;

  if (std::string Err = Sched->load(R, C.Body.size()); !Err.empty())
    return Err;

  if (std::string Err = exec::loadFlightSlots(
          R, C.Body.size(), InFlights, FreeFlightSlots,
          [this](ByteReader &BR, InFlight &Flight) -> std::string {
            Invocation Inv;
            if (std::string Err = exec::loadObjectInvocation(
                    BR, Prog, TheHeap, Instances.size(), Inv);
                !Err.empty())
              return Err;
            uint64_t NumVars = BR.u64();
            if (!BR.ok() || NumVars > TheHeap.numTags() + 64)
              return "checkpoint: truncated body (in-flight tag vars)";
            std::map<std::string, TagInstance *> TagVars;
            for (uint64_t V = 0; V < NumVars; ++V) {
              std::string Var = BR.str();
              uint64_t Id2 = BR.u64();
              if (!BR.ok() || Id2 >= TheHeap.numTags())
                return "checkpoint: in-flight tag var references an "
                       "unknown tag";
              TagVars.emplace(std::move(Var), TheHeap.tagAt(Id2));
            }
            Cycles Charged = BR.u64();
            ir::ExitId ChosenExit = BR.i32();
            uint64_t NumNew = BR.u64();
            if (!BR.ok() || NumNew > TheHeap.numObjects())
              return "checkpoint: truncated body (in-flight new objects)";
            std::vector<std::pair<ir::SiteId, Object *>> NewObjects;
            for (uint64_t N = 0; N < NumNew; ++N) {
              ir::SiteId Site = BR.i32();
              uint64_t Id2 = BR.u64();
              if (!BR.ok() || Id2 >= TheHeap.numObjects())
                return "checkpoint: in-flight new object is unknown";
              NewObjects.emplace_back(Site, TheHeap.objectAt(Id2));
            }
            const ir::TaskDecl &Decl = Prog.taskOf(Inv.Task);
            if (Inv.Params.size() != Decl.Params.size() || ChosenExit < 0 ||
                static_cast<size_t>(ChosenExit) >= Decl.Exits.size())
              return "checkpoint: in-flight invocation diverges from the "
                     "program";
            Flight.Ctx = TaskContext::restore(
                BP, TheHeap, Inv.Task, Inv.Params, std::move(TagVars),
                Opts->Args, Charged, ChosenExit, std::move(NewObjects));
            Flight.Inv = std::move(Inv);
            return {};
          });
      !Err.empty())
    return Err;

  if (std::string Err = exec::loadEventQueue(
          R, C.Body.size(), Queue,
          [this](ByteReader &BR, Event &E) -> std::string {
            int64_t ObjId = BR.i64();
            if (ObjId >= 0) {
              if (static_cast<uint64_t>(ObjId) >= TheHeap.numObjects())
                return "checkpoint: queued event references an unknown "
                       "object";
              E.Item = TheHeap.objectAt(static_cast<uint64_t>(ObjId));
            }
            E.InstanceIdx = BR.i32();
            E.Param = BR.i32();
            E.FlightIdx = BR.i32();
            if (E.Kind == exec::EventKind::Completion &&
                (E.FlightIdx < 0 ||
                 static_cast<size_t>(E.FlightIdx) >= InFlights.size() ||
                 !InFlights[static_cast<size_t>(E.FlightIdx)].Ctx))
              return "checkpoint: completion event references an empty "
                     "flight slot";
            return {};
          });
      !Err.empty())
    return Err;
  return exec::finishBody(R);
}

std::string TileExecutor::watchdogDump(Cycles Now) {
  support::WatchdogReport Rep("tile", Now, LastProgress,
                              Opts->WatchdogCycles, "cycles");
  Rep.traceTail(Opts->Trace, 20);
  Rep.section("per-core state");
  for (size_t C = 0; C < Cores.size(); ++C)
    Rep.line(formatString(
        "core %zu: %s%s ready=%zu busy-until=%llu stall-until=%llu "
        "lock-until=%llu",
        C, CoreAlive[C] ? "alive" : "DEAD",
        Cores[C].Executing ? " executing" : "", Cores[C].Ready.size(),
        static_cast<unsigned long long>(Cores[C].BusyUntil),
        static_cast<unsigned long long>(StallEnd[C]),
        static_cast<unsigned long long>(LockEnd[C])));
  exec::appendHeldLocks(Rep, TheHeap);
  return Rep.str();
}
