//===- interp/Value.h - Shared DSL runtime value model ----------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value model of interpreted/compiled Bamboo-DSL code, shared
/// by the tree-walking interpreter (src/interp) and the bytecode VM
/// (src/vm). Both execution modes operate on the same Value variant, the
/// same InterpObjectData heap payloads, and the same checkpoint codec, so
/// a program state produced under one mode is indistinguishable — on the
/// heap, in checksums, and in checkpoint bytes — from the other mode's.
///
/// The arithmetic/comparison helpers live here for the same reason: both
/// engines must agree bit for bit on every operator corner case (string
/// concatenation rendering, int/double promotion, division traps), so
/// there is exactly one implementation.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_INTERP_VALUE_H
#define BAMBOO_INTERP_VALUE_H

#include "frontend/Ast.h"
#include "runtime/BoundProgram.h"
#include "runtime/Object.h"

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace bamboo::interp {

struct ArrayValue;

/// A runtime value of the DSL.
using Value = std::variant<std::monostate, int64_t, double, bool,
                           std::string, runtime::Object *,
                           std::shared_ptr<ArrayValue>,
                           runtime::TagInstance *>;

struct ArrayValue {
  std::vector<Value> Elems;
};

/// Field storage attached to runtime objects for DSL classes (both
/// execution modes; checkpointKey stays "interp" so snapshots are
/// mode-independent).
struct InterpObjectData : runtime::ObjectData {
  const frontend::ast::ClassDeclAst *Class = nullptr;
  std::vector<Value> Fields;
  const char *checkpointKey() const override { return "interp"; }
};

/// Checkpoint encoding of a Value: a tag byte equal to the variant index,
/// then the payload. Objects and tag instances are encoded as heap ids
/// (-1 for null); arrays by value with shared-structure preservation via
/// the codec context, so aliased arrays stay aliased after a restore.
void saveValue(const Value &V, resilience::ByteWriter &W,
               runtime::CodecSaveCtx &Ctx);
Value loadValue(resilience::ByteReader &R, runtime::CodecLoadCtx &Ctx);

/// The default (zero) value of a declared type.
Value defaultValue(const frontend::ast::RType &Ty);

inline bool isNull(const Value &V) {
  return std::holds_alternative<std::monostate>(V);
}

inline double asDouble(const Value &V) {
  if (const auto *I = std::get_if<int64_t>(&V))
    return static_cast<double>(*I);
  return std::get<double>(V);
}

/// Widen \p V to double when \p Target is a scalar double (the only
/// implicit conversion of the language). All store points (locals, fields,
/// arguments, returns) funnel through this.
inline Value coerce(Value V, const frontend::ast::RType &Target) {
  if (Target.Base == frontend::ast::BaseKind::Double && Target.Depth == 0)
    if (const auto *I = std::get_if<int64_t>(&V))
      return static_cast<double>(*I);
  return V;
}

/// Applies a non-short-circuit binary operator to \p L and \p R with the
/// language's dynamic dispatch (string concatenation, int/double
/// promotion, reference identity for ==/!=). Returns nullptr on success
/// with the result in \p Out, or a static trap message ("division by
/// zero", "remainder by zero") the caller wraps with its source location.
/// And/Or are short-circuit and must be handled by the caller.
const char *applyBinary(frontend::ast::BinaryOp Op, const Value &L,
                        const Value &R, Value &Out);

/// Applies a unary operator (Neg with int/double dispatch, Not).
void applyUnary(frontend::ast::UnaryOp Op, const Value &V, Value &Out);

} // namespace bamboo::interp

#endif // BAMBOO_INTERP_VALUE_H
