//===- interp/Interp.cpp - DSL task-body interpreter ----------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "runtime/TaskContext.h"
#include "support/Debug.h"
#include "support/Format.h"

#include <cassert>
#include <cmath>
#include <memory>
#include <variant>

using namespace bamboo;
using namespace bamboo::interp;
using namespace bamboo::frontend;
using namespace bamboo::frontend::ast;

namespace bamboo::interp {

/// Walks annotated ASTs for one task invocation (and the methods it
/// calls). A fresh Evaluator is created per invocation; frames are local
/// slot vectors.
class Evaluator {
public:
  Evaluator(DslProgram &IP, runtime::TaskContext &Ctx) : IP(IP), Ctx(Ctx) {}

  void runTask(const TaskDeclAst &Task) {
    std::vector<Value> Slots(static_cast<size_t>(Task.NumSlots));
    for (size_t P = 0; P < Task.Params.size(); ++P)
      Slots[P] = &Ctx.param(static_cast<int>(P));
    for (const TaskParamAst &Param : Task.Params)
      for (const TagConstraintAst &TC : Param.Tags)
        if (TC.Slot >= 0)
          Slots[static_cast<size_t>(TC.Slot)] = Ctx.tagVar(TC.Var);
    Frame F{Slots, /*Self=*/nullptr};
    exec(F, Task.Body.get());
    Ctx.charge(Ops);
  }

private:
  struct Frame {
    std::vector<Value> Slots;
    runtime::Object *Self = nullptr;
  };

  enum class Flow { Normal, Break, Continue, Return, Exit, Trap };

  DslProgram &IP;
  runtime::TaskContext &Ctx;
  machine::Cycles Ops = 0;
  Value ReturnValue;

  Flow trap(SourceLoc Loc, const std::string &Msg) {
    IP.reportError(Loc, Msg);
    return Flow::Trap;
  }

  InterpObjectData &dataOf(runtime::Object *Obj) {
    return Obj->dataAs<InterpObjectData>();
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  Flow exec(Frame &F, const Stmt *S) {
    if (!S)
      return Flow::Normal;
    switch (S->K) {
    case StmtKind::Block: {
      for (const StmtPtr &Child : static_cast<const BlockStmt *>(S)->Stmts) {
        Flow Fl = exec(F, Child.get());
        if (Fl != Flow::Normal)
          return Fl;
      }
      return Flow::Normal;
    }
    case StmtKind::VarDecl: {
      const auto *D = static_cast<const VarDeclStmt *>(S);
      Value V = defaultValue(D->Resolved);
      if (D->Init) {
        Flow Fl = eval(F, D->Init.get(), V);
        if (Fl != Flow::Normal)
          return Fl;
        V = coerce(std::move(V), D->Resolved);
      }
      F.Slots[static_cast<size_t>(D->Slot)] = std::move(V);
      return Flow::Normal;
    }
    case StmtKind::TagDecl: {
      const auto *D = static_cast<const TagDeclStmt *>(S);
      runtime::TagInstance *Inst = Ctx.newTag(D->TagType);
      F.Slots[static_cast<size_t>(D->Slot)] = Inst;
      Ctx.bindTagVar(D->Name, Inst);
      return Flow::Normal;
    }
    case StmtKind::Expr: {
      Value Ignored;
      return eval(F, static_cast<const ExprStmt *>(S)->E.get(), Ignored);
    }
    case StmtKind::If: {
      const auto *I = static_cast<const IfStmt *>(S);
      Value Cond;
      Flow Fl = eval(F, I->Cond.get(), Cond);
      if (Fl != Flow::Normal)
        return Fl;
      if (std::get<bool>(Cond))
        return exec(F, I->Then.get());
      return exec(F, I->Else.get());
    }
    case StmtKind::While: {
      const auto *W = static_cast<const WhileStmt *>(S);
      for (;;) {
        Value Cond;
        Flow Fl = eval(F, W->Cond.get(), Cond);
        if (Fl != Flow::Normal)
          return Fl;
        if (!std::get<bool>(Cond))
          return Flow::Normal;
        Fl = exec(F, W->Body.get());
        if (Fl == Flow::Break)
          return Flow::Normal;
        if (Fl != Flow::Normal && Fl != Flow::Continue)
          return Fl;
      }
    }
    case StmtKind::For: {
      const auto *Loop = static_cast<const ForStmt *>(S);
      Flow Fl = exec(F, Loop->Init.get());
      if (Fl != Flow::Normal)
        return Fl;
      for (;;) {
        if (Loop->Cond) {
          Value Cond;
          Fl = eval(F, Loop->Cond.get(), Cond);
          if (Fl != Flow::Normal)
            return Fl;
          if (!std::get<bool>(Cond))
            return Flow::Normal;
        }
        Fl = exec(F, Loop->Body.get());
        if (Fl == Flow::Break)
          return Flow::Normal;
        if (Fl != Flow::Normal && Fl != Flow::Continue)
          return Fl;
        if (Loop->Step) {
          Value Ignored;
          Fl = eval(F, Loop->Step.get(), Ignored);
          if (Fl != Flow::Normal)
            return Fl;
        }
      }
    }
    case StmtKind::Return: {
      const auto *R = static_cast<const ReturnStmt *>(S);
      ReturnValue = std::monostate{};
      if (R->Value) {
        Flow Fl = eval(F, R->Value.get(), ReturnValue);
        if (Fl != Flow::Normal)
          return Fl;
      }
      return Flow::Return;
    }
    case StmtKind::Break:
      return Flow::Break;
    case StmtKind::Continue:
      return Flow::Continue;
    case StmtKind::TaskExit: {
      const auto *T = static_cast<const TaskExitStmt *>(S);
      Ctx.exitWith(T->Exit);
      for (const ExitParamAction &Action : T->Actions) {
        for (const ExitTagActionAst &TA : Action.Tags) {
          if (TA.Slot < 0)
            continue;
          auto *Inst = std::get<runtime::TagInstance *>(
              F.Slots[static_cast<size_t>(TA.Slot)]);
          Ctx.bindTagVar(TA.TagVar, Inst);
        }
      }
      return Flow::Exit;
    }
    }
    BAMBOO_UNREACHABLE("covered switch");
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Flow eval(Frame &F, const Expr *E, Value &Out) {
    ++Ops; // Automatic work metering: one cycle per expression node.
    switch (E->K) {
    case ExprKind::IntLit:
      Out = static_cast<const IntLitExpr *>(E)->Value;
      return Flow::Normal;
    case ExprKind::DoubleLit:
      Out = static_cast<const DoubleLitExpr *>(E)->Value;
      return Flow::Normal;
    case ExprKind::BoolLit:
      Out = static_cast<const BoolLitExpr *>(E)->Value;
      return Flow::Normal;
    case ExprKind::StringLit:
      Out = static_cast<const StringLitExpr *>(E)->Value;
      return Flow::Normal;
    case ExprKind::NullLit:
      Out = std::monostate{};
      return Flow::Normal;
    case ExprKind::VarRef: {
      const auto *V = static_cast<const VarRefExpr *>(E);
      if (V->Bind == VarRefExpr::Binding::LocalSlot) {
        Out = F.Slots[static_cast<size_t>(V->Slot)];
        return Flow::Normal;
      }
      if (V->Bind == VarRefExpr::Binding::SelfField) {
        Out = dataOf(F.Self).Fields[static_cast<size_t>(V->FieldIndex)];
        return Flow::Normal;
      }
      return trap(V->Loc, "unbound variable " + V->Name);
    }
    case ExprKind::FieldAccess: {
      const auto *FA = static_cast<const FieldAccessExpr *>(E);
      Value Base;
      Flow Fl = eval(F, FA->Base.get(), Base);
      if (Fl != Flow::Normal)
        return Fl;
      if (FA->IsArrayLength) {
        if (isNull(Base))
          return trap(FA->Loc, "null dereference reading length");
        Out = static_cast<int64_t>(
            std::get<std::shared_ptr<ArrayValue>>(Base)->Elems.size());
        return Flow::Normal;
      }
      if (isNull(Base))
        return trap(FA->Loc, "null dereference reading field " + FA->Field);
      Out = dataOf(std::get<runtime::Object *>(Base))
                .Fields[static_cast<size_t>(FA->FieldIndex)];
      return Flow::Normal;
    }
    case ExprKind::Index: {
      const auto *I = static_cast<const IndexExpr *>(E);
      Value Base, Idx;
      Flow Fl = eval(F, I->Base.get(), Base);
      if (Fl != Flow::Normal)
        return Fl;
      Fl = eval(F, I->Index.get(), Idx);
      if (Fl != Flow::Normal)
        return Fl;
      if (isNull(Base))
        return trap(I->Loc, "null dereference indexing array");
      auto &Arr = *std::get<std::shared_ptr<ArrayValue>>(Base);
      int64_t N = std::get<int64_t>(Idx);
      if (N < 0 || static_cast<size_t>(N) >= Arr.Elems.size())
        return trap(I->Loc,
                    formatString("array index %lld out of bounds for "
                                 "length %zu",
                                 static_cast<long long>(N),
                                 Arr.Elems.size()));
      Out = Arr.Elems[static_cast<size_t>(N)];
      return Flow::Normal;
    }
    case ExprKind::Call:
      return evalCall(F, static_cast<const CallExpr *>(E), Out);
    case ExprKind::NewObject:
      return evalNewObject(F, static_cast<const NewObjectExpr *>(E), Out);
    case ExprKind::NewArray:
      return evalNewArray(F, static_cast<const NewArrayExpr *>(E), Out, 0);
    case ExprKind::Unary: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      Value V;
      Flow Fl = eval(F, U->Operand.get(), V);
      if (Fl != Flow::Normal)
        return Fl;
      applyUnary(U->Op, V, Out);
      return Flow::Normal;
    }
    case ExprKind::Binary:
      return evalBinary(F, static_cast<const BinaryExpr *>(E), Out);
    case ExprKind::Assign:
      return evalAssign(F, static_cast<const AssignExpr *>(E), Out);
    }
    BAMBOO_UNREACHABLE("covered switch");
  }

  Flow evalBinary(Frame &F, const BinaryExpr *B, Value &Out) {
    // Short-circuit logic first.
    if (B->Op == BinaryOp::And || B->Op == BinaryOp::Or) {
      Value L;
      Flow Fl = eval(F, B->Lhs.get(), L);
      if (Fl != Flow::Normal)
        return Fl;
      bool Lb = std::get<bool>(L);
      if (B->Op == BinaryOp::And && !Lb) {
        Out = false;
        return Flow::Normal;
      }
      if (B->Op == BinaryOp::Or && Lb) {
        Out = true;
        return Flow::Normal;
      }
      Value R;
      Fl = eval(F, B->Rhs.get(), R);
      if (Fl != Flow::Normal)
        return Fl;
      Out = std::get<bool>(R);
      return Flow::Normal;
    }

    Value L, R;
    Flow Fl = eval(F, B->Lhs.get(), L);
    if (Fl != Flow::Normal)
      return Fl;
    Fl = eval(F, B->Rhs.get(), R);
    if (Fl != Flow::Normal)
      return Fl;

    if (const char *Err = applyBinary(B->Op, L, R, Out))
      return trap(B->Loc, Err);
    return Flow::Normal;
  }

  Flow evalAssign(Frame &F, const AssignExpr *A, Value &Out) {
    Value V;
    Flow Fl = eval(F, A->Value.get(), V);
    if (Fl != Flow::Normal)
      return Fl;
    V = coerce(std::move(V), A->Target->Ty);

    switch (A->Target->K) {
    case ExprKind::VarRef: {
      const auto *T = static_cast<const VarRefExpr *>(A->Target.get());
      if (T->Bind == VarRefExpr::Binding::LocalSlot)
        F.Slots[static_cast<size_t>(T->Slot)] = V;
      else
        dataOf(F.Self).Fields[static_cast<size_t>(T->FieldIndex)] = V;
      Out = std::move(V);
      return Flow::Normal;
    }
    case ExprKind::FieldAccess: {
      const auto *T = static_cast<const FieldAccessExpr *>(A->Target.get());
      Value Base;
      Fl = eval(F, T->Base.get(), Base);
      if (Fl != Flow::Normal)
        return Fl;
      if (isNull(Base))
        return trap(T->Loc, "null dereference writing field " + T->Field);
      dataOf(std::get<runtime::Object *>(Base))
          .Fields[static_cast<size_t>(T->FieldIndex)] = V;
      Out = std::move(V);
      return Flow::Normal;
    }
    case ExprKind::Index: {
      const auto *T = static_cast<const IndexExpr *>(A->Target.get());
      Value Base, Idx;
      Fl = eval(F, T->Base.get(), Base);
      if (Fl != Flow::Normal)
        return Fl;
      Fl = eval(F, T->Index.get(), Idx);
      if (Fl != Flow::Normal)
        return Fl;
      if (isNull(Base))
        return trap(T->Loc, "null dereference writing array element");
      auto &Arr = *std::get<std::shared_ptr<ArrayValue>>(Base);
      int64_t N = std::get<int64_t>(Idx);
      if (N < 0 || static_cast<size_t>(N) >= Arr.Elems.size())
        return trap(T->Loc, "array store out of bounds");
      Arr.Elems[static_cast<size_t>(N)] = V;
      Out = std::move(V);
      return Flow::Normal;
    }
    default:
      return trap(A->Loc, "invalid assignment target");
    }
  }

  Flow evalNewArray(Frame &F, const NewArrayExpr *N, Value &Out,
                    size_t Dim) {
    Value DimV;
    Flow Fl = eval(F, N->Dims[Dim].get(), DimV);
    if (Fl != Flow::Normal)
      return Fl;
    int64_t Len = std::get<int64_t>(DimV);
    if (Len < 0)
      return trap(N->Loc, "negative array length");

    auto Arr = std::make_shared<ArrayValue>();
    Arr->Elems.resize(static_cast<size_t>(Len));
    if (Dim + 1 < N->Dims.size()) {
      for (Value &Elem : Arr->Elems) {
        Fl = evalNewArray(F, N, Elem, Dim + 1);
        if (Fl != Flow::Normal)
          return Fl;
      }
    } else {
      // Element default from the static type with inner dims stripped.
      RType Elem = N->Ty;
      Elem.Depth -= static_cast<int>(N->Dims.size());
      for (Value &E : Arr->Elems)
        E = defaultValue(Elem);
    }
    Out = std::move(Arr);
    return Flow::Normal;
  }

  Flow evalNewObject(Frame &F, const NewObjectExpr *N, Value &Out) {
    const ClassDeclAst &Class =
        IP.ast().Classes[static_cast<size_t>(N->Class)];
    auto Data = std::make_unique<InterpObjectData>();
    Data->Class = &Class;
    Data->Fields.reserve(Class.Fields.size());
    for (const FieldDecl &Field : Class.Fields)
      Data->Fields.push_back(defaultValue(Field.Resolved));

    runtime::Object *Obj;
    if (N->Site != ir::InvalidId) {
      std::vector<runtime::TagInstance *> Tags;
      for (const TagInit &TI : N->Tags)
        if (TI.Slot >= 0)
          Tags.push_back(std::get<runtime::TagInstance *>(
              F.Slots[static_cast<size_t>(TI.Slot)]));
      Obj = Ctx.allocate(N->Site, std::move(Data), Tags);
    } else {
      Obj = Ctx.heap().allocate(N->Class, /*Flags=*/0, std::move(Data));
    }

    if (N->CtorIndex >= 0) {
      std::vector<Value> Args;
      const MethodDecl &Ctor =
          Class.Methods[static_cast<size_t>(N->CtorIndex)];
      for (size_t I = 0; I < N->Args.size(); ++I) {
        Value A;
        Flow Fl = eval(F, N->Args[I].get(), A);
        if (Fl != Flow::Normal)
          return Fl;
        Args.push_back(coerce(std::move(A), Ctor.Params[I].Resolved));
      }
      Flow Fl = callMethod(Obj, Ctor, std::move(Args), N->Loc);
      if (Fl == Flow::Trap)
        return Fl;
    }
    Out = Obj;
    return Flow::Normal;
  }

  Flow callMethod(runtime::Object *Receiver, const MethodDecl &Method,
                  std::vector<Value> Args, SourceLoc Loc) {
    if (Depth > 256)
      return trap(Loc, "method recursion too deep");
    ++Depth;
    Frame Callee{std::vector<Value>(static_cast<size_t>(Method.NumSlots)),
                 Receiver};
    for (size_t I = 0; I < Args.size(); ++I)
      Callee.Slots[I] = std::move(Args[I]);
    ReturnValue = std::monostate{};
    Flow Fl = exec(Callee, Method.Body.get());
    --Depth;
    if (Fl == Flow::Trap)
      return Flow::Trap;
    return Flow::Normal; // Return/Normal both end the call.
  }

  int Depth = 0;

  Flow evalCall(Frame &F, const CallExpr *C, Value &Out) {
    if (C->Builtin != BuiltinId::None)
      return evalBuiltin(F, C, Out);

    // Resolve receiver.
    runtime::Object *Receiver;
    if (C->Base) {
      Value Base;
      Flow Fl = eval(F, C->Base.get(), Base);
      if (Fl != Flow::Normal)
        return Fl;
      if (isNull(Base))
        return trap(C->Loc, "null dereference calling " + C->Method);
      Receiver = std::get<runtime::Object *>(Base);
    } else {
      Receiver = F.Self;
    }

    const ClassDeclAst &Class =
        IP.ast().Classes[static_cast<size_t>(C->TargetClass)];
    const MethodDecl &Method =
        Class.Methods[static_cast<size_t>(C->MethodIndex)];
    std::vector<Value> Args;
    for (size_t I = 0; I < C->Args.size(); ++I) {
      Value A;
      Flow Fl = eval(F, C->Args[I].get(), A);
      if (Fl != Flow::Normal)
        return Fl;
      Args.push_back(coerce(std::move(A), Method.Params[I].Resolved));
    }
    Flow Fl = callMethod(Receiver, Method, std::move(Args), C->Loc);
    if (Fl == Flow::Trap)
      return Fl;
    Out = coerce(ReturnValue, Method.ResolvedReturn);
    return Flow::Normal;
  }

  Flow evalBuiltin(Frame &F, const CallExpr *C, Value &Out) {
    // Evaluate receiver (string builtins) and arguments.
    Value Base;
    if (C->Base && C->Builtin >= BuiltinId::StringLength) {
      Flow Fl = eval(F, C->Base.get(), Base);
      if (Fl != Flow::Normal)
        return Fl;
    }
    std::vector<Value> Args;
    for (const ExprPtr &Arg : C->Args) {
      Value A;
      Flow Fl = eval(F, Arg.get(), A);
      if (Fl != Flow::Normal)
        return Fl;
      Args.push_back(std::move(A));
    }
    auto ArgD = [&](size_t I) { return asDouble(Args[I]); };

    switch (C->Builtin) {
    case BuiltinId::SystemPrintString:
      IP.appendOutput(std::get<std::string>(Args[0]));
      Out = std::monostate{};
      return Flow::Normal;
    case BuiltinId::SystemPrintInt:
      IP.appendOutput(formatString(
          "%lld", static_cast<long long>(std::get<int64_t>(Args[0]))));
      Out = std::monostate{};
      return Flow::Normal;
    case BuiltinId::SystemPrintDouble:
      IP.appendOutput(formatString("%g", ArgD(0)));
      Out = std::monostate{};
      return Flow::Normal;
    case BuiltinId::MathSqrt:
      Out = std::sqrt(ArgD(0));
      return Flow::Normal;
    case BuiltinId::MathFabs:
      Out = std::fabs(ArgD(0));
      return Flow::Normal;
    case BuiltinId::MathAbs:
      if (const auto *I = std::get_if<int64_t>(&Args[0]))
        Out = *I < 0 ? -*I : *I;
      else
        Out = std::fabs(ArgD(0));
      return Flow::Normal;
    case BuiltinId::MathSin:
      Out = std::sin(ArgD(0));
      return Flow::Normal;
    case BuiltinId::MathCos:
      Out = std::cos(ArgD(0));
      return Flow::Normal;
    case BuiltinId::MathExp:
      Out = std::exp(ArgD(0));
      return Flow::Normal;
    case BuiltinId::MathLog:
      Out = std::log(ArgD(0));
      return Flow::Normal;
    case BuiltinId::MathFloor:
      Out = std::floor(ArgD(0));
      return Flow::Normal;
    case BuiltinId::MathPow:
      Out = std::pow(ArgD(0), ArgD(1));
      return Flow::Normal;
    case BuiltinId::MathMax:
      Out = std::fmax(ArgD(0), ArgD(1));
      return Flow::Normal;
    case BuiltinId::MathMin:
      Out = std::fmin(ArgD(0), ArgD(1));
      return Flow::Normal;
    case BuiltinId::BambooCharge:
      Ctx.charge(static_cast<machine::Cycles>(
          std::max<int64_t>(0, std::get<int64_t>(Args[0]))));
      Out = std::monostate{};
      return Flow::Normal;
    case BuiltinId::BambooRand: {
      int64_t Bound = std::get<int64_t>(Args[0]);
      if (Bound <= 0)
        return trap(C->Loc, "Bamboo.rand requires a positive bound");
      Out = static_cast<int64_t>(
          Ctx.rng().nextBelow(static_cast<uint64_t>(Bound)));
      return Flow::Normal;
    }
    case BuiltinId::StringLength:
      Out = static_cast<int64_t>(std::get<std::string>(Base).size());
      return Flow::Normal;
    case BuiltinId::StringCharAt: {
      const std::string &S = std::get<std::string>(Base);
      int64_t I = std::get<int64_t>(Args[0]);
      if (I < 0 || static_cast<size_t>(I) >= S.size())
        return trap(C->Loc, "charAt index out of bounds");
      Out = static_cast<int64_t>(
          static_cast<unsigned char>(S[static_cast<size_t>(I)]));
      return Flow::Normal;
    }
    case BuiltinId::StringSubstring: {
      const std::string &S = std::get<std::string>(Base);
      int64_t Lo = std::get<int64_t>(Args[0]);
      int64_t Hi = std::get<int64_t>(Args[1]);
      if (Lo < 0 || Hi < Lo || static_cast<size_t>(Hi) > S.size())
        return trap(C->Loc, "substring bounds invalid");
      Out = S.substr(static_cast<size_t>(Lo),
                     static_cast<size_t>(Hi - Lo));
      return Flow::Normal;
    }
    case BuiltinId::StringIndexOf: {
      const std::string &S = std::get<std::string>(Base);
      const std::string &Needle = std::get<std::string>(Args[0]);
      int64_t From = std::get<int64_t>(Args[1]);
      if (From < 0)
        From = 0;
      if (static_cast<size_t>(From) > S.size()) {
        Out = int64_t{-1};
        return Flow::Normal;
      }
      size_t Pos = S.find(Needle, static_cast<size_t>(From));
      Out = Pos == std::string::npos ? int64_t{-1}
                                     : static_cast<int64_t>(Pos);
      return Flow::Normal;
    }
    case BuiltinId::StringEquals:
      Out = std::get<std::string>(Base) == std::get<std::string>(Args[0]);
      return Flow::Normal;
    case BuiltinId::None:
      break;
    }
    BAMBOO_UNREACHABLE("not a builtin");
  }
};

} // namespace bamboo::interp

void interp::bindInterpreterTasks(DslProgram &P) {
  for (const TaskDeclAst &Task : P.ast().Tasks) {
    if (Task.Id == ir::InvalidId)
      continue;
    const TaskDeclAst *TaskPtr = &Task;
    P.bound().bind(Task.Id, [&P, TaskPtr](runtime::TaskContext &Ctx) {
      Evaluator E(P, Ctx);
      E.runTask(*TaskPtr);
    });
  }
}

InterpProgram::InterpProgram(frontend::CompiledModule CM)
    : DslProgram(std::move(CM)) {
  bindInterpreterTasks(*this);
}
