//===- interp/DslProgram.cpp - Executable DSL program host ----------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/DslProgram.h"

#include "support/Format.h"

#include <cassert>

using namespace bamboo;
using namespace bamboo::interp;
using namespace bamboo::frontend;
using namespace bamboo::frontend::ast;

void DslProgram::appendOutput(const std::string &Text) {
  std::lock_guard<std::mutex> Guard(IoMutex);
  Output += Text;
}

void DslProgram::reportError(SourceLoc Loc, const std::string &Msg) {
  std::lock_guard<std::mutex> Guard(IoMutex);
  if (!Error.empty())
    return; // Keep the first error.
  Error = formatString("%d:%d: %s", Loc.Line, Loc.Col, Msg.c_str());
}

DslProgram::DslProgram(frontend::CompiledModule CM)
    : Ast(std::move(CM.Ast)), BP(std::move(CM.Prog)) {
  // Startup payload: an InterpObjectData for StartupObject whose `args`
  // field (if declared) carries the run arguments.
  const ClassDeclAst *Startup = Ast.findClass("StartupObject");
  assert(Startup && "frontend always provides StartupObject");
  BP.setStartupFactory(
      [Startup](const std::vector<std::string> &Args)
          -> std::unique_ptr<runtime::ObjectData> {
        auto Data = std::make_unique<InterpObjectData>();
        Data->Class = Startup;
        for (const FieldDecl &Field : Startup->Fields)
          Data->Fields.push_back(defaultValue(Field.Resolved));
        int ArgsIdx = Startup->fieldIndex("args");
        if (ArgsIdx >= 0) {
          auto Arr = std::make_shared<ArrayValue>();
          for (const std::string &A : Args)
            Arr->Elems.emplace_back(A);
          Data->Fields[static_cast<size_t>(ArgsIdx)] = std::move(Arr);
        }
        return Data;
      });

  // Checkpoint codec: class by name (resolved against this module's AST
  // on load), then the field values. Identical in both execution modes,
  // so snapshots restore across --exec-mode boundaries.
  runtime::ObjectCodec Codec;
  Codec.Save = [](const runtime::ObjectData &D, resilience::ByteWriter &W,
                  runtime::CodecSaveCtx &Ctx) {
    const auto &Data = static_cast<const InterpObjectData &>(D);
    W.str(Data.Class ? Data.Class->Name : std::string());
    W.u64(Data.Fields.size());
    for (const Value &V : Data.Fields)
      saveValue(V, W, Ctx);
  };
  Codec.Load = [this](resilience::ByteReader &R, runtime::CodecLoadCtx &Ctx)
      -> std::unique_ptr<runtime::ObjectData> {
    auto Data = std::make_unique<InterpObjectData>();
    std::string ClassName = R.str();
    if (!ClassName.empty()) {
      Data->Class = Ast.findClass(ClassName);
      if (!Data->Class)
        return nullptr;
    }
    uint64_t N = R.u64();
    for (uint64_t I = 0; I < N && R.ok(); ++I)
      Data->Fields.push_back(loadValue(R, Ctx));
    return R.ok() ? std::move(Data) : nullptr;
  };
  BP.registerCodec("interp", std::move(Codec));
}
