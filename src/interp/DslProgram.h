//===- interp/DslProgram.h - Executable DSL program host --------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-mode-independent half of a runnable DSL module: owns the
/// annotated AST and the runtime::BoundProgram binding seam, accumulates
/// program output and the first runtime error, and registers the startup
/// factory plus the "interp" heap-payload checkpoint codec. The
/// tree-walking InterpProgram (src/interp) and the bytecode VmProgram
/// (src/vm) both derive from this, so the executors, the checkpoint
/// subsystem, and the driver treat the two modes identically.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_INTERP_DSLPROGRAM_H
#define BAMBOO_INTERP_DSLPROGRAM_H

#include "frontend/Sema.h"
#include "interp/Value.h"
#include "runtime/BoundProgram.h"

#include <memory>
#include <mutex>
#include <string>

namespace bamboo::interp {

/// A compiled DSL module bound to executable bodies, ready for execution.
/// Subclasses bind every task in their constructor (interpreter closures
/// or compiled bytecode). Owns the AST and accumulates program output.
class DslProgram {
public:
  virtual ~DslProgram() = default;

  DslProgram(const DslProgram &) = delete;
  DslProgram &operator=(const DslProgram &) = delete;

  runtime::BoundProgram &bound() { return BP; }
  const runtime::BoundProgram &bound() const { return BP; }
  const frontend::ast::Module &ast() const { return Ast; }

  /// Text printed via System.print* so far.
  const std::string &output() const { return Output; }
  void clearOutput() { Output.clear(); }

  /// First runtime error, if any ("null dereference at 12:3").
  const std::string &error() const { return Error; }
  bool hadError() const { return !Error.empty(); }
  void clearError() { Error.clear(); }

  void appendOutput(const std::string &Text);
  void reportError(frontend::SourceLoc Loc, const std::string &Msg);

protected:
  /// Consumes \p CM; installs the startup factory and the "interp" codec.
  /// Subclasses bind the task bodies.
  explicit DslProgram(frontend::CompiledModule CM);

  frontend::ast::Module Ast;
  runtime::BoundProgram BP;

private:
  /// Guards Output/Error: task bodies print and trap concurrently when
  /// the program runs on the host-thread engine. Readers (output(),
  /// error()) are only called between runs, after workers have joined.
  std::mutex IoMutex;
  std::string Output;
  std::string Error;
};

} // namespace bamboo::interp

#endif // BAMBOO_INTERP_DSLPROGRAM_H
