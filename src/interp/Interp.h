//===- interp/Interp.h - DSL task-body interpreter --------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes Bamboo-DSL programs on the runtime: each task of a compiled
/// module is bound to a tree-walking interpreter closure over its annotated
/// AST. Objects allocated by DSL code live on the runtime heap (sites route
/// through the CSTG dispatch machinery; plain helper objects do not), so
/// DSL programs run under exactly the same schedulers, layouts, and cost
/// model as embedded C++ programs.
///
/// The interpreter meters work automatically: every expression evaluation
/// charges one virtual cycle, and `Bamboo.charge(n)` adds explicit cost.
/// Runtime errors in DSL code (null dereference, division by zero, index
/// out of bounds) are recorded on the InterpProgram and end the offending
/// task body via its fall-through exit.
///
/// The faster execution mode for the same programs is the bytecode VM in
/// src/vm (vm::VmProgram); both derive from interp::DslProgram and agree
/// on output, cycle counts, traps, and checkpoint bytes.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_INTERP_INTERP_H
#define BAMBOO_INTERP_INTERP_H

#include "interp/DslProgram.h"

namespace bamboo::interp {

/// A compiled DSL module bound to interpreter bodies, ready for execution.
class InterpProgram : public DslProgram {
public:
  /// Consumes \p CM and binds every task. Call
  /// analysis::analyzeDisjointness before this if lock plans should
  /// reflect the imperative code.
  explicit InterpProgram(frontend::CompiledModule CM);
};

/// Binds every task of \p P to a tree-walking interpreter closure over its
/// AST. Used by InterpProgram and as the VM's fallback when a body exceeds
/// the bytecode format's limits.
void bindInterpreterTasks(DslProgram &P);

} // namespace bamboo::interp

#endif // BAMBOO_INTERP_INTERP_H
