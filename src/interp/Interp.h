//===- interp/Interp.h - DSL task-body interpreter --------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes Bamboo-DSL programs on the runtime: each task of a compiled
/// module is bound to a tree-walking interpreter closure over its annotated
/// AST. Objects allocated by DSL code live on the runtime heap (sites route
/// through the CSTG dispatch machinery; plain helper objects do not), so
/// DSL programs run under exactly the same schedulers, layouts, and cost
/// model as embedded C++ programs.
///
/// The interpreter meters work automatically: every expression evaluation
/// charges one virtual cycle, and `Bamboo.charge(n)` adds explicit cost.
/// Runtime errors in DSL code (null dereference, division by zero, index
/// out of bounds) are recorded on the InterpProgram and end the offending
/// task body via its fall-through exit.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_INTERP_INTERP_H
#define BAMBOO_INTERP_INTERP_H

#include "frontend/Sema.h"
#include "runtime/BoundProgram.h"

#include <memory>
#include <mutex>
#include <string>

namespace bamboo::interp {

/// A compiled DSL module bound to interpreter bodies, ready for execution.
/// Owns the AST the closures walk and accumulates program output.
class InterpProgram {
public:
  /// Consumes \p CM and binds every task. Call
  /// analysis::analyzeDisjointness before this if lock plans should
  /// reflect the imperative code.
  explicit InterpProgram(frontend::CompiledModule CM);

  InterpProgram(const InterpProgram &) = delete;
  InterpProgram &operator=(const InterpProgram &) = delete;

  runtime::BoundProgram &bound() { return BP; }
  const runtime::BoundProgram &bound() const { return BP; }
  const frontend::ast::Module &ast() const { return Ast; }

  /// Text printed via System.print* so far.
  const std::string &output() const { return Output; }
  void clearOutput() { Output.clear(); }

  /// First runtime error, if any ("null dereference at 12:3").
  const std::string &error() const { return Error; }
  bool hadError() const { return !Error.empty(); }
  void clearError() { Error.clear(); }

private:
  friend class Evaluator;

  frontend::ast::Module Ast;
  runtime::BoundProgram BP;
  /// Guards Output/Error: task bodies print and trap concurrently when
  /// the program runs on the host-thread engine. Readers (output(),
  /// error()) are only called between runs, after workers have joined.
  std::mutex IoMutex;
  std::string Output;
  std::string Error;

  void appendOutput(const std::string &Text);
  void reportError(frontend::SourceLoc Loc, const std::string &Msg);
};

} // namespace bamboo::interp

#endif // BAMBOO_INTERP_INTERP_H
