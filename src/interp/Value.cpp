//===- interp/Value.cpp - Shared DSL runtime value model ------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

#include "support/Debug.h"
#include "support/Format.h"

using namespace bamboo;
using namespace bamboo::interp;
using namespace bamboo::frontend::ast;

void interp::saveValue(const Value &V, resilience::ByteWriter &W,
                       runtime::CodecSaveCtx &Ctx) {
  W.u8(static_cast<uint8_t>(V.index()));
  switch (V.index()) {
  case 0:
    break;
  case 1:
    W.i64(std::get<int64_t>(V));
    break;
  case 2:
    W.f64(std::get<double>(V));
    break;
  case 3:
    W.u8(std::get<bool>(V) ? 1 : 0);
    break;
  case 4:
    W.str(std::get<std::string>(V));
    break;
  case 5: {
    const runtime::Object *Obj = std::get<runtime::Object *>(V);
    W.i64(Obj ? static_cast<int64_t>(Obj->Id) : -1);
    break;
  }
  case 6: {
    const auto &Arr = std::get<std::shared_ptr<ArrayValue>>(V);
    if (!Arr) {
      W.u8(0);
      break;
    }
    auto It = Ctx.SharedIds.find(Arr.get());
    if (It != Ctx.SharedIds.end()) {
      W.u8(1); // Back-reference to an already-written array.
      W.u64(It->second);
      break;
    }
    uint64_t Id = Ctx.NextSharedId++;
    Ctx.SharedIds.emplace(Arr.get(), Id);
    W.u8(2); // First occurrence: id then contents.
    W.u64(Id);
    W.u64(Arr->Elems.size());
    for (const Value &E : Arr->Elems)
      saveValue(E, W, Ctx);
    break;
  }
  case 7: {
    const runtime::TagInstance *TI = std::get<runtime::TagInstance *>(V);
    W.i64(TI ? static_cast<int64_t>(TI->Id) : -1);
    break;
  }
  default:
    break;
  }
}

Value interp::loadValue(resilience::ByteReader &R,
                        runtime::CodecLoadCtx &Ctx) {
  switch (R.u8()) {
  case 0:
    return std::monostate{};
  case 1:
    return R.i64();
  case 2:
    return R.f64();
  case 3:
    return R.u8() != 0;
  case 4:
    return R.str();
  case 5: {
    int64_t Id = R.i64();
    if (Id < 0)
      return static_cast<runtime::Object *>(nullptr);
    if (static_cast<uint64_t>(Id) >= Ctx.TheHeap->numObjects()) {
      R.fail();
      return std::monostate{};
    }
    return Ctx.TheHeap->objectAt(static_cast<size_t>(Id));
  }
  case 6: {
    switch (R.u8()) {
    case 0:
      return std::shared_ptr<ArrayValue>();
    case 1: {
      auto It = Ctx.Shared.find(R.u64());
      if (It == Ctx.Shared.end()) {
        R.fail();
        return std::monostate{};
      }
      return std::static_pointer_cast<ArrayValue>(It->second);
    }
    case 2: {
      uint64_t Id = R.u64();
      auto Arr = std::make_shared<ArrayValue>();
      Ctx.Shared.emplace(Id, Arr);
      uint64_t N = R.u64();
      for (uint64_t I = 0; I < N && R.ok(); ++I)
        Arr->Elems.push_back(loadValue(R, Ctx));
      return Arr;
    }
    default:
      R.fail();
      return std::monostate{};
    }
  }
  case 7: {
    int64_t Id = R.i64();
    if (Id < 0)
      return static_cast<runtime::TagInstance *>(nullptr);
    if (static_cast<uint64_t>(Id) >= Ctx.TheHeap->numTags()) {
      R.fail();
      return std::monostate{};
    }
    return Ctx.TheHeap->tagAt(static_cast<size_t>(Id));
  }
  default:
    R.fail();
    return std::monostate{};
  }
}

Value interp::defaultValue(const RType &Ty) {
  if (Ty.isArray() || Ty.Base == BaseKind::Class || Ty.Base == BaseKind::Null)
    return std::monostate{};
  switch (Ty.Base) {
  case BaseKind::Int:
    return int64_t{0};
  case BaseKind::Double:
    return 0.0;
  case BaseKind::Bool:
    return false;
  case BaseKind::String:
    return std::string();
  default:
    return std::monostate{};
  }
}

const char *interp::applyBinary(BinaryOp Op, const Value &L, const Value &R,
                                Value &Out) {
  auto BothInts = [&]() {
    return std::holds_alternative<int64_t>(L) &&
           std::holds_alternative<int64_t>(R);
  };

  switch (Op) {
  case BinaryOp::Add: {
    if (std::holds_alternative<std::string>(L) ||
        std::holds_alternative<std::string>(R)) {
      auto Render = [](const Value &V) -> std::string {
        if (const auto *S = std::get_if<std::string>(&V))
          return *S;
        if (const auto *I = std::get_if<int64_t>(&V))
          return formatString("%lld", static_cast<long long>(*I));
        if (const auto *D = std::get_if<double>(&V))
          return formatString("%g", *D);
        if (const auto *Bo = std::get_if<bool>(&V))
          return *Bo ? "true" : "false";
        return "null";
      };
      Out = Render(L) + Render(R);
      return nullptr;
    }
    if (BothInts())
      Out = std::get<int64_t>(L) + std::get<int64_t>(R);
    else
      Out = asDouble(L) + asDouble(R);
    return nullptr;
  }
  case BinaryOp::Sub:
    if (BothInts())
      Out = std::get<int64_t>(L) - std::get<int64_t>(R);
    else
      Out = asDouble(L) - asDouble(R);
    return nullptr;
  case BinaryOp::Mul:
    if (BothInts())
      Out = std::get<int64_t>(L) * std::get<int64_t>(R);
    else
      Out = asDouble(L) * asDouble(R);
    return nullptr;
  case BinaryOp::Div:
    if (BothInts()) {
      if (std::get<int64_t>(R) == 0)
        return "division by zero";
      Out = std::get<int64_t>(L) / std::get<int64_t>(R);
    } else {
      Out = asDouble(L) / asDouble(R);
    }
    return nullptr;
  case BinaryOp::Rem: {
    int64_t Rv = std::get<int64_t>(R);
    if (Rv == 0)
      return "remainder by zero";
    Out = std::get<int64_t>(L) % Rv;
    return nullptr;
  }
  case BinaryOp::Lt:
    Out = asDouble(L) < asDouble(R);
    return nullptr;
  case BinaryOp::Le:
    Out = asDouble(L) <= asDouble(R);
    return nullptr;
  case BinaryOp::Gt:
    Out = asDouble(L) > asDouble(R);
    return nullptr;
  case BinaryOp::Ge:
    Out = asDouble(L) >= asDouble(R);
    return nullptr;
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    bool Equal;
    if (std::holds_alternative<std::string>(L) &&
        std::holds_alternative<std::string>(R)) {
      Equal = std::get<std::string>(L) == std::get<std::string>(R);
    } else if ((std::holds_alternative<int64_t>(L) ||
                std::holds_alternative<double>(L)) &&
               (std::holds_alternative<int64_t>(R) ||
                std::holds_alternative<double>(R))) {
      Equal = asDouble(L) == asDouble(R);
    } else if (std::holds_alternative<bool>(L) &&
               std::holds_alternative<bool>(R)) {
      Equal = std::get<bool>(L) == std::get<bool>(R);
    } else {
      // Reference identity (null-aware).
      Equal = L == R;
    }
    Out = Op == BinaryOp::Eq ? Equal : !Equal;
    return nullptr;
  }
  case BinaryOp::And:
  case BinaryOp::Or:
    break; // Short-circuit; callers handle these.
  }
  BAMBOO_UNREACHABLE("covered switch");
}

void interp::applyUnary(UnaryOp Op, const Value &V, Value &Out) {
  if (Op == UnaryOp::Not) {
    Out = !std::get<bool>(V);
  } else if (const auto *I = std::get_if<int64_t>(&V)) {
    Out = -*I;
  } else {
    Out = -std::get<double>(V);
  }
}
