//===- sched/Scheduler.cpp - Pluggable deterministic schedulers -----------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/Scheduler.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <climits>

namespace bamboo::sched {

const char *policyName(Policy P) {
  switch (P) {
  case Policy::Rr:
    return "rr";
  case Policy::Ws:
    return "ws";
  case Policy::Locality:
    return "locality";
  case Policy::Dep:
    return "dep";
  }
  return "?";
}

bool parsePolicy(const std::string &Name, Policy &Out) {
  if (Name == "rr")
    Out = Policy::Rr;
  else if (Name == "ws")
    Out = Policy::Ws;
  else if (Name == "locality")
    Out = Policy::Locality;
  else if (Name == "dep")
    Out = Policy::Dep;
  else
    return false;
  return true;
}

Scheduler::~Scheduler() = default;

void Scheduler::beginRun(int Cores, size_t Tasks,
                         const std::vector<int> *Homes, HopFn HopDistance) {
  NumCores = Cores;
  NumTasks = Tasks;
  InstanceCore = Homes;
  Hop = std::move(HopDistance);
  StealCount = 0;
  Counters.assign((size_t(NumCores) + 1) * NumTasks, Untouched);
}

uint64_t &Scheduler::counter(int BucketCore, int Task, size_t SeedValue) {
  assert(BucketCore >= -1 && BucketCore < NumCores && "sender out of range");
  assert(Task >= 0 && size_t(Task) < NumTasks && "task out of range");
  uint64_t &Slot = Counters[(size_t(BucketCore) + 1) * NumTasks + size_t(Task)];
  if (Slot == Untouched)
    Slot = SeedValue;
  return Slot;
}

size_t Scheduler::pickRoundRobin(const runtime::RouteDest &Dest,
                                 int BucketCore, size_t SeedValue) {
  // The historical walk: seed on first use, return pre-increment modulo.
  uint64_t &C = counter(BucketCore, Dest.Task, SeedValue);
  size_t Pick = size_t(C % uint64_t(Dest.Instances.size()));
  ++C;
  return Pick;
}

size_t Scheduler::pickInstance(const runtime::RouteDest &Dest, int BucketCore,
                               size_t SeedValue, int FromCore) {
  if (Dest.Instances.size() < 2)
    return 0;
  return pickImpl(Dest, BucketCore, SeedValue, FromCore);
}

size_t Scheduler::pickImpl(const runtime::RouteDest &Dest, int BucketCore,
                           size_t SeedValue, int /*FromCore*/) {
  return pickRoundRobin(Dest, BucketCore, SeedValue);
}

int Scheduler::chooseVictim(int Thief, const std::vector<char> &CoreAlive,
                            const support::CoreSet &Loaded) const {
  if (!stealing() || Thief < 0 || Thief >= NumCores)
    return -1;
  // The candidate minimizing (victimKey, id) is exactly the first hit of
  // the historical walk over the per-thief victim order sorted by that
  // same pair — but visiting only the loaded cores.
  int Best = -1;
  uint64_t BestKey = 0;
  for (int Victim = Loaded.first(); Victim >= 0; Victim = Loaded.next(Victim)) {
    if (Victim == Thief ||
        (size_t(Victim) < CoreAlive.size() && !CoreAlive[size_t(Victim)]))
      continue;
    uint64_t Key = victimKey(Thief, Victim);
    if (Best < 0 || Key < BestKey) {
      Best = Victim;
      BestKey = Key;
    }
  }
  return Best;
}

uint64_t Scheduler::victimKey(int /*Thief*/, int /*Victim*/) const {
  return 0; // Non-stealing policies never reach chooseVictim's scan.
}

int Scheduler::chooseFailover(const std::vector<int> &Alive, size_t Ordinal,
                              int /*DeadCore*/) const {
  // The historical migration walk: round-robin over the failover order.
  return Alive[Ordinal % Alive.size()];
}

//===----------------------------------------------------------------------===//
// Checkpoint chunks
//===----------------------------------------------------------------------===//

void Scheduler::save(resilience::ByteWriter &W) const {
  // Pre-subsystem format: entry count, then (sender, task, value) triples
  // in (sender, task) lexicographic order starting at the -1 boot bucket.
  uint64_t Seeded = 0;
  for (uint64_t Slot : Counters)
    Seeded += Slot != Untouched;
  W.u64(Seeded);
  for (size_t Row = 0; Row <= size_t(NumCores); ++Row)
    for (size_t Task = 0; Task < NumTasks; ++Task) {
      uint64_t Slot = Counters[Row * NumTasks + Task];
      if (Slot == Untouched)
        continue;
      W.i32(int32_t(Row) - 1);
      W.i32(int32_t(Task));
      W.u64(Slot);
    }
  savePolicyState(W);
}

std::string Scheduler::load(resilience::ByteReader &R, size_t BodySize) {
  std::fill(Counters.begin(), Counters.end(), Untouched);
  uint64_t Seeded = R.u64();
  if (!R.ok() || Seeded > BodySize)
    return "checkpoint: truncated body (round-robin counters)";
  for (uint64_t I = 0; I < Seeded; ++I) {
    int32_t Sender = R.i32();
    int32_t Task = R.i32();
    uint64_t Value = R.u64();
    if (!R.ok())
      return "checkpoint: truncated body (round-robin counters)";
    if (Sender < -1 || Sender >= NumCores || Task < 0 ||
        size_t(Task) >= NumTasks)
      return "checkpoint: round-robin counter out of range";
    Counters[(size_t(Sender) + 1) * NumTasks + size_t(Task)] = Value;
  }
  return loadPolicyState(R);
}

void Scheduler::saveBucket(resilience::ByteWriter &W, int BucketCore) const {
  // The host engine's historical per-core format: count, then
  // (task, value) pairs in ascending task order.
  const uint64_t *Row = &Counters[(size_t(BucketCore) + 1) * NumTasks];
  uint64_t Seeded = 0;
  for (size_t Task = 0; Task < NumTasks; ++Task)
    Seeded += Row[Task] != Untouched;
  W.u64(Seeded);
  for (size_t Task = 0; Task < NumTasks; ++Task) {
    if (Row[Task] == Untouched)
      continue;
    W.i32(int32_t(Task));
    W.u64(Row[Task]);
  }
}

std::string Scheduler::loadBucket(resilience::ByteReader &R, int BucketCore) {
  uint64_t *Row = &Counters[(size_t(BucketCore) + 1) * NumTasks];
  std::fill(Row, Row + NumTasks, Untouched);
  uint64_t Seeded = R.u64();
  if (!R.ok() || Seeded > NumTasks)
    return "checkpoint: truncated body (round-robin counters)";
  for (uint64_t I = 0; I < Seeded; ++I) {
    int32_t Task = R.i32();
    uint64_t Value = R.u64();
    if (!R.ok())
      return "checkpoint: truncated body (round-robin counters)";
    if (Task < 0 || size_t(Task) >= NumTasks)
      return "checkpoint: round-robin counter out of range";
    Row[Task] = Value;
  }
  return "";
}

void Scheduler::savePolicyState(resilience::ByteWriter &W) const {
  W.u8(uint8_t(Pol));
  W.u64(StealCount);
}

std::string Scheduler::loadPolicyState(resilience::ByteReader &R) {
  uint8_t Tag = R.u8();
  uint64_t Steals = R.u64();
  if (!R.ok())
    return "checkpoint: truncated body (scheduler state)";
  if (Tag > uint8_t(Policy::Dep))
    return formatString("checkpoint: unknown scheduler policy %u",
                                 unsigned(Tag));
  if (Tag != uint8_t(Pol))
    return formatString(
        "checkpoint: scheduler-policy mismatch (checkpoint '%s', run '%s')",
        policyName(Policy(Tag)), name());
  StealCount = Steals;
  return "";
}

//===----------------------------------------------------------------------===//
// Policies
//===----------------------------------------------------------------------===//

namespace {

/// splitmix64: the same mixer resilience uses for fault draws; here it
/// keys ws's per-thief victim permutation off (seed, thief, victim).
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// The paper's scheduler, unchanged; exists so rr runs still pay the
/// virtual-call seam the others do (fairness in bench comparisons).
class RrScheduler : public Scheduler {
public:
  explicit RrScheduler(uint64_t Seed) : Scheduler(Policy::Rr, Seed) {}
};

class WsScheduler : public Scheduler {
public:
  explicit WsScheduler(uint64_t Seed) : Scheduler(Policy::Ws, Seed) {}

  bool stealing() const override { return true; }

private:
  /// The seeded per-thief victim permutation, as a rank: the historical
  /// order lists were these keys sorted ascending.
  uint64_t victimKey(int Thief, int Victim) const override {
    return mix64(Seed ^ mix64(uint64_t(Thief) << 32 | uint64_t(Victim)));
  }
};

class LocalityScheduler : public Scheduler {
public:
  explicit LocalityScheduler(uint64_t Seed)
      : Scheduler(Policy::Locality, Seed) {}

  bool stealing() const override { return true; }

  int chooseFailover(const std::vector<int> &Alive, size_t Ordinal,
                     int DeadCore) const override {
    return nearestFailover(*this, Alive, Ordinal, DeadCore);
  }

  /// Migrate to the nearest surviving candidates, round-robin among the
  /// minimal-distance subset so replicas still spread.
  static int nearestFailover(const Scheduler &S, const std::vector<int> &Alive,
                             size_t Ordinal, int DeadCore) {
    if (!S.hop() || Alive.size() < 2)
      return Alive[Ordinal % Alive.size()];
    int Best = INT_MAX;
    for (int Core : Alive)
      Best = std::min(Best, S.hop()(DeadCore, Core));
    std::vector<int> Nearest;
    for (int Core : Alive)
      if (S.hop()(DeadCore, Core) == Best)
        Nearest.push_back(Core);
    return Nearest[Ordinal % Nearest.size()];
  }

private:
  /// Hop distance as the rank: nearest victims first (lowest core id
  /// among equidistant ones). Under a hierarchical topology the hop
  /// metric already folds in cluster and chip crossings, so this
  /// naturally steals within the thief's cluster before reaching across
  /// clusters, and across clusters before crossing chips.
  uint64_t victimKey(int Thief, int Victim) const override {
    return Hop ? uint64_t(Hop(Thief, Victim)) : 0;
  }
};

class DepScheduler : public Scheduler {
public:
  explicit DepScheduler(uint64_t Seed) : Scheduler(Policy::Dep, Seed) {}

  int chooseFailover(const std::vector<int> &Alive, size_t Ordinal,
                     int DeadCore) const override {
    return LocalityScheduler::nearestFailover(*this, Alive, Ordinal, DeadCore);
  }

private:
  /// Follow the CSTG edge: among the destination task's instances, pick
  /// the one homed nearest the producing core, breaking ties with the
  /// sender's round-robin counter so equidistant replicas still share
  /// load. Boot injections (no producing core) fall back to rr.
  size_t pickImpl(const runtime::RouteDest &Dest, int BucketCore,
                  size_t SeedValue, int FromCore) override {
    if (FromCore < 0 || !InstanceCore || !Hop)
      return pickRoundRobin(Dest, BucketCore, SeedValue);
    int Best = INT_MAX;
    for (const auto &[InstanceIdx, Within] : Dest.Instances) {
      (void)Within;
      Best = std::min(Best,
                      Hop(FromCore, (*InstanceCore)[size_t(InstanceIdx)]));
    }
    std::vector<size_t> Nearest;
    for (size_t I = 0; I < Dest.Instances.size(); ++I)
      if (Hop(FromCore,
              (*InstanceCore)[size_t(Dest.Instances[I].first)]) == Best)
        Nearest.push_back(I);
    if (Nearest.size() == 1)
      return Nearest[0];
    uint64_t &C = counter(BucketCore, Dest.Task, SeedValue);
    size_t Pick = Nearest[size_t(C % uint64_t(Nearest.size()))];
    ++C;
    return Pick;
  }
};

} // namespace

std::unique_ptr<Scheduler> makeScheduler(Policy P, uint64_t Seed) {
  switch (P) {
  case Policy::Rr:
    return std::make_unique<RrScheduler>(Seed);
  case Policy::Ws:
    return std::make_unique<WsScheduler>(Seed);
  case Policy::Locality:
    return std::make_unique<LocalityScheduler>(Seed);
  case Policy::Dep:
    return std::make_unique<DepScheduler>(Seed);
  }
  return std::make_unique<RrScheduler>(Seed);
}

} // namespace bamboo::sched
