//===- sched/Scheduler.h - Pluggable deterministic schedulers ---*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling-policy seam of the engine layer (DESIGN.md §3i). The
/// paper's runtime hard-codes one placement rule — per-sender round-robin
/// over a task's replicated instances — and no load balancing at all.
/// This subsystem turns both decisions into a policy object every engine
/// consults, so alternative strategies from the manycore literature
/// (Myrmics-style dependency-aware placement, deterministic
/// work-stealing) can be raced head-to-head on identical programs:
///
///   rr        the paper's behavior, extracted verbatim: per-sender
///             counters seeded with the sender core. Bit-identical to the
///             pre-subsystem engines, including checkpoint counter bytes.
///   ws        rr placement plus deterministic work-stealing: an idle
///             core steals the newest queued invocation from the first
///             victim (in a seeded per-thief permutation) holding two or
///             more ready invocations.
///   locality  rr placement plus stealing with victims visited in
///             ascending RoutingTable/mesh hop distance, so stolen work
///             travels the fewest hops.
///   dep       dependency-driven placement: the routed object follows
///             its CSTG edge to the consumer instance whose current home
///             is nearest the producing core (round-robin among ties);
///             no stealing.
///
/// Every policy is deterministic by construction: decisions are pure
/// functions of (policy, seed, topology, queue state), never of wall
/// clock or host scheduling, so each policy's runs are byte-reproducible
/// across --jobs, under --faults, and across checkpoint restore. The
/// scheduler's state (distribution counters, steal count) is a checkpoint
/// chunk: save/load keep the pre-subsystem round-robin byte format and
/// append a policy tag that restores validate.
///
/// One scheduler instance serves one run. The discrete-event engines own
/// it through exec::EngineCore; the host-thread engine constructs its own
/// (placement decisions only — its worker-owned queues cannot be stolen
/// from without races, so ws/locality degrade to rr placement there).
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SCHED_SCHEDULER_H
#define BAMBOO_SCHED_SCHEDULER_H

#include "resilience/Checkpoint.h"
#include "runtime/RoutingTable.h"
#include "support/CoreSet.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace bamboo::sched {

/// The selectable policies, in --sched spelling order. The numeric values
/// are part of the checkpoint scheduler chunk — do not reorder.
enum class Policy : uint8_t {
  Rr = 0,
  Ws = 1,
  Locality = 2,
  Dep = 3,
};

/// The --sched / serve-protocol spelling ("rr", "ws", "locality", "dep").
const char *policyName(Policy P);

/// Parses a --sched spelling; returns false on an unknown name.
bool parsePolicy(const std::string &Name, Policy &Out);

/// The allowed-set wording every rejection message shares (CLI usage
/// errors, serve protocol errors, --help).
inline const char *policyChoices() { return "'rr', 'ws', 'locality' or 'dep'"; }

/// One run's scheduling policy: instance selection for distributed
/// routing, victim selection for idle-core stealing, and failover
/// placement after a permanent core failure. See the file comment for
/// the four implementations; construct with makeScheduler().
class Scheduler {
public:
  /// Core-distance metric supplied by the engine (mesh Manhattan hops for
  /// the virtual machines — per-level hierarchical hops when a topology
  /// is attached — linear index distance for the host engine).
  using HopFn = std::function<int(int, int)>;

  virtual ~Scheduler();

  Policy policy() const { return Pol; }
  const char *name() const { return policyName(Pol); }
  const HopFn &hop() const { return Hop; }

  /// Invocations stolen so far this run (checkpointed).
  uint64_t steals() const { return StealCount; }
  void noteSteal() { ++StealCount; }

  /// Resets per-run state and binds the run's topology. \p InstanceCore
  /// (not owned; must outlive the run) is the live instance→core map the
  /// engine rewrites on failover, so placement always sees current homes.
  void beginRun(int NumCores, size_t NumTasks,
                const std::vector<int> *InstanceCore, HopFn Hop);

  /// Picks an entry of \p Dest.Instances for a routee produced on
  /// \p FromCore (-1 for the boot injection). \p BucketCore keys the
  /// distribution counter and \p SeedValue seeds a fresh one — the
  /// engines' historical clamping of the boot sender differs (the
  /// discrete-event engines keep a dedicated -1 bucket, the host engine
  /// folds boot into core 0), so both are caller-supplied.
  size_t pickInstance(const runtime::RouteDest &Dest, int BucketCore,
                      size_t SeedValue, int FromCore);

  /// Whether this policy moves queued work between cores at all; engines
  /// skip the steal path (and its wake traffic) entirely when false.
  virtual bool stealing() const { return false; }

  /// Picks a victim for idle \p Thief: among \p Loaded (the engine's
  /// index of cores holding at least two ready invocations — never fewer:
  /// stealing the last would merely relocate the victim's own next
  /// dispatch), the alive core minimizing (victimKey, core id). This is
  /// the same core the historical per-thief sorted victim walk found, at
  /// O(loaded cores) per probe instead of O(all cores) — idle probes on a
  /// mostly-idle machine no longer pay for its size. Returns -1 when
  /// nothing is stealable.
  int chooseVictim(int Thief, const std::vector<char> &CoreAlive,
                   const support::CoreSet &Loaded) const;

  /// Placement of the \p Ordinal-th instance migrating off failed core
  /// \p DeadCore, over the engine's \p Alive candidate list (failover
  /// order, never empty). The rr policy reproduces the historical
  /// round-robin walk bit-for-bit.
  virtual int chooseFailover(const std::vector<int> &Alive, size_t Ordinal,
                             int DeadCore) const;

  //===------------------------------------------------------------------===//
  // Checkpoint chunks
  //===------------------------------------------------------------------===//

  /// The discrete-event engines' scheduler chunk: the distribution
  /// counters in the exact pre-subsystem round-robin byte format,
  /// followed by the policy tag and steal count.
  void save(resilience::ByteWriter &W) const;
  std::string load(resilience::ByteReader &R, size_t BodySize);

  /// The host engine's per-core counter rows, in its historical per-core
  /// byte format (task-keyed; one bucket per call).
  void saveBucket(resilience::ByteWriter &W, int BucketCore) const;
  std::string loadBucket(resilience::ByteReader &R, int BucketCore);

  /// The policy tag + steal count alone (the host engine appends this
  /// once after its per-core rows).
  void savePolicyState(resilience::ByteWriter &W) const;
  std::string loadPolicyState(resilience::ByteReader &R);

protected:
  Scheduler(Policy P, uint64_t Seed) : Pol(P), Seed(Seed) {}

  /// Policy-specific instance selection; the base implements the rr walk.
  virtual size_t pickImpl(const runtime::RouteDest &Dest, int BucketCore,
                          size_t SeedValue, int FromCore);

  /// Victim preference rank for stealing policies: chooseVictim returns
  /// the candidate with the smallest (victimKey, id) pair, reproducing
  /// "first match in the policy's sorted victim order" without ever
  /// materializing the per-thief O(cores^2) order lists. ws keys on a
  /// seeded hash, locality on hop distance (hierarchy-aware when the
  /// machine has a topology: within-cluster victims rank before
  /// cross-cluster, cross-cluster before cross-chip).
  virtual uint64_t victimKey(int Thief, int Victim) const;

  /// The dense distribution-counter table replacing the historical
  /// std::map<(sender, task), counter>: row BucketCore+1 (row 0 is the
  /// boot sender -1), column TaskId, Untouched marking never-seeded
  /// slots. Iterating rows then columns reproduces the map's
  /// lexicographic (sender, task) order, which keeps the checkpoint
  /// chunk byte-identical.
  uint64_t &counter(int BucketCore, int Task, size_t SeedValue);
  size_t pickRoundRobin(const runtime::RouteDest &Dest, int BucketCore,
                        size_t SeedValue);

  static constexpr uint64_t Untouched = ~uint64_t{0};

  Policy Pol;
  uint64_t Seed = 0;
  int NumCores = 0;
  size_t NumTasks = 0;
  const std::vector<int> *InstanceCore = nullptr;
  HopFn Hop;
  uint64_t StealCount = 0;
  std::vector<uint64_t> Counters;
};

/// Constructs the policy's scheduler. \p Seed feeds ws's victim
/// permutation (the engines pass their run seed; the profile-driven
/// simulator, which has none, passes 0).
std::unique_ptr<Scheduler> makeScheduler(Policy P, uint64_t Seed);

} // namespace bamboo::sched

#endif // BAMBOO_SCHED_SCHEDULER_H
