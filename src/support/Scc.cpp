//===- support/Scc.cpp - Strongly connected components --------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Scc.h"

#include <algorithm>
#include <cassert>

using namespace bamboo;

SccResult bamboo::computeSccs(const std::vector<std::vector<int>> &Adj) {
  const int N = static_cast<int>(Adj.size());
  SccResult Result;
  Result.ComponentOf.assign(N, -1);

  std::vector<int> Index(N, -1);
  std::vector<int> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<int> Stack;
  int NextIndex = 0;

  // Explicit DFS frames: (node, next child position).
  struct Frame {
    int Node;
    size_t Child;
  };
  std::vector<Frame> Frames;

  for (int Root = 0; Root < N; ++Root) {
    if (Index[Root] != -1)
      continue;
    Frames.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!Frames.empty()) {
      Frame &Top = Frames.back();
      int V = Top.Node;
      if (Top.Child < Adj[V].size()) {
        int W = Adj[V][Top.Child++];
        assert(W >= 0 && W < N && "edge target out of range");
        if (Index[W] == -1) {
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          Frames.push_back({W, 0});
        } else if (OnStack[W]) {
          LowLink[V] = std::min(LowLink[V], Index[W]);
        }
        continue;
      }

      // All children visited: close the frame.
      if (LowLink[V] == Index[V]) {
        std::vector<int> Members;
        for (;;) {
          int W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Members.push_back(W);
          Result.ComponentOf[W] = static_cast<int>(Result.Components.size());
          if (W == V)
            break;
        }
        std::sort(Members.begin(), Members.end());
        Result.Components.push_back(std::move(Members));
      }
      Frames.pop_back();
      if (!Frames.empty()) {
        int Parent = Frames.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[V]);
      }
    }
  }
  return Result;
}

std::vector<std::vector<int>>
bamboo::buildCondensation(const std::vector<std::vector<int>> &Adj,
                          const SccResult &Sccs) {
  std::vector<std::vector<int>> Dag(Sccs.numComponents());
  for (size_t V = 0; V < Adj.size(); ++V) {
    int CV = Sccs.ComponentOf[V];
    for (int W : Adj[V]) {
      int CW = Sccs.ComponentOf[W];
      if (CV != CW)
        Dag[CV].push_back(CW);
    }
  }
  for (auto &Out : Dag) {
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  }
  return Dag;
}
