//===- support/ThreadPool.h - Fixed-size worker thread pool -----*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with futures-based submission and an
/// order-preserving parallel map. The pool exists so that *drivers* of the
/// deterministic components (candidate evaluation in the synthesis search,
/// bench sweeps) can fan work out across host cores without perturbing
/// results: `map` returns results in submission order regardless of the
/// order workers finish in, and a pool constructed with zero workers runs
/// every job inline on the calling thread, so serial and parallel
/// executions traverse identical code paths.
///
/// Jobs must not submit new jobs to the same pool from a worker thread
/// (no nested submission); all randomness stays with the caller.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_THREADPOOL_H
#define BAMBOO_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bamboo::support {

/// Fixed worker-count thread pool. Zero workers means "run inline": every
/// submitted job executes synchronously on the submitting thread, which
/// makes `ThreadPool(0)` a drop-in serial mode for parallel drivers.
class ThreadPool {
public:
  /// Spawns \p Workers worker threads (0 = inline execution).
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// A sensible default worker count for CPU-bound fan-out.
  static unsigned defaultWorkers() {
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1;
  }

  /// Submits \p F for execution and returns a future for its result. With
  /// zero workers the job runs inline before submit returns.
  template <typename Fn>
  auto submit(Fn F) -> std::future<std::invoke_result_t<Fn &>> {
    using R = std::invoke_result_t<Fn &>;
    auto Task = std::make_shared<std::packaged_task<R()>>(std::move(F));
    std::future<R> Fut = Task->get_future();
    if (Workers.empty())
      (*Task)();
    else
      enqueue([Task] { (*Task)(); });
    return Fut;
  }

  /// Applies \p F to every index in [0, N) and returns the results in
  /// index (= submission) order, independent of worker completion order.
  /// If any job throws, map waits for every job to finish and rethrows
  /// the exception of the lowest-index failing job.
  template <typename Fn>
  auto map(size_t N, Fn F) -> std::vector<std::invoke_result_t<Fn &, size_t>> {
    using R = std::invoke_result_t<Fn &, size_t>;
    static_assert(!std::is_void_v<R>, "map jobs must return a value");
    std::vector<std::future<R>> Futures;
    Futures.reserve(N);
    for (size_t I = 0; I < N; ++I)
      Futures.push_back(submit([&F, I] { return F(I); }));
    std::vector<R> Out;
    Out.reserve(N);
    std::exception_ptr FirstError;
    // Drain every future even after a failure: jobs capture F by
    // reference and must not outlive this frame.
    for (std::future<R> &Fut : Futures) {
      try {
        Out.push_back(Fut.get());
      } catch (...) {
        if (!FirstError)
          FirstError = std::current_exception();
      }
    }
    if (FirstError)
      std::rethrow_exception(FirstError);
    return Out;
  }

private:
  void enqueue(std::function<void()> Job);
  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::deque<std::function<void()>> Queue;
  bool Stopping = false;
};

} // namespace bamboo::support

#endif // BAMBOO_SUPPORT_THREADPOOL_H
