//===- support/Trace.h - Unified execution tracing & metrics ----*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, low-overhead execution-event recorder shared by every
/// engine that "runs" a Bamboo program: the discrete-event TileExecutor,
/// the host-thread ThreadExecutor, and the high-level scheduling simulator
/// (SchedSim). All three emit the same event vocabulary —
///
///   - task begin / end (with exit and ready-queue depth),
///   - object send / deliver (with mesh hops and payload bytes),
///   - lock acquire / retry (the all-or-nothing protocol of Section 4.7),
///   - core idle spans,
///
/// so a simulated run and a real run of the same layout can be aligned
/// event-for-event. That alignment is the measurement behind the paper's
/// Figure 9 claim (the simulator tracks real execution within a few
/// percent): `diffTaskOrder` reports the first point where the simulated
/// task schedule diverges from the real one, instead of forcing the
/// comparison through aggregate cycle counts.
///
/// Exports:
///   - Chrome trace-format JSON (load in about:tracing / Perfetto). The
///     export is byte-deterministic: identical runs produce identical
///     files, which the test suite asserts.
///   - A per-core / per-task metrics rollup (busy %, max ready-queue
///     depth, lock-retry rate, message bytes and hops).
///
/// The shared TraceTask record (one row per simulated task invocation,
/// with dependence arcs) also lives here; the scheduling simulator's
/// critical-path extraction consumes it. Timestamps are engine-defined
/// ticks: virtual cycles for TileExecutor/SchedSim, nanoseconds for
/// ThreadExecutor.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_TRACE_H
#define BAMBOO_SUPPORT_TRACE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bamboo::support {

/// One simulated/executed task invocation with dependence arcs. This is
/// the record the critical-path analysis (optimize/CriticalPath) walks;
/// SchedSim builds it, and it is engine-neutral so other engines can too.
struct TraceTask {
  int Id = -1;
  /// ir::TaskId of the invoked task (plain int: support does not depend
  /// on the IR; ids are dense indices in both worlds).
  int Task = -1;
  /// ir::ExitId of the taken/predicted exit.
  int Exit = -1;
  int Core = 0;
  /// Index of the executing placed instance in the layout (the unit the
  /// optimizer can migrate).
  int InstanceIdx = -1;
  uint64_t Ready = 0; ///< When all inputs had arrived at the core.
  uint64_t Start = 0;
  uint64_t End = 0;
  /// Trace ids of the invocations that produced this invocation's inputs
  /// (-1 for the boot injection), aligned with arrival times.
  std::vector<int> DepIds;
  std::vector<uint64_t> DepArrivals;
};

enum class TraceEventKind : uint8_t {
  TaskBegin,
  TaskEnd,
  Send,
  Deliver,
  LockAcquire,
  LockRetry,
  Idle,
  /// Resilience vocabulary (src/resilience): a fault taking effect, a
  /// dropped transfer being retransmitted, and work moving to a sibling
  /// core after a permanent core failure.
  FaultInject,
  Retransmit,
  Failover,
  /// Checkpoint vocabulary: the single marker a restored run emits at the
  /// restore cycle. Equivalence checks compare trace suffixes after
  /// stripping this one event (it has no counterpart in an uninterrupted
  /// run).
  Resume,
  /// Serve vocabulary (src/serve): the span a worker spends executing one
  /// job-server request. Core holds the worker index, Object the request
  /// id, and Aux (on RequestEnd) whether the request succeeded.
  RequestBegin,
  RequestEnd,
  /// Scheduler vocabulary (src/sched): a stealing policy moving a queued
  /// invocation from an overloaded victim core to an idle thief. Core
  /// holds the thief, Peer the victim, Task the stolen task, Hops the
  /// mesh distance the invocation traveled.
  Steal,
  /// Supervision vocabulary (src/serve): a job being re-run after a
  /// faulted attempt (Aux = attempt number), a job cancelled by the
  /// supervisor (Aux = 0 for a missed deadline, 1 for a hung engine),
  /// and a poison request key entering quarantine. Core holds the
  /// worker, Object the request id, as for RequestBegin/End.
  JobRetry,
  JobTimeout,
  JobQuarantine,
};

/// One recorded event. Fixed-size POD so recording is a vector push.
struct TraceEvent {
  TraceEventKind Kind = TraceEventKind::TaskBegin;
  uint64_t Time = 0; ///< Engine ticks (cycles or ns).
  int32_t Core = -1;
  int32_t Task = -1;   ///< TaskBegin/End, LockAcquire/Retry.
  int32_t Exit = -1;   ///< TaskEnd only.
  int64_t Object = -1; ///< Send/Deliver: object or token id.
  int32_t Peer = -1;   ///< Send: destination core.
  uint32_t Hops = 0;   ///< Send: mesh hops traversed.
  uint32_t Bytes = 0;  ///< Send: payload bytes.
  /// TaskBegin: ready-queue depth behind the dispatched invocation.
  /// LockAcquire: number of parameter locks taken. Idle: span end time
  /// (Time holds the span start). FaultInject: resilience::FaultKind
  /// index. Retransmit: attempt number.
  uint64_t Aux = 0;
};

/// Per-core rollup over one trace.
struct CoreMetrics {
  uint64_t BusyTicks = 0;
  uint64_t IdleTicks = 0;
  uint64_t Tasks = 0;
  uint64_t Sends = 0;
  uint64_t Delivers = 0;
  uint64_t LockAcquires = 0;
  uint64_t LockRetries = 0;
  uint64_t MsgBytes = 0;
  uint64_t MsgHops = 0;
  uint64_t MaxQueueDepth = 0;
  uint64_t Faults = 0;
  uint64_t Retransmits = 0;
  uint64_t Failovers = 0;
  uint64_t Requests = 0; ///< Serve-mode request spans (core = worker).
  uint64_t Steals = 0;   ///< Invocations this core stole (core = thief).
  uint64_t JobRetries = 0;     ///< Supervised re-runs (core = worker).
  uint64_t JobTimeouts = 0;    ///< Deadline/hang cancellations.
  uint64_t JobQuarantines = 0; ///< Poison keys quarantined.
};

/// Per-task rollup over one trace.
struct TaskRollup {
  uint64_t Invocations = 0;
  uint64_t BusyTicks = 0;
};

/// Whole-trace rollup: per-core and per-task aggregates plus totals.
struct TraceMetrics {
  uint64_t TotalTicks = 0; ///< Largest event timestamp.
  std::vector<CoreMetrics> Cores;  ///< Indexed by core id.
  std::vector<TaskRollup> Tasks;   ///< Indexed by task id.

  uint64_t totalTasks() const;
  uint64_t totalSends() const;
  uint64_t totalLockRetries() const;
  uint64_t totalMsgBytes() const;
  uint64_t totalMsgHops() const;
  uint64_t totalFaults() const;
  uint64_t totalRetransmits() const;
  uint64_t totalFailovers() const;
  uint64_t totalRequests() const;
  uint64_t totalSteals() const;
  uint64_t totalJobRetries() const;
  uint64_t totalJobTimeouts() const;
  uint64_t totalJobQuarantines() const;
  /// Busy fraction of (TotalTicks * cores), in [0, 1].
  double busyFraction() const;
  /// Failed acquisition sweeps per dispatch attempt:
  /// retries / (retries + tasks); 0 when idle.
  double lockRetryRate() const;

  /// Human-readable table; \p TaskNames (indexed by task id) may be empty.
  std::string str(const std::vector<std::string> &TaskNames = {}) const;
};

/// Result of aligning two traces' task schedules (e.g. simulated vs real).
struct TraceDiff {
  size_t CountA = 0; ///< TaskBegin events in A.
  size_t CountB = 0; ///< TaskBegin events in B.
  /// Length of the longest common (task, core) prefix of the two
  /// dispatch sequences.
  size_t CommonPrefix = 0;
  /// Mismatches strictly before the divergence point — zero by
  /// construction; reported so callers can assert the alignment is real.
  size_t PreDivergenceMismatches = 0;
  bool Identical = false;
  /// At the first divergence (valid when !Identical and the index is in
  /// range for the respective trace): what each side dispatched.
  int32_t TaskA = -1, CoreA = -1;
  int32_t TaskB = -1, CoreB = -1;
  uint64_t TimeA = 0, TimeB = 0;

  std::string str(const std::vector<std::string> &TaskNames = {}) const;
};

/// The event recorder. Recording is guarded by a mutex so the
/// ThreadExecutor's workers can share one trace; the discrete-event
/// engines pay one uncontended lock per event. Determinism comes from
/// the engines: the discrete-event executors record in event-queue order,
/// and the exporter orders output by (timestamp, recording order).
class Trace {
public:
  Trace() = default;

  /// Non-copyable (events can be large; moves are fine).
  Trace(const Trace &) = delete;
  Trace &operator=(const Trace &) = delete;

  void clear();
  void reserve(size_t N);

  /// Task names indexed by task id, used by the JSON export and the
  /// metrics table. Optional; unnamed tasks print as "task<N>".
  void setTaskNames(std::vector<std::string> Names);
  const std::vector<std::string> &taskNames() const { return TaskNames; }

  // Recording. All record in O(1) amortized.
  void taskBegin(uint64_t Time, int Core, int Task, uint64_t QueueDepth);
  void taskEnd(uint64_t Time, int Core, int Task, int Exit);
  void send(uint64_t Time, int FromCore, int ToCore, int64_t ObjectId,
            uint32_t Hops, uint32_t Bytes);
  void deliver(uint64_t Time, int Core, int64_t ObjectId);
  void lockAcquire(uint64_t Time, int Core, int Task, uint64_t NumLocks);
  void lockRetry(uint64_t Time, int Core, int Task);
  /// Records that \p Core sat idle over [Start, End).
  void idle(uint64_t Start, uint64_t End, int Core);
  /// Records a fault of resilience::FaultKind index \p FaultKind taking
  /// effect on \p Core (ObjectId -1 for core faults).
  void faultInject(uint64_t Time, int Core, int FaultKind, int64_t ObjectId);
  /// Records retransmission attempt \p Attempt of a dropped transfer.
  void retransmit(uint64_t Time, int FromCore, int ToCore, int64_t ObjectId,
                  uint64_t Attempt);
  /// Records work (a delivery or migrated instance) moving from a failed
  /// core to its failover sibling.
  void failover(uint64_t Time, int FromCore, int ToCore, int64_t ObjectId);
  /// Records the resume marker of a run restored from a checkpoint taken
  /// at virtual time \p Time. Exactly one per restored run, first event.
  void resume(uint64_t Time);
  /// Records serve-mode worker \p Worker starting request \p RequestId.
  /// Timestamps are microseconds since server start (wall clock — the
  /// serve layer has no virtual time).
  void requestBegin(uint64_t Time, int Worker, int64_t RequestId);
  /// Records the matching end; \p Ok is whether execution succeeded.
  void requestEnd(uint64_t Time, int Worker, int64_t RequestId, bool Ok);
  /// Records a stealing scheduler moving a queued invocation of \p Task
  /// from \p Victim to idle \p Thief over \p Hops mesh hops.
  void steal(uint64_t Time, int Thief, int Victim, int Task, uint32_t Hops);
  /// Records supervised re-run number \p Attempt (1-based) of request
  /// \p RequestId on serve worker \p Worker.
  void jobRetry(uint64_t Time, int Worker, int64_t RequestId,
                uint64_t Attempt);
  /// Records the supervisor cancelling request \p RequestId; \p Hung
  /// distinguishes a stalled engine (watchdog) from a missed deadline.
  void jobTimeout(uint64_t Time, int Worker, int64_t RequestId, bool Hung);
  /// Records request \p RequestId's (app, args, seed) key entering
  /// quarantine after exhausting its retries.
  void jobQuarantine(uint64_t Time, int Worker, int64_t RequestId);

  /// Snapshot of the recorded events, in recording order.
  const std::vector<TraceEvent> &events() const { return Events; }
  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }

  /// Chrome trace-format JSON ({"traceEvents": [...]}), byte-deterministic
  /// for a given event sequence: events are emitted in stable (timestamp,
  /// recording order) order so timestamps are monotone in the file.
  std::string toChromeJson() const;

  /// Computes the per-core / per-task rollup.
  TraceMetrics metrics() const;

private:
  mutable std::mutex M;
  std::vector<TraceEvent> Events;
  std::vector<std::string> TaskNames;

  void record(const TraceEvent &E);
};

/// Aligns the task-dispatch sequences (TaskBegin events) of \p A and \p B
/// and reports the first divergence. Two dispatches match when they agree
/// on (task, core); timestamps are not compared (the engines' clocks
/// differ by design).
TraceDiff diffTaskOrder(const Trace &A, const Trace &B);

} // namespace bamboo::support

#endif // BAMBOO_SUPPORT_TRACE_H
