//===- support/Signal.cpp - Process-wide stop request ---------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Signal.h"

#include <csignal>

namespace bamboo::support {

namespace {

std::atomic<bool> StopFlag{false};
std::atomic<int> StopSig{0};

void onStopSignal(int Sig) {
  // Async-signal-safe: store only. Everything else happens on the
  // polling side (engine loops, the serve drain monitor).
  StopSig.store(Sig, std::memory_order_relaxed);
  StopFlag.store(true, std::memory_order_release);
}

} // namespace

void installStopHandlers() {
  struct sigaction SA = {};
  SA.sa_handler = onStopSignal;
  sigemptyset(&SA.sa_mask);
  // No SA_RESTART: a server blocked in accept/poll should see EINTR and
  // notice the flag promptly.
  SA.sa_flags = 0;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

const std::atomic<bool> *stopFlag() { return &StopFlag; }

bool stopRequested() { return StopFlag.load(std::memory_order_acquire); }

int stopSignal() { return StopSig.load(std::memory_order_relaxed); }

void clearStopRequest() {
  StopSig.store(0, std::memory_order_relaxed);
  StopFlag.store(false, std::memory_order_release);
}

} // namespace bamboo::support
