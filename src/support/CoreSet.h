//===- support/CoreSet.h - Dense integer set over core ids ------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-level bitmap set over a fixed universe [0, N) of core ids. The
/// engine cores keep one of these per interesting predicate (idle, ready
/// work queued, steal-eligible, ...) so the per-event bookkeeping that
/// used to scan every core — wake probing, steal-victim surveys, failover
/// target searches — walks only the members.
///
/// Operations: O(1) insert/erase/contains/size; first()/next() ascending
/// iteration at one popcount-guided word probe per 64-id block, with a
/// summary bitmap skipping empty blocks. Ascending order matters: the
/// engines' wake loops must visit cores in increasing id order to keep
/// event sequence numbers — and therefore entire runs — byte-identical
/// to the historical full scans.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_CORESET_H
#define BAMBOO_SUPPORT_CORESET_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace bamboo::support {

/// Set of integers in [0, universe). Membership is a two-level bitmap:
/// one bit per id, plus a summary bit per 64-id word so iteration skips
/// empty regions without touching them.
class CoreSet {
public:
  CoreSet() = default;

  /// Resets to an empty set over [0, \p Universe).
  void reset(int Universe) {
    assert(Universe >= 0 && "negative universe");
    N = Universe;
    Words.assign((static_cast<size_t>(N) + 63) / 64, 0);
    Summary.assign((Words.size() + 63) / 64, 0);
    Count = 0;
  }

  int universe() const { return N; }
  int size() const { return Count; }
  bool empty() const { return Count == 0; }

  bool contains(int Id) const {
    assert(Id >= 0 && Id < N && "id out of universe");
    return (Words[static_cast<size_t>(Id) / 64] >> (Id % 64)) & 1u;
  }

  /// Inserts \p Id; no-op if already present.
  void insert(int Id) {
    assert(Id >= 0 && Id < N && "id out of universe");
    uint64_t &W = Words[static_cast<size_t>(Id) / 64];
    uint64_t Bit = uint64_t(1) << (Id % 64);
    if (W & Bit)
      return;
    W |= Bit;
    Summary[static_cast<size_t>(Id) / 64 / 64] |=
        uint64_t(1) << ((static_cast<size_t>(Id) / 64) % 64);
    ++Count;
  }

  /// Erases \p Id; no-op if absent.
  void erase(int Id) {
    assert(Id >= 0 && Id < N && "id out of universe");
    size_t WordIdx = static_cast<size_t>(Id) / 64;
    uint64_t &W = Words[WordIdx];
    uint64_t Bit = uint64_t(1) << (Id % 64);
    if (!(W & Bit))
      return;
    W &= ~Bit;
    if (W == 0)
      Summary[WordIdx / 64] &= ~(uint64_t(1) << (WordIdx % 64));
    --Count;
  }

  /// Adds or removes \p Id according to \p Member.
  void set(int Id, bool Member) {
    if (Member)
      insert(Id);
    else
      erase(Id);
  }

  /// Smallest member, or -1 when empty.
  int first() const { return scanFrom(0); }

  /// Smallest member strictly greater than \p Id, or -1. Together with
  /// first() this iterates in ascending order:
  ///   for (int C = S.first(); C >= 0; C = S.next(C)) ...
  int next(int Id) const {
    assert(Id >= 0 && "next() takes a current member or probe point");
    if (Id + 1 >= N)
      return -1;
    return scanFrom(Id + 1);
  }

private:
  /// Smallest member >= From, or -1.
  int scanFrom(int From) const {
    if (Count == 0 || From >= N)
      return -1;
    size_t WordIdx = static_cast<size_t>(From) / 64;
    // Tail of the starting word.
    uint64_t W = Words[WordIdx] & (~uint64_t(0) << (From % 64));
    if (W)
      return static_cast<int>(WordIdx * 64) + ctz(W);
    // Summary-guided scan of later words.
    size_t SumIdx = WordIdx / 64;
    uint64_t S = Summary[SumIdx] &
                 ((WordIdx % 64) == 63 ? 0
                                       : (~uint64_t(0) << (WordIdx % 64 + 1)));
    while (true) {
      while (S) {
        size_t Probe = SumIdx * 64 + static_cast<size_t>(ctz(S));
        if (Words[Probe])
          return static_cast<int>(Probe * 64) + ctz(Words[Probe]);
        S &= S - 1;
      }
      if (++SumIdx >= Summary.size())
        return -1;
      S = Summary[SumIdx];
    }
  }

  static int ctz(uint64_t V) {
    assert(V != 0 && "ctz of zero");
    return __builtin_ctzll(V);
  }

  int N = 0;
  int Count = 0;
  std::vector<uint64_t> Words;   ///< Membership, bit per id.
  std::vector<uint64_t> Summary; ///< Bit per Words entry that is nonzero.
};

} // namespace bamboo::support

#endif // BAMBOO_SUPPORT_CORESET_H
