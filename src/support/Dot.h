//===- support/Dot.h - Graphviz DOT emission --------------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal Graphviz DOT writer used to dump abstract state transition
/// graphs, combined state transition graphs (Figure 3), task-flow diagrams
/// (Figure 8), and execution traces (Figure 6).
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_DOT_H
#define BAMBOO_SUPPORT_DOT_H

#include <string>
#include <vector>

namespace bamboo {

/// Incrementally builds a DOT digraph. Node and edge attributes are passed
/// as preformatted key=value pairs; string values are escaped by the writer.
class DotWriter {
public:
  explicit DotWriter(std::string GraphName);

  /// Adds a node with the given identifier and display label. Extra
  /// attributes are appended verbatim (e.g. "shape=box").
  void addNode(const std::string &Id, const std::string &Label,
               const std::string &ExtraAttrs = "");

  /// Adds a directed edge. Extra attributes are appended verbatim
  /// (e.g. "style=dashed").
  void addEdge(const std::string &From, const std::string &To,
               const std::string &Label = "",
               const std::string &ExtraAttrs = "");

  /// Opens a labeled cluster subgraph; nodes added until the matching
  /// endCluster belong to it.
  void beginCluster(const std::string &Id, const std::string &Label);
  void endCluster();

  /// Renders the accumulated graph as DOT text.
  std::string str() const;

  /// Escapes a string for use inside a double-quoted DOT attribute.
  static std::string escape(const std::string &Raw);

private:
  std::string Name;
  std::vector<std::string> Lines;
  int ClusterDepth = 0;

  std::string indent() const;
};

} // namespace bamboo

#endif // BAMBOO_SUPPORT_DOT_H
