//===- support/Parse.h - Strict numeric parsing -----------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked decimal parsing for everything that crosses a trust boundary:
/// CLI flag values and serve-protocol fields. Unlike atoi/strtoull, these
/// reject empty strings, signs, leading/trailing junk ("12x", " 3"), and
/// overflow, so a typo is a hard error instead of a silent zero.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_PARSE_H
#define BAMBOO_SUPPORT_PARSE_H

#include <cstdint>
#include <string>

namespace bamboo::support {

/// Parses \p Text as a non-negative decimal integer. The entire string
/// must be digits (no sign, whitespace, hex, or exponent) and the value
/// must fit uint64_t. Returns false otherwise, leaving \p Out untouched.
bool parseU64(const std::string &Text, uint64_t &Out);

/// Same, additionally requiring Min <= value <= Max. Negative numbers are
/// rejected by construction (a leading '-' is not a digit).
bool parseBoundedInt(const std::string &Text, int64_t Min, int64_t Max,
                     int64_t &Out);

} // namespace bamboo::support

#endif // BAMBOO_SUPPORT_PARSE_H
