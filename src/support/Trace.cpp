//===- support/Trace.cpp - Unified execution tracing & metrics ------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Format.h"

#include <algorithm>
#include <numeric>

using namespace bamboo;
using namespace bamboo::support;

//===----------------------------------------------------------------------===//
// Recording
//===----------------------------------------------------------------------===//

void Trace::clear() {
  std::lock_guard<std::mutex> Guard(M);
  Events.clear();
}

void Trace::reserve(size_t N) {
  std::lock_guard<std::mutex> Guard(M);
  Events.reserve(N);
}

void Trace::setTaskNames(std::vector<std::string> Names) {
  std::lock_guard<std::mutex> Guard(M);
  TaskNames = std::move(Names);
}

void Trace::record(const TraceEvent &E) {
  std::lock_guard<std::mutex> Guard(M);
  Events.push_back(E);
}

void Trace::taskBegin(uint64_t Time, int Core, int Task,
                      uint64_t QueueDepth) {
  TraceEvent E;
  E.Kind = TraceEventKind::TaskBegin;
  E.Time = Time;
  E.Core = Core;
  E.Task = Task;
  E.Aux = QueueDepth;
  record(E);
}

void Trace::taskEnd(uint64_t Time, int Core, int Task, int Exit) {
  TraceEvent E;
  E.Kind = TraceEventKind::TaskEnd;
  E.Time = Time;
  E.Core = Core;
  E.Task = Task;
  E.Exit = Exit;
  record(E);
}

void Trace::send(uint64_t Time, int FromCore, int ToCore, int64_t ObjectId,
                 uint32_t Hops, uint32_t Bytes) {
  TraceEvent E;
  E.Kind = TraceEventKind::Send;
  E.Time = Time;
  E.Core = FromCore;
  E.Peer = ToCore;
  E.Object = ObjectId;
  E.Hops = Hops;
  E.Bytes = Bytes;
  record(E);
}

void Trace::deliver(uint64_t Time, int Core, int64_t ObjectId) {
  TraceEvent E;
  E.Kind = TraceEventKind::Deliver;
  E.Time = Time;
  E.Core = Core;
  E.Object = ObjectId;
  record(E);
}

void Trace::lockAcquire(uint64_t Time, int Core, int Task,
                        uint64_t NumLocks) {
  TraceEvent E;
  E.Kind = TraceEventKind::LockAcquire;
  E.Time = Time;
  E.Core = Core;
  E.Task = Task;
  E.Aux = NumLocks;
  record(E);
}

void Trace::lockRetry(uint64_t Time, int Core, int Task) {
  TraceEvent E;
  E.Kind = TraceEventKind::LockRetry;
  E.Time = Time;
  E.Core = Core;
  E.Task = Task;
  record(E);
}

void Trace::idle(uint64_t Start, uint64_t End, int Core) {
  if (End <= Start)
    return;
  TraceEvent E;
  E.Kind = TraceEventKind::Idle;
  E.Time = Start;
  E.Core = Core;
  E.Aux = End;
  record(E);
}

void Trace::faultInject(uint64_t Time, int Core, int FaultKind,
                        int64_t ObjectId) {
  TraceEvent E;
  E.Kind = TraceEventKind::FaultInject;
  E.Time = Time;
  E.Core = Core;
  E.Object = ObjectId;
  E.Aux = static_cast<uint64_t>(FaultKind);
  record(E);
}

void Trace::retransmit(uint64_t Time, int FromCore, int ToCore,
                       int64_t ObjectId, uint64_t Attempt) {
  TraceEvent E;
  E.Kind = TraceEventKind::Retransmit;
  E.Time = Time;
  E.Core = FromCore;
  E.Peer = ToCore;
  E.Object = ObjectId;
  E.Aux = Attempt;
  record(E);
}

void Trace::failover(uint64_t Time, int FromCore, int ToCore,
                     int64_t ObjectId) {
  TraceEvent E;
  E.Kind = TraceEventKind::Failover;
  E.Time = Time;
  E.Core = FromCore;
  E.Peer = ToCore;
  E.Object = ObjectId;
  record(E);
}

void Trace::resume(uint64_t Time) {
  TraceEvent E;
  E.Kind = TraceEventKind::Resume;
  E.Time = Time;
  E.Core = 0;
  record(E);
}

void Trace::requestBegin(uint64_t Time, int Worker, int64_t RequestId) {
  TraceEvent E;
  E.Kind = TraceEventKind::RequestBegin;
  E.Time = Time;
  E.Core = Worker;
  E.Object = RequestId;
  record(E);
}

void Trace::requestEnd(uint64_t Time, int Worker, int64_t RequestId,
                       bool Ok) {
  TraceEvent E;
  E.Kind = TraceEventKind::RequestEnd;
  E.Time = Time;
  E.Core = Worker;
  E.Object = RequestId;
  E.Aux = Ok ? 1 : 0;
  record(E);
}

void Trace::steal(uint64_t Time, int Thief, int Victim, int Task,
                  uint32_t Hops) {
  TraceEvent E;
  E.Kind = TraceEventKind::Steal;
  E.Time = Time;
  E.Core = Thief;
  E.Peer = Victim;
  E.Task = Task;
  E.Hops = Hops;
  record(E);
}

void Trace::jobRetry(uint64_t Time, int Worker, int64_t RequestId,
                     uint64_t Attempt) {
  TraceEvent E;
  E.Kind = TraceEventKind::JobRetry;
  E.Time = Time;
  E.Core = Worker;
  E.Object = RequestId;
  E.Aux = Attempt;
  record(E);
}

void Trace::jobTimeout(uint64_t Time, int Worker, int64_t RequestId,
                       bool Hung) {
  TraceEvent E;
  E.Kind = TraceEventKind::JobTimeout;
  E.Time = Time;
  E.Core = Worker;
  E.Object = RequestId;
  E.Aux = Hung ? 1 : 0;
  record(E);
}

void Trace::jobQuarantine(uint64_t Time, int Worker, int64_t RequestId) {
  TraceEvent E;
  E.Kind = TraceEventKind::JobQuarantine;
  E.Time = Time;
  E.Core = Worker;
  E.Object = RequestId;
  record(E);
}

//===----------------------------------------------------------------------===//
// Chrome trace export
//===----------------------------------------------------------------------===//

namespace {

/// Minimal JSON string escaping (task names are identifiers, but the
/// exporter must never produce invalid JSON).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

std::string taskName(const std::vector<std::string> &Names, int Task) {
  if (Task >= 0 && static_cast<size_t>(Task) < Names.size())
    return jsonEscape(Names[static_cast<size_t>(Task)]);
  return formatString("task%d", Task);
}

/// Indexed by the resilience::FaultKind value carried in FaultInject's Aux
/// (mirrors resilience/FaultPlan.h; support cannot depend on resilience).
const char *faultName(uint64_t Kind) {
  static const char *Names[] = {"drop", "dup", "delay", "stall", "fail",
                                "lock"};
  return Kind < sizeof(Names) / sizeof(Names[0]) ? Names[Kind] : "fault";
}

} // namespace

std::string Trace::toChromeJson() const {
  std::vector<TraceEvent> Sorted;
  std::vector<std::string> Names;
  {
    std::lock_guard<std::mutex> Guard(M);
    Sorted = Events;
    Names = TaskNames;
  }
  // Stable order by timestamp: recording order breaks ties, so identical
  // runs serialize identically and timestamps are monotone in the file.
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.Time < B.Time;
                   });

  std::string Out;
  Out.reserve(Sorted.size() * 96 + 64);
  Out += "{\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Sorted) {
    if (!First)
      Out += ",\n";
    First = false;
    unsigned long long Ts = E.Time;
    int Tid = E.Core;
    switch (E.Kind) {
    case TraceEventKind::TaskBegin:
      Out += formatString("{\"name\":\"%s\",\"cat\":\"task\",\"ph\":\"B\","
                          "\"pid\":0,\"tid\":%d,\"ts\":%llu,"
                          "\"args\":{\"queue\":%llu}}",
                          taskName(Names, E.Task).c_str(), Tid, Ts,
                          static_cast<unsigned long long>(E.Aux));
      break;
    case TraceEventKind::TaskEnd:
      Out += formatString("{\"name\":\"%s\",\"cat\":\"task\",\"ph\":\"E\","
                          "\"pid\":0,\"tid\":%d,\"ts\":%llu,"
                          "\"args\":{\"exit\":%d}}",
                          taskName(Names, E.Task).c_str(), Tid, Ts, E.Exit);
      break;
    case TraceEventKind::Send:
      Out += formatString("{\"name\":\"send\",\"cat\":\"msg\",\"ph\":\"i\","
                          "\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%llu,"
                          "\"args\":{\"obj\":%lld,\"to\":%d,\"hops\":%u,"
                          "\"bytes\":%u}}",
                          Tid, Ts, static_cast<long long>(E.Object), E.Peer,
                          E.Hops, E.Bytes);
      break;
    case TraceEventKind::Deliver:
      Out += formatString("{\"name\":\"deliver\",\"cat\":\"msg\","
                          "\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{\"obj\":%lld}}",
                          Tid, Ts, static_cast<long long>(E.Object));
      break;
    case TraceEventKind::LockAcquire:
      Out += formatString("{\"name\":\"lock\",\"cat\":\"lock\","
                          "\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{\"task\":\"%s\","
                          "\"locks\":%llu}}",
                          Tid, Ts, taskName(Names, E.Task).c_str(),
                          static_cast<unsigned long long>(E.Aux));
      break;
    case TraceEventKind::LockRetry:
      Out += formatString("{\"name\":\"lock-retry\",\"cat\":\"lock\","
                          "\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{\"task\":\"%s\"}}",
                          Tid, Ts, taskName(Names, E.Task).c_str());
      break;
    case TraceEventKind::Idle:
      Out += formatString("{\"name\":\"idle\",\"cat\":\"core\","
                          "\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%llu,"
                          "\"dur\":%llu,\"args\":{}}",
                          Tid, Ts,
                          static_cast<unsigned long long>(E.Aux - E.Time));
      break;
    case TraceEventKind::FaultInject:
      Out += formatString("{\"name\":\"fault-%s\",\"cat\":\"fault\","
                          "\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{\"obj\":%lld}}",
                          faultName(E.Aux), Tid, Ts,
                          static_cast<long long>(E.Object));
      break;
    case TraceEventKind::Retransmit:
      Out += formatString("{\"name\":\"retransmit\",\"cat\":\"fault\","
                          "\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{\"obj\":%lld,\"to\":%d,"
                          "\"attempt\":%llu}}",
                          Tid, Ts, static_cast<long long>(E.Object), E.Peer,
                          static_cast<unsigned long long>(E.Aux));
      break;
    case TraceEventKind::Failover:
      Out += formatString("{\"name\":\"failover\",\"cat\":\"fault\","
                          "\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{\"obj\":%lld,\"to\":%d}}",
                          Tid, Ts, static_cast<long long>(E.Object), E.Peer);
      break;
    case TraceEventKind::Resume:
      Out += formatString("{\"name\":\"resume\",\"cat\":\"checkpoint\","
                          "\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{}}",
                          Tid, Ts);
      break;
    case TraceEventKind::RequestBegin:
      Out += formatString("{\"name\":\"request %lld\",\"cat\":\"serve\","
                          "\"ph\":\"B\",\"pid\":0,\"tid\":%d,\"ts\":%llu,"
                          "\"args\":{\"req\":%lld}}",
                          static_cast<long long>(E.Object), Tid, Ts,
                          static_cast<long long>(E.Object));
      break;
    case TraceEventKind::RequestEnd:
      Out += formatString("{\"name\":\"request %lld\",\"cat\":\"serve\","
                          "\"ph\":\"E\",\"pid\":0,\"tid\":%d,\"ts\":%llu,"
                          "\"args\":{\"req\":%lld,\"ok\":%llu}}",
                          static_cast<long long>(E.Object), Tid, Ts,
                          static_cast<long long>(E.Object),
                          static_cast<unsigned long long>(E.Aux));
      break;
    case TraceEventKind::Steal:
      Out += formatString("{\"name\":\"steal %s\",\"cat\":\"sched\","
                          "\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{\"from\":%d,\"hops\":%u}}",
                          taskName(Names, E.Task).c_str(), Tid, Ts, E.Peer,
                          E.Hops);
      break;
    case TraceEventKind::JobRetry:
      Out += formatString("{\"name\":\"retry %lld\",\"cat\":\"serve\","
                          "\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{\"req\":%lld,"
                          "\"attempt\":%llu}}",
                          static_cast<long long>(E.Object), Tid, Ts,
                          static_cast<long long>(E.Object),
                          static_cast<unsigned long long>(E.Aux));
      break;
    case TraceEventKind::JobTimeout:
      Out += formatString("{\"name\":\"%s %lld\",\"cat\":\"serve\","
                          "\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{\"req\":%lld}}",
                          E.Aux ? "hung" : "deadline",
                          static_cast<long long>(E.Object), Tid, Ts,
                          static_cast<long long>(E.Object));
      break;
    case TraceEventKind::JobQuarantine:
      Out += formatString("{\"name\":\"quarantine %lld\",\"cat\":\"serve\","
                          "\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%llu,\"args\":{\"req\":%lld}}",
                          static_cast<long long>(E.Object), Tid, Ts,
                          static_cast<long long>(E.Object));
      break;
    }
  }
  Out += "],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Metrics rollup
//===----------------------------------------------------------------------===//

uint64_t TraceMetrics::totalTasks() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.Tasks;
                         });
}

uint64_t TraceMetrics::totalSends() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.Sends;
                         });
}

uint64_t TraceMetrics::totalLockRetries() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.LockRetries;
                         });
}

uint64_t TraceMetrics::totalMsgBytes() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.MsgBytes;
                         });
}

uint64_t TraceMetrics::totalMsgHops() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.MsgHops;
                         });
}

uint64_t TraceMetrics::totalFaults() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.Faults;
                         });
}

uint64_t TraceMetrics::totalRetransmits() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.Retransmits;
                         });
}

uint64_t TraceMetrics::totalFailovers() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.Failovers;
                         });
}

uint64_t TraceMetrics::totalRequests() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.Requests;
                         });
}

uint64_t TraceMetrics::totalSteals() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.Steals;
                         });
}

uint64_t TraceMetrics::totalJobRetries() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.JobRetries;
                         });
}

uint64_t TraceMetrics::totalJobTimeouts() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.JobTimeouts;
                         });
}

uint64_t TraceMetrics::totalJobQuarantines() const {
  return std::accumulate(Cores.begin(), Cores.end(), uint64_t{0},
                         [](uint64_t S, const CoreMetrics &C) {
                           return S + C.JobQuarantines;
                         });
}

double TraceMetrics::busyFraction() const {
  if (TotalTicks == 0 || Cores.empty())
    return 0.0;
  uint64_t Busy = 0;
  for (const CoreMetrics &C : Cores)
    Busy += C.BusyTicks;
  return static_cast<double>(Busy) /
         (static_cast<double>(TotalTicks) *
          static_cast<double>(Cores.size()));
}

double TraceMetrics::lockRetryRate() const {
  uint64_t Retries = totalLockRetries();
  uint64_t Attempts = Retries + totalTasks();
  return Attempts ? static_cast<double>(Retries) /
                        static_cast<double>(Attempts)
                  : 0.0;
}

std::string
TraceMetrics::str(const std::vector<std::string> &TaskNames) const {
  std::string Out;
  Out += formatString("trace metrics: %llu ticks, %llu tasks, %llu sends "
                      "(%llu bytes, %llu hops), busy %.1f%%, lock-retry "
                      "rate %.3f\n",
                      static_cast<unsigned long long>(TotalTicks),
                      static_cast<unsigned long long>(totalTasks()),
                      static_cast<unsigned long long>(totalSends()),
                      static_cast<unsigned long long>(totalMsgBytes()),
                      static_cast<unsigned long long>(totalMsgHops()),
                      busyFraction() * 100.0, lockRetryRate());
  // Only fault-injected runs grow the extra summary line, so fault-free
  // metrics output stays byte-identical to earlier releases.
  if (totalFaults() + totalRetransmits() + totalFailovers() > 0)
    Out += formatString(
        "resilience: %llu faults injected, %llu retransmits, %llu "
        "failovers\n",
        static_cast<unsigned long long>(totalFaults()),
        static_cast<unsigned long long>(totalRetransmits()),
        static_cast<unsigned long long>(totalFailovers()));
  // Likewise, only serve-mode traces report request spans.
  if (totalRequests() > 0)
    Out += formatString("serve: %llu requests\n",
                        static_cast<unsigned long long>(totalRequests()));
  // Supervision events only appear on chaos/deadline-bearing serve runs,
  // so unsupervised serve output stays byte-identical.
  if (totalJobRetries() + totalJobTimeouts() + totalJobQuarantines() > 0)
    Out += formatString(
        "supervision: %llu retries, %llu timeouts, %llu quarantines\n",
        static_cast<unsigned long long>(totalJobRetries()),
        static_cast<unsigned long long>(totalJobTimeouts()),
        static_cast<unsigned long long>(totalJobQuarantines()));
  // And only stealing schedulers report steals, so rr output is unchanged.
  if (totalSteals() > 0)
    Out += formatString("sched: %llu steals\n",
                        static_cast<unsigned long long>(totalSteals()));
  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"core", "busy%", "tasks", "sends", "delivers", "retries",
                  "maxqueue", "bytes", "hops"});
  for (size_t C = 0; C < Cores.size(); ++C) {
    const CoreMetrics &CM = Cores[C];
    if (CM.Tasks == 0 && CM.Sends == 0 && CM.Delivers == 0)
      continue;
    double BusyPct =
        TotalTicks ? 100.0 * static_cast<double>(CM.BusyTicks) /
                         static_cast<double>(TotalTicks)
                   : 0.0;
    Rows.push_back(
        {formatString("%zu", C), formatString("%.1f", BusyPct),
         formatString("%llu", static_cast<unsigned long long>(CM.Tasks)),
         formatString("%llu", static_cast<unsigned long long>(CM.Sends)),
         formatString("%llu", static_cast<unsigned long long>(CM.Delivers)),
         formatString("%llu",
                      static_cast<unsigned long long>(CM.LockRetries)),
         formatString("%llu",
                      static_cast<unsigned long long>(CM.MaxQueueDepth)),
         formatString("%llu", static_cast<unsigned long long>(CM.MsgBytes)),
         formatString("%llu",
                      static_cast<unsigned long long>(CM.MsgHops))});
  }
  Out += renderTable(Rows);
  Rows.clear();
  Rows.push_back({"task", "invocations", "busy ticks"});
  for (size_t T = 0; T < Tasks.size(); ++T) {
    if (Tasks[T].Invocations == 0)
      continue;
    std::string Name = T < TaskNames.size() ? TaskNames[T]
                                            : formatString("task%zu", T);
    Rows.push_back(
        {Name,
         formatString("%llu",
                      static_cast<unsigned long long>(Tasks[T].Invocations)),
         formatString("%llu",
                      static_cast<unsigned long long>(Tasks[T].BusyTicks))});
  }
  if (Rows.size() > 1)
    Out += renderTable(Rows);
  return Out;
}

TraceMetrics Trace::metrics() const {
  std::vector<TraceEvent> Snapshot;
  {
    std::lock_guard<std::mutex> Guard(M);
    Snapshot = Events;
  }
  TraceMetrics Out;
  auto CoreOf = [&Out](int Core) -> CoreMetrics & {
    size_t Idx = Core >= 0 ? static_cast<size_t>(Core) : 0;
    if (Out.Cores.size() <= Idx)
      Out.Cores.resize(Idx + 1);
    return Out.Cores[Idx];
  };
  auto TaskOf = [&Out](int Task) -> TaskRollup & {
    size_t Idx = Task >= 0 ? static_cast<size_t>(Task) : 0;
    if (Out.Tasks.size() <= Idx)
      Out.Tasks.resize(Idx + 1);
    return Out.Tasks[Idx];
  };
  // Open TaskBegin per core, for pairing with the matching TaskEnd. The
  // engines run one task at a time per core, so a single slot suffices.
  std::vector<uint64_t> OpenBegin;
  auto OpenOf = [&OpenBegin](int Core) -> uint64_t & {
    size_t Idx = Core >= 0 ? static_cast<size_t>(Core) : 0;
    if (OpenBegin.size() <= Idx)
      OpenBegin.resize(Idx + 1, UINT64_MAX);
    return OpenBegin[Idx];
  };

  for (const TraceEvent &E : Snapshot) {
    Out.TotalTicks = std::max(
        Out.TotalTicks,
        E.Kind == TraceEventKind::Idle ? E.Aux : E.Time);
    CoreMetrics &CM = CoreOf(E.Core);
    switch (E.Kind) {
    case TraceEventKind::TaskBegin:
      ++CM.Tasks;
      CM.MaxQueueDepth = std::max(CM.MaxQueueDepth, E.Aux);
      OpenOf(E.Core) = E.Time;
      ++TaskOf(E.Task).Invocations;
      break;
    case TraceEventKind::TaskEnd: {
      uint64_t &Open = OpenOf(E.Core);
      if (Open != UINT64_MAX && E.Time >= Open) {
        CM.BusyTicks += E.Time - Open;
        TaskOf(E.Task).BusyTicks += E.Time - Open;
        Open = UINT64_MAX;
      }
      break;
    }
    case TraceEventKind::Send:
      ++CM.Sends;
      CM.MsgBytes += E.Bytes;
      CM.MsgHops += E.Hops;
      break;
    case TraceEventKind::Deliver:
      ++CM.Delivers;
      break;
    case TraceEventKind::LockAcquire:
      ++CM.LockAcquires;
      break;
    case TraceEventKind::LockRetry:
      ++CM.LockRetries;
      break;
    case TraceEventKind::Idle:
      CM.IdleTicks += E.Aux - E.Time;
      break;
    case TraceEventKind::FaultInject:
      ++CM.Faults;
      break;
    case TraceEventKind::Retransmit:
      ++CM.Retransmits;
      break;
    case TraceEventKind::Failover:
      ++CM.Failovers;
      break;
    case TraceEventKind::Resume:
      break;
    case TraceEventKind::RequestBegin:
      ++CM.Requests;
      break;
    case TraceEventKind::RequestEnd:
      break;
    case TraceEventKind::Steal:
      ++CM.Steals;
      break;
    case TraceEventKind::JobRetry:
      ++CM.JobRetries;
      break;
    case TraceEventKind::JobTimeout:
      ++CM.JobTimeouts;
      break;
    case TraceEventKind::JobQuarantine:
      ++CM.JobQuarantines;
      break;
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Trace alignment (sim vs real)
//===----------------------------------------------------------------------===//

TraceDiff bamboo::support::diffTaskOrder(const Trace &A, const Trace &B) {
  auto Begins = [](const Trace &T) {
    std::vector<const TraceEvent *> Out;
    for (const TraceEvent &E : T.events())
      if (E.Kind == TraceEventKind::TaskBegin)
        Out.push_back(&E);
    return Out;
  };
  std::vector<const TraceEvent *> EA = Begins(A), EB = Begins(B);

  TraceDiff D;
  D.CountA = EA.size();
  D.CountB = EB.size();
  size_t N = std::min(EA.size(), EB.size());
  size_t I = 0;
  while (I < N && EA[I]->Task == EB[I]->Task && EA[I]->Core == EB[I]->Core)
    ++I;
  D.CommonPrefix = I;
  D.PreDivergenceMismatches = 0; // By construction of the common prefix.
  D.Identical = I == EA.size() && I == EB.size();
  if (!D.Identical) {
    if (I < EA.size()) {
      D.TaskA = EA[I]->Task;
      D.CoreA = EA[I]->Core;
      D.TimeA = EA[I]->Time;
    }
    if (I < EB.size()) {
      D.TaskB = EB[I]->Task;
      D.CoreB = EB[I]->Core;
      D.TimeB = EB[I]->Time;
    }
  }
  return D;
}

std::string
TraceDiff::str(const std::vector<std::string> &TaskNames) const {
  auto Name = [&TaskNames](int32_t T) -> std::string {
    if (T >= 0 && static_cast<size_t>(T) < TaskNames.size())
      return TaskNames[static_cast<size_t>(T)];
    return T < 0 ? std::string("<end>") : formatString("task%d", T);
  };
  if (Identical)
    return formatString("identical (%zu dispatches)", CountA);
  return formatString(
      "diverges at dispatch %zu/%zu|%zu (0 pre-divergence mismatches): "
      "A ran %s on core %d @%llu, B ran %s on core %d @%llu",
      CommonPrefix, CountA, CountB, Name(TaskA).c_str(), CoreA,
      static_cast<unsigned long long>(TimeA), Name(TaskB).c_str(), CoreB,
      static_cast<unsigned long long>(TimeB));
}
