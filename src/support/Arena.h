//===- support/Arena.h - Chunked object pool --------------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked arena for objects with run lifetime: allocation appends into
/// geometrically growing chunks (addresses stay stable forever — a chunk
/// is never reallocated), and everything is destroyed together when the
/// pool is cleared or destroyed. The scheduling simulator's in-flight
/// tokens live here: they are created at a high rate on the send path,
/// referenced by raw pointer from queues and flight slots, and never
/// individually freed — exactly the allocation profile a per-object
/// unique_ptr heap round-trip wastes time on.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_ARENA_H
#define BAMBOO_SUPPORT_ARENA_H

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace bamboo::support {

/// Arena of Ts. create() placement-constructs into the current chunk;
/// clear() destroys every object and releases all chunks. No per-object
/// deallocation.
template <typename T> class ObjectPool {
public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool &) = delete;
  ObjectPool &operator=(const ObjectPool &) = delete;
  ~ObjectPool() { clear(); }

  /// Constructs a T in the pool and returns its stable address.
  template <typename... ArgTs> T *create(ArgTs &&...Args) {
    if (FillCount == ChunkCap || Chunks.empty())
      grow();
    T *Slot = Chunks.back().get() + FillCount;
    ::new (static_cast<void *>(Slot)) T(std::forward<ArgTs>(Args)...);
    ++FillCount;
    ++Live;
    return Slot;
  }

  /// Number of live objects.
  size_t size() const { return Live; }

  /// Destroys every object and releases the chunks.
  void clear() {
    for (size_t I = 0; I < Chunks.size(); ++I) {
      size_t InChunk = I + 1 == Chunks.size() ? FillCount : capOf(I);
      T *Base = Chunks[I].get();
      for (size_t J = 0; J < InChunk; ++J)
        Base[J].~T();
    }
    Chunks.clear();
    ChunkCap = 0;
    FillCount = 0;
    Live = 0;
  }

private:
  /// Chunk I holds FirstChunkCap << min(I, GrowthCeiling) objects.
  static constexpr size_t FirstChunkCap = 64;
  static constexpr size_t GrowthCeiling = 6; // Cap chunk size at 4096 objects.

  static size_t capOf(size_t ChunkIdx) {
    size_t Shift = ChunkIdx < GrowthCeiling ? ChunkIdx : GrowthCeiling;
    return FirstChunkCap << Shift;
  }

  void grow() {
    ChunkCap = capOf(Chunks.size());
    Chunks.push_back(std::unique_ptr<T[], RawDeleter>(static_cast<T *>(
        ::operator new(ChunkCap * sizeof(T), std::align_val_t(alignof(T))))));
    FillCount = 0;
  }

  struct RawDeleter {
    void operator()(T *P) const {
      ::operator delete(static_cast<void *>(P), std::align_val_t(alignof(T)));
    }
  };

  std::vector<std::unique_ptr<T[], RawDeleter>> Chunks;
  size_t ChunkCap = 0;   ///< Capacity of the newest chunk.
  size_t FillCount = 0;  ///< Constructed objects in the newest chunk.
  size_t Live = 0;
};

} // namespace bamboo::support

#endif // BAMBOO_SUPPORT_ARENA_H
