//===- support/ThreadPool.cpp - Fixed-size worker thread pool -------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace bamboo::support;

ThreadPool::ThreadPool(unsigned NumWorkers) {
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::enqueue(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      // Drain the queue before honoring shutdown so that every submitted
      // job's future becomes ready (map relies on this).
      if (Queue.empty())
        return;
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    Job();
  }
}
