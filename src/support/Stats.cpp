//===- support/Stats.cpp - Running statistics and histograms --------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace bamboo;

void RunningStat::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  Sum += X;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double Lo, double Hi, size_t Bins)
    : Lo(Lo), Hi(Hi), Counts(Bins, 0) {
  assert(Bins > 0 && "histogram needs at least one bin");
  assert(Lo < Hi && "histogram range must be nonempty");
}

void Histogram::add(double X) {
  double T = (X - Lo) / (Hi - Lo);
  auto Bin = static_cast<long>(T * static_cast<double>(Counts.size()));
  Bin = std::clamp(Bin, 0L, static_cast<long>(Counts.size()) - 1);
  ++Counts[static_cast<size_t>(Bin)];
  ++Total;
}

double Histogram::binCenter(size_t Bin) const {
  double Width = (Hi - Lo) / static_cast<double>(Counts.size());
  return Lo + (static_cast<double>(Bin) + 0.5) * Width;
}

double Histogram::binFraction(size_t Bin) const {
  if (Total == 0)
    return 0.0;
  return static_cast<double>(Counts[Bin]) / static_cast<double>(Total);
}

std::string Histogram::renderAscii(const std::string &Title,
                                   size_t MaxBarWidth) const {
  std::string Out = Title + "\n";
  uint64_t Peak = 0;
  for (uint64_t C : Counts)
    Peak = std::max(Peak, C);
  if (Peak == 0)
    return Out + "  (no samples)\n";
  for (size_t Bin = 0; Bin < Counts.size(); ++Bin) {
    if (Counts[Bin] == 0)
      continue;
    size_t Bar = static_cast<size_t>(
        static_cast<double>(Counts[Bin]) / static_cast<double>(Peak) *
        static_cast<double>(MaxBarWidth));
    Bar = std::max<size_t>(Bar, 1);
    Out += formatString("  %12.4g  %6.2f%%  %s\n", binCenter(Bin),
                        binFraction(Bin) * 100.0,
                        std::string(Bar, '#').c_str());
  }
  return Out;
}
