//===- support/Watchdog.cpp - Scheduler-progress watchdog -----------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Watchdog.h"

#include "support/Format.h"
#include "support/Trace.h"

namespace bamboo::support {

namespace {

const char *kindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::TaskBegin:
    return "task-begin";
  case TraceEventKind::TaskEnd:
    return "task-end";
  case TraceEventKind::Send:
    return "send";
  case TraceEventKind::Deliver:
    return "deliver";
  case TraceEventKind::LockAcquire:
    return "lock-acquire";
  case TraceEventKind::LockRetry:
    return "lock-retry";
  case TraceEventKind::Idle:
    return "idle";
  case TraceEventKind::FaultInject:
    return "fault-inject";
  case TraceEventKind::Retransmit:
    return "retransmit";
  case TraceEventKind::Failover:
    return "failover";
  case TraceEventKind::Resume:
    return "resume";
  case TraceEventKind::Steal:
    return "steal";
  }
  return "?";
}

} // namespace

WatchdogReport::WatchdogReport(const std::string &Engine, uint64_t Now,
                               uint64_t LastProgress, uint64_t Limit,
                               const char *Unit) {
  Text = formatString(
      "WATCHDOG [%s]: no dispatch/completion progress for %llu %s "
      "(limit %llu %s, last progress at %llu, now %llu)\n",
      Engine.c_str(), static_cast<unsigned long long>(Now - LastProgress),
      Unit, static_cast<unsigned long long>(Limit), Unit,
      static_cast<unsigned long long>(LastProgress),
      static_cast<unsigned long long>(Now));
}

void WatchdogReport::section(const std::string &Title) {
  Text += "-- " + Title + " --\n";
}

void WatchdogReport::line(const std::string &L) { Text += "  " + L + "\n"; }

void WatchdogReport::traceTail(const Trace *T, size_t MaxEvents) {
  section("last trace events");
  if (!T) {
    line("(tracing disabled; re-run with --trace=FILE for event history)");
    return;
  }
  const std::vector<TraceEvent> &Events = T->events();
  if (Events.empty()) {
    line("(trace is empty)");
    return;
  }
  size_t Begin = Events.size() > MaxEvents ? Events.size() - MaxEvents : 0;
  for (size_t I = Begin; I < Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    line(formatString("t=%llu core=%d %s task=%d obj=%lld peer=%d aux=%llu",
                      static_cast<unsigned long long>(E.Time), E.Core,
                      kindName(E.Kind), E.Task,
                      static_cast<long long>(E.Object), E.Peer,
                      static_cast<unsigned long long>(E.Aux)));
  }
}

} // namespace bamboo::support
