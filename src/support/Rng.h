//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xoshiro256**, seeded through splitmix64).
///
/// Every randomized component of the pipeline — candidate-layout search,
/// directed simulated annealing, workload generation — draws from an Rng it
/// is handed explicitly, so whole-pipeline runs are reproducible from a
/// single seed. std::mt19937 is avoided because its state is large and its
/// distributions are not specified bit-for-bit across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_RNG_H
#define BAMBOO_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bamboo {

/// Deterministic xoshiro256** generator with convenience distributions.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed integer in the inclusive range
  /// [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

  /// Returns a fresh generator seeded from this one; useful for handing
  /// independent streams to parallel components.
  Rng split();

  /// Fisher-Yates shuffles \p Items in place.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(nextBelow(I));
      std::swap(Items[I - 1], Items[J]);
    }
  }

  /// Picks a uniformly random element index for a container of \p Size
  /// elements. \p Size must be nonzero.
  size_t pickIndex(size_t Size) { return static_cast<size_t>(nextBelow(Size)); }

private:
  uint64_t State[4];
};

} // namespace bamboo

#endif // BAMBOO_SUPPORT_RNG_H
