//===- support/Format.h - String formatting helpers -------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting, joining, and fixed-width table
/// rendering used by the bench harnesses to print the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_FORMAT_H
#define BAMBOO_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>
#include <vector>

namespace bamboo {

/// Formats like printf into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Renders rows of cells as an aligned text table; the first row is treated
/// as the header and separated by a dashed rule.
std::string renderTable(const std::vector<std::vector<std::string>> &Rows);

} // namespace bamboo

#endif // BAMBOO_SUPPORT_FORMAT_H
