//===- support/Signal.h - Process-wide stop request -------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One process-wide, async-signal-safe stop flag shared by every
/// long-running mode of the driver: a one-shot run polls it from the
/// engine event loop so SIGINT/SIGTERM abort at a clean event boundary
/// (trace and checkpoints can still be flushed), and `bamboo serve` polls
/// it to trigger a graceful drain. The handler only sets an atomic; all
/// real work happens on the polling side.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_SIGNAL_H
#define BAMBOO_SUPPORT_SIGNAL_H

#include <atomic>

namespace bamboo::support {

/// Installs SIGINT and SIGTERM handlers that set the stop flag. Safe to
/// call more than once. The handlers are one-shot in spirit: the flag
/// stays set until clearStopRequest().
void installStopHandlers();

/// The flag the engines poll (wire into ExecOptions::Stop and friends).
const std::atomic<bool> *stopFlag();

/// True once SIGINT or SIGTERM has been received.
bool stopRequested();

/// The signal number that set the flag (0 if none yet).
int stopSignal();

/// Resets the flag (tests; a server re-arming after a handled drain).
void clearStopRequest();

} // namespace bamboo::support

#endif // BAMBOO_SUPPORT_SIGNAL_H
