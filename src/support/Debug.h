//===- support/Debug.h - Assertion and unreachable helpers -----*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small assertion helpers shared across the library. The library follows
/// LLVM conventions: programmatic errors abort via assertions, recoverable
/// errors travel as values (see support/Format.h for diagnostics helpers).
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_DEBUG_H
#define BAMBOO_SUPPORT_DEBUG_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Marks a point in the code that must never be reached. Always aborts, even
/// in release builds, so that impossible states are loud instead of silent.
#define BAMBOO_UNREACHABLE(msg)                                                \
  do {                                                                         \
    std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", __FILE__,      \
                 __LINE__, msg);                                               \
    std::abort();                                                              \
  } while (false)

#endif // BAMBOO_SUPPORT_DEBUG_H
