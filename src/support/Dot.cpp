//===- support/Dot.cpp - Graphviz DOT emission ----------------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Dot.h"

#include <cassert>

using namespace bamboo;

DotWriter::DotWriter(std::string GraphName) : Name(std::move(GraphName)) {}

std::string DotWriter::indent() const {
  return std::string(static_cast<size_t>(ClusterDepth + 1) * 2, ' ');
}

std::string DotWriter::escape(const std::string &Raw) {
  std::string Out;
  Out.reserve(Raw.size());
  for (char C : Raw) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out.push_back(C);
  }
  return Out;
}

void DotWriter::addNode(const std::string &Id, const std::string &Label,
                        const std::string &ExtraAttrs) {
  std::string Line = indent() + "\"" + escape(Id) + "\" [label=\"" +
                     escape(Label) + "\"";
  if (!ExtraAttrs.empty())
    Line += ", " + ExtraAttrs;
  Line += "];";
  Lines.push_back(std::move(Line));
}

void DotWriter::addEdge(const std::string &From, const std::string &To,
                        const std::string &Label,
                        const std::string &ExtraAttrs) {
  std::string Line = indent() + "\"" + escape(From) + "\" -> \"" + escape(To) +
                     "\"";
  bool HasAttrs = !Label.empty() || !ExtraAttrs.empty();
  if (HasAttrs) {
    Line += " [";
    if (!Label.empty()) {
      Line += "label=\"" + escape(Label) + "\"";
      if (!ExtraAttrs.empty())
        Line += ", ";
    }
    Line += ExtraAttrs + "]";
  }
  Line += ";";
  Lines.push_back(std::move(Line));
}

void DotWriter::beginCluster(const std::string &Id, const std::string &Label) {
  Lines.push_back(indent() + "subgraph \"cluster_" + escape(Id) + "\" {");
  ++ClusterDepth;
  Lines.push_back(indent() + "label=\"" + escape(Label) + "\";");
}

void DotWriter::endCluster() {
  assert(ClusterDepth > 0 && "endCluster without beginCluster");
  --ClusterDepth;
  Lines.push_back(indent() + "}");
}

std::string DotWriter::str() const {
  assert(ClusterDepth == 0 && "unterminated cluster");
  std::string Out = "digraph \"" + escape(Name) + "\" {\n";
  for (const std::string &Line : Lines) {
    Out += Line;
    Out += '\n';
  }
  Out += "}\n";
  return Out;
}
