//===- support/Scc.h - Strongly connected components ------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tarjan strongly-connected-components decomposition over a dense adjacency
/// representation. The synthesis pipeline (Section 4.3.2 of the paper) uses
/// SCCs of the combined state transition graph to build the tree of core
/// groups that the parallelization rules replicate.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_SCC_H
#define BAMBOO_SUPPORT_SCC_H

#include <cstddef>
#include <vector>

namespace bamboo {

/// Result of an SCC decomposition.
struct SccResult {
  /// Component index for each node; components are numbered in reverse
  /// topological order of the condensation (Tarjan's natural output), i.e.
  /// if there is an edge from component A to component B (A != B) then
  /// ComponentOf[a] > ComponentOf[b] for members a of A and b of B.
  std::vector<int> ComponentOf;

  /// The members of each component.
  std::vector<std::vector<int>> Components;

  size_t numComponents() const { return Components.size(); }
};

/// Computes the strongly connected components of a directed graph given as
/// an adjacency list \p Adj (Adj[N] lists the successor node ids of N).
/// Iterative implementation; safe on deep graphs.
SccResult computeSccs(const std::vector<std::vector<int>> &Adj);

/// Builds the condensation (component DAG) of \p Adj under \p Sccs: edges
/// between distinct components, deduplicated.
std::vector<std::vector<int>>
buildCondensation(const std::vector<std::vector<int>> &Adj,
                  const SccResult &Sccs);

} // namespace bamboo

#endif // BAMBOO_SUPPORT_SCC_H
