//===- support/Parse.cpp - Strict numeric parsing -------------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Parse.h"

namespace bamboo::support {

bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return false; // Overflow.
    Value = Value * 10 + Digit;
  }
  Out = Value;
  return true;
}

bool parseBoundedInt(const std::string &Text, int64_t Min, int64_t Max,
                     int64_t &Out) {
  uint64_t Value = 0;
  if (!parseU64(Text, Value))
    return false;
  if (Value > static_cast<uint64_t>(INT64_MAX))
    return false;
  int64_t Signed = static_cast<int64_t>(Value);
  if (Signed < Min || Signed > Max)
    return false;
  Out = Signed;
  return true;
}

} // namespace bamboo::support
