//===- support/Format.cpp - String formatting helpers ---------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <algorithm>
#include <cstdio>

using namespace bamboo;

std::string bamboo::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string bamboo::join(const std::vector<std::string> &Parts,
                         const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string
bamboo::renderTable(const std::vector<std::vector<std::string>> &Rows) {
  if (Rows.empty())
    return std::string();
  size_t Cols = 0;
  for (const auto &Row : Rows)
    Cols = std::max(Cols, Row.size());
  std::vector<size_t> Widths(Cols, 0);
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t C = 0; C < Cols; ++C) {
      std::string Cell = C < Row.size() ? Row[C] : std::string();
      Line += Cell;
      if (C + 1 != Cols)
        Line += std::string(Widths[C] - Cell.size() + 2, ' ');
    }
    // Trim trailing spaces.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line;
  };

  std::string Out = RenderRow(Rows[0]) + "\n";
  size_t RuleWidth = 0;
  for (size_t C = 0; C < Cols; ++C)
    RuleWidth += Widths[C] + (C + 1 != Cols ? 2 : 0);
  Out += std::string(RuleWidth, '-') + "\n";
  for (size_t R = 1; R < Rows.size(); ++R)
    Out += RenderRow(Rows[R]) + "\n";
  return Out;
}
