//===- support/Watchdog.h - Scheduler-progress watchdog ---------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A progress watchdog shared by all three engines. The engine reports
/// every unit of real scheduler progress (a dispatch or a completion) with
/// progress(Now); the run loop asks stalled(Now) as virtual time advances.
/// When time has moved more than the configured limit past the last
/// progress point — e.g. an adversarial fault plan re-arming stall windows
/// forever — the engine aborts the run with a diagnostic dump instead of
/// hanging. The thread-backed executor uses the same class over
/// millisecond timestamps.
///
/// WatchdogReport accumulates the dump: last trace events, per-core queue
/// depths, held locks. It is plain text, printed to stderr by the driver
/// before exiting with the dedicated watchdog exit code.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_WATCHDOG_H
#define BAMBOO_SUPPORT_WATCHDOG_H

#include <cstdint>
#include <string>

namespace bamboo::support {

class Trace;

/// Tracks the last point of real progress on a monotone clock (virtual
/// cycles or wall milliseconds). Limit 0 disables the watchdog.
class Watchdog {
public:
  Watchdog() = default;
  explicit Watchdog(uint64_t Limit) : Limit(Limit) {}

  bool enabled() const { return Limit > 0; }

  /// Records real progress at time \p Now.
  void progress(uint64_t Now) {
    if (Now > Last)
      Last = Now;
  }

  /// True when \p Now is more than the limit past the last progress.
  bool stalled(uint64_t Now) const {
    return enabled() && Now > Last && Now - Last > Limit;
  }

  uint64_t limit() const { return Limit; }
  uint64_t lastProgress() const { return Last; }

private:
  uint64_t Limit = 0;
  uint64_t Last = 0;
};

/// Builds the diagnostic dump emitted when a watchdog fires.
class WatchdogReport {
public:
  /// Starts the report: what stalled, where, and for how long. \p Unit is
  /// "cycles" or "ms".
  WatchdogReport(const std::string &Engine, uint64_t Now, uint64_t LastProgress,
                 uint64_t Limit, const char *Unit);

  /// Begins a titled section ("per-core queue depths", "held locks", ...).
  void section(const std::string &Title);

  /// Appends one indented line to the current section.
  void line(const std::string &L);

  /// Renders the tail (last \p MaxEvents) of \p T as one line per event.
  /// Null or empty traces add a placeholder line so the dump says why the
  /// section is empty.
  void traceTail(const Trace *T, size_t MaxEvents);

  const std::string &str() const { return Text; }

private:
  std::string Text;
};

} // namespace bamboo::support

#endif // BAMBOO_SUPPORT_WATCHDOG_H
