//===- support/Stats.h - Running statistics and histograms ------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming mean/variance accumulation (Welford) and fixed-bin histograms.
/// The profile subsystem uses RunningStat for per-exit task timing; the
/// Figure-10 bench uses Histogram to reproduce the candidate-implementation
/// performance distributions.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SUPPORT_STATS_H
#define BAMBOO_SUPPORT_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace bamboo {

/// Numerically stable streaming mean and variance.
class RunningStat {
public:
  void add(double X);

  uint64_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  double variance() const { return N > 1 ? M2 / static_cast<double>(N - 1) : 0.0; }
  double stddev() const;
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }
  double total() const { return Sum; }

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Sum = 0.0;
};

/// Equal-width histogram over a closed range; samples outside the range are
/// clamped into the first/last bin.
class Histogram {
public:
  Histogram(double Lo, double Hi, size_t Bins);

  void add(double X);

  size_t numBins() const { return Counts.size(); }
  uint64_t binCount(size_t Bin) const { return Counts[Bin]; }
  uint64_t totalCount() const { return Total; }

  /// Center of bin \p Bin.
  double binCenter(size_t Bin) const;

  /// Fraction of all samples in bin \p Bin (0 if empty histogram).
  double binFraction(size_t Bin) const;

  /// Renders an ASCII bar chart, one line per nonempty bin, suitable for the
  /// Figure-10 style distribution plots.
  std::string renderAscii(const std::string &Title, size_t MaxBarWidth = 50)
      const;

private:
  double Lo, Hi;
  std::vector<uint64_t> Counts;
  uint64_t Total = 0;
};

} // namespace bamboo

#endif // BAMBOO_SUPPORT_STATS_H
