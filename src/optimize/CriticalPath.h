//===- optimize/CriticalPath.h - Trace critical path analysis ---*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Critical path analysis over simulated execution traces (Section 4.5.1,
/// Figure 6). The trace graph has an edge from a producer invocation to
/// each consumer that waited for its data (weighted by the transfer), and
/// an edge between consecutive invocations on one core when the second
/// waited for the first to release the core. The critical path is the
/// heaviest start-to-end path under both resource and scheduling
/// constraints; the directed-simulated-annealing optimizer derives its
/// migration moves from it (Section 4.5.2).
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_OPTIMIZE_CRITICALPATH_H
#define BAMBOO_OPTIMIZE_CRITICALPATH_H

#include "schedsim/SchedSim.h"

#include <string>
#include <vector>

namespace bamboo::optimize {

/// Why a trace task started when it did.
enum class WaitKind {
  None,     ///< Started the moment its data was ready.
  Resource, ///< Data was ready earlier; it waited for the core.
};

/// One step of the critical path, in execution order.
struct PathStep {
  int TraceId = -1;
  WaitKind Wait = WaitKind::None;
};

struct CriticalPathResult {
  std::vector<PathStep> Steps;
  machine::Cycles Length = 0;

  /// Trace ids of steps that waited for their core (candidates for
  /// migration).
  std::vector<int> resourceDelayed() const;
};

/// Computes the critical path of \p Trace (must be a trace recorded by the
/// scheduling simulator).
CriticalPathResult
computeCriticalPath(const std::vector<schedsim::TraceTask> &Trace);

/// Renders the trace and its critical path like Figure 6 (DOT).
std::string traceToDot(const ir::Program &Prog,
                       const std::vector<schedsim::TraceTask> &Trace,
                       const CriticalPathResult &Path);

} // namespace bamboo::optimize

#endif // BAMBOO_OPTIMIZE_CRITICALPATH_H
