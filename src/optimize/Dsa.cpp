//===- optimize/Dsa.cpp - Directed simulated annealing --------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "optimize/Dsa.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace bamboo;
using namespace bamboo::optimize;
using machine::Cycles;
using machine::Layout;

namespace {

struct Candidate {
  Layout L;
  schedsim::SimResult Sim;
};

/// True if core \p Core has no execution overlapping [Lo, Hi) in the
/// trace.
bool coreIdleDuring(const std::vector<schedsim::TraceTask> &Trace, int Core,
                    Cycles Lo, Cycles Hi) {
  for (const schedsim::TraceTask &T : Trace) {
    if (T.Core != Core)
      continue;
    if (T.Start < Hi && T.End > Lo)
      return false;
  }
  return true;
}

/// Generates migration moves for one candidate, directed by its critical
/// path (Section 4.5.2).
std::vector<Layout> directedMoves(const Candidate &C, int NumCores, Rng &R,
                                  int MaxMoves) {
  std::vector<Layout> Moves;
  const std::vector<schedsim::TraceTask> &Trace = C.Sim.Trace;
  if (Trace.empty())
    return Moves;
  CriticalPathResult Path = computeCriticalPath(Trace);
  if (Path.Steps.empty())
    return Moves;

  // Key tasks: critical tasks whose produced data the next critical task
  // consumes (linked by a scheduling edge).
  std::set<int> KeyTasks;
  for (size_t S = 0; S + 1 < Path.Steps.size(); ++S)
    if (Path.Steps[S + 1].Wait == WaitKind::None)
      KeyTasks.insert(Path.Steps[S].TraceId);

  // Group resource-delayed critical tasks by the time their data
  // dependences resolved; pick one group at random to attack.
  std::map<Cycles, std::vector<int>> ByReady;
  for (int Id : Path.resourceDelayed())
    ByReady[Trace[static_cast<size_t>(Id)].Ready].push_back(Id);
  if (ByReady.empty())
    return Moves;
  size_t GroupPick = R.pickIndex(ByReady.size());
  auto GroupIt = ByReady.begin();
  std::advance(GroupIt, static_cast<long>(GroupPick));

  for (int Id : GroupIt->second) {
    if (static_cast<int>(Moves.size()) >= MaxMoves)
      break;
    const schedsim::TraceTask &T = Trace[static_cast<size_t>(Id)];
    if (T.InstanceIdx < 0)
      continue;

    // Spare-core move: any core idle over the delay window.
    bool MovedToSpare = false;
    for (int Core = 0; Core < NumCores; ++Core) {
      if (Core == T.Core)
        continue;
      if (!coreIdleDuring(Trace, Core, T.Ready, T.Start))
        continue;
      Layout Mutated = C.L;
      Mutated.Instances[static_cast<size_t>(T.InstanceIdx)].Core = Core;
      Moves.push_back(std::move(Mutated));
      MovedToSpare = true;
      break;
    }
    if (MovedToSpare)
      continue;

    // No spare core: if this delayed task is a *key* task, try to push the
    // non-key work occupying its core elsewhere.
    for (const PathStep &S : Path.Steps) {
      const schedsim::TraceTask &Other =
          Trace[static_cast<size_t>(S.TraceId)];
      if (Other.Core != T.Core || KeyTasks.count(S.TraceId) ||
          Other.InstanceIdx < 0 || Other.InstanceIdx == T.InstanceIdx)
        continue;
      Layout Mutated = C.L;
      int Target = static_cast<int>(R.nextBelow(
          static_cast<uint64_t>(NumCores)));
      if (Target == Other.Core)
        Target = (Target + 1) % NumCores;
      Mutated.Instances[static_cast<size_t>(Other.InstanceIdx)].Core =
          Target;
      Moves.push_back(std::move(Mutated));
      break;
    }
  }
  return Moves;
}

/// A load-rebalancing move: shift one instance from the busiest core to
/// the least busy core of the simulated execution. Complements the
/// critical-path moves, which only see delays on the single heaviest
/// path.
Layout rebalanceMove(const Candidate &C, int NumCores, Rng &R) {
  Layout Mutated = C.L;
  if (C.Sim.CoreBusy.empty() || Mutated.Instances.empty())
    return Mutated;
  int Busiest = 0, Idlest = 0;
  for (size_t Core = 0; Core < C.Sim.CoreBusy.size(); ++Core) {
    if (C.Sim.CoreBusy[Core] > C.Sim.CoreBusy[static_cast<size_t>(Busiest)])
      Busiest = static_cast<int>(Core);
    if (C.Sim.CoreBusy[Core] < C.Sim.CoreBusy[static_cast<size_t>(Idlest)])
      Idlest = static_cast<int>(Core);
  }
  // Cores beyond the simulated vector (never used) are idle too.
  if (static_cast<int>(C.Sim.CoreBusy.size()) < NumCores)
    Idlest = static_cast<int>(C.Sim.CoreBusy.size());
  std::vector<size_t> OnBusiest;
  for (size_t I = 0; I < Mutated.Instances.size(); ++I)
    if (Mutated.Instances[I].Core == Busiest)
      OnBusiest.push_back(I);
  if (OnBusiest.empty() || Busiest == Idlest)
    return Mutated;
  Mutated.Instances[OnBusiest[R.pickIndex(OnBusiest.size())]].Core = Idlest;
  return Mutated;
}

/// A random perturbation: move one placed instance to a random core.
Layout randomMove(const Layout &L, int NumCores, Rng &R) {
  Layout Mutated = L;
  if (Mutated.Instances.empty())
    return Mutated;
  size_t Pick = R.pickIndex(Mutated.Instances.size());
  Mutated.Instances[Pick].Core =
      static_cast<int>(R.nextBelow(static_cast<uint64_t>(NumCores)));
  return Mutated;
}

} // namespace

DsaResult bamboo::optimize::runDsa(
    const ir::Program &Prog, const analysis::Cstg &Graph,
    const profile::Profile &Prof, const profile::SimHints &Hints,
    const machine::MachineConfig &Machine, const synthesis::GroupPlan &Plan,
    const DsaOptions &Opts, const std::vector<Layout> *Starts) {
  Rng R(Opts.Seed);
  DsaResult Result;

  schedsim::SimOptions SimOpts;
  SimOpts.RecordTrace = true;

  auto Evaluate = [&](Layout L) {
    Candidate C;
    C.L = std::move(L);
    C.Sim = schedsim::simulateLayout(Prog, Graph, Prof, Hints, Machine, C.L,
                                     SimOpts);
    ++Result.Evaluations;
    return C;
  };

  // Seed the pool.
  std::vector<Candidate> Pool;
  std::set<std::string> SeenKeys;
  auto AddIfNew = [&](Layout L) {
    std::string Key = L.isoKey(Prog);
    if (!SeenKeys.insert(Key).second)
      return false;
    Pool.push_back(Evaluate(std::move(L)));
    return true;
  };

  if (Starts && !Starts->empty()) {
    for (const Layout &L : *Starts)
      AddIfNew(L);
  } else {
    // The round-robin spread realizes the parallelization rules' intent
    // (one replica per core) and anchors the otherwise random seed pool.
    AddIfNew(synthesis::spreadLayout(Plan, Machine.NumCores));
    for (Layout &L : synthesis::randomLayouts(Plan, Prog, Machine.NumCores,
                                              Opts.InitialCandidates, R))
      AddIfNew(std::move(L));
  }
  if (Pool.empty())
    AddIfNew(synthesis::randomLayout(Plan, Machine.NumCores, R));

  auto ByEstimate = [](const Candidate &A, const Candidate &B) {
    return A.Sim.EstimatedCycles < B.Sim.EstimatedCycles;
  };
  std::sort(Pool.begin(), Pool.end(), ByEstimate);
  Result.Best = Pool.front().L;
  Result.BestEstimate = Pool.front().Sim.EstimatedCycles;

  for (int Iter = 0; Iter < Opts.MaxIterations; ++Iter) {
    ++Result.Iterations;

    // Probabilistic pruning: good candidates survive with high
    // probability, poor ones with low probability; the best always stays.
    std::vector<Candidate> Survivors;
    for (size_t I = 0; I < Pool.size(); ++I) {
      bool GoodHalf = I < (Pool.size() + 1) / 2;
      double P = GoodHalf ? Opts.KeepBestProb : Opts.KeepPoorProb;
      if (I == 0 || R.nextBool(P))
        Survivors.push_back(std::move(Pool[I]));
    }
    Pool = std::move(Survivors);

    // Directed + random neighbor generation.
    std::vector<Layout> Fresh;
    for (const Candidate &C : Pool) {
      if (Opts.UseDirectedMoves) {
        std::vector<Layout> Directed = directedMoves(
            C, Machine.NumCores, R, Opts.NeighborsPerCandidate);
        for (Layout &L : Directed)
          Fresh.push_back(std::move(L));
      }
      if (Opts.UseRebalanceMoves)
        Fresh.push_back(rebalanceMove(C, Machine.NumCores, R));
      // Keep exploring even when the critical path offers nothing.
      Fresh.push_back(randomMove(C.L, Machine.NumCores, R));
    }

    Cycles PrevBest = Result.BestEstimate;
    for (Layout &L : Fresh)
      AddIfNew(std::move(L));

    std::sort(Pool.begin(), Pool.end(), ByEstimate);
    if (Pool.size() > Opts.MaxPool)
      Pool.resize(Opts.MaxPool);

    if (Pool.front().Sim.EstimatedCycles < Result.BestEstimate) {
      Result.BestEstimate = Pool.front().Sim.EstimatedCycles;
      Result.Best = Pool.front().L;
    }

    // Stop when the iteration brought no improvement, except for a
    // probabilistic escape from local maxima.
    if (Result.BestEstimate >= PrevBest && !R.nextBool(Opts.ContinueProb))
      break;
  }
  return Result;
}
