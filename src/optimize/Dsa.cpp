//===- optimize/Dsa.cpp - Directed simulated annealing --------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "optimize/Dsa.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <set>

using namespace bamboo;
using namespace bamboo::optimize;
using machine::Cycles;
using machine::Layout;

namespace {

struct Candidate {
  Layout L;
  std::shared_ptr<const DsaEvaluation> Eval;

  const schedsim::SimResult &sim() const { return Eval->Sim; }
};

/// Per-core busy-interval index over a trace, answering "was core C idle
/// over [Lo, Hi)?" in O(log T) instead of a full trace walk per query.
/// Intervals are sorted by start with a running prefix-maximum of ends, so
/// a core is idle over the window iff no interval starting before Hi
/// extends past Lo.
class CoreIdleIndex {
public:
  CoreIdleIndex(const std::vector<schedsim::TraceTask> &Trace, int NumCores)
      : Starts(static_cast<size_t>(NumCores)),
        PrefixMaxEnd(static_cast<size_t>(NumCores)) {
    std::vector<std::vector<std::pair<Cycles, Cycles>>> PerCore(
        static_cast<size_t>(NumCores));
    for (const schedsim::TraceTask &T : Trace)
      if (T.Core >= 0 && T.Core < NumCores)
        PerCore[static_cast<size_t>(T.Core)].emplace_back(T.Start, T.End);
    for (size_t Core = 0; Core < PerCore.size(); ++Core) {
      auto &Ivals = PerCore[Core];
      std::sort(Ivals.begin(), Ivals.end());
      Starts[Core].reserve(Ivals.size());
      PrefixMaxEnd[Core].reserve(Ivals.size());
      Cycles MaxEnd = 0;
      for (const auto &[Start, End] : Ivals) {
        MaxEnd = std::max(MaxEnd, End);
        Starts[Core].push_back(Start);
        PrefixMaxEnd[Core].push_back(MaxEnd);
      }
    }
  }

  /// True if core \p Core has no execution overlapping [Lo, Hi). Matches
  /// the predicate "exists T on Core with T.Start < Hi and T.End > Lo".
  bool idleDuring(int Core, Cycles Lo, Cycles Hi) const {
    const std::vector<Cycles> &S = Starts[static_cast<size_t>(Core)];
    auto It = std::lower_bound(S.begin(), S.end(), Hi);
    if (It == S.begin())
      return true;
    size_t Last = static_cast<size_t>(It - S.begin()) - 1;
    return PrefixMaxEnd[static_cast<size_t>(Core)][Last] <= Lo;
  }

private:
  std::vector<std::vector<Cycles>> Starts;
  std::vector<std::vector<Cycles>> PrefixMaxEnd;
};

/// Generates migration moves for one candidate, directed by its critical
/// path (Section 4.5.2). The critical path is precomputed with the
/// simulation; only the random choices draw from \p R.
std::vector<Layout> directedMoves(const Candidate &C, int NumCores, Rng &R,
                                  int MaxMoves) {
  std::vector<Layout> Moves;
  const std::vector<schedsim::TraceTask> &Trace = C.sim().Trace;
  if (Trace.empty())
    return Moves;
  const CriticalPathResult &Path = C.Eval->Path;
  if (Path.Steps.empty())
    return Moves;

  // Key tasks: critical tasks whose produced data the next critical task
  // consumes (linked by a scheduling edge).
  std::set<int> KeyTasks;
  for (size_t S = 0; S + 1 < Path.Steps.size(); ++S)
    if (Path.Steps[S + 1].Wait == WaitKind::None)
      KeyTasks.insert(Path.Steps[S].TraceId);

  // Group resource-delayed critical tasks by the time their data
  // dependences resolved; pick one group at random to attack.
  std::map<Cycles, std::vector<int>> ByReady;
  for (int Id : Path.resourceDelayed())
    ByReady[Trace[static_cast<size_t>(Id)].Ready].push_back(Id);
  if (ByReady.empty())
    return Moves;
  size_t GroupPick = R.pickIndex(ByReady.size());
  auto GroupIt = ByReady.begin();
  std::advance(GroupIt, static_cast<long>(GroupPick));

  CoreIdleIndex Idle(Trace, NumCores);

  for (int Id : GroupIt->second) {
    if (static_cast<int>(Moves.size()) >= MaxMoves)
      break;
    const schedsim::TraceTask &T = Trace[static_cast<size_t>(Id)];
    if (T.InstanceIdx < 0)
      continue;

    // Spare-core move: any core idle over the delay window.
    bool MovedToSpare = false;
    for (int Core = 0; Core < NumCores; ++Core) {
      if (Core == T.Core)
        continue;
      if (!Idle.idleDuring(Core, T.Ready, T.Start))
        continue;
      Layout Mutated = C.L;
      Mutated.Instances[static_cast<size_t>(T.InstanceIdx)].Core = Core;
      Moves.push_back(std::move(Mutated));
      MovedToSpare = true;
      break;
    }
    if (MovedToSpare)
      continue;

    // No spare core: if this delayed task is a *key* task, try to push the
    // non-key work occupying its core elsewhere.
    for (const PathStep &S : Path.Steps) {
      const schedsim::TraceTask &Other =
          Trace[static_cast<size_t>(S.TraceId)];
      if (Other.Core != T.Core || KeyTasks.count(S.TraceId) ||
          Other.InstanceIdx < 0 || Other.InstanceIdx == T.InstanceIdx)
        continue;
      Layout Mutated = C.L;
      int Target = static_cast<int>(R.nextBelow(
          static_cast<uint64_t>(NumCores)));
      if (Target == Other.Core)
        Target = (Target + 1) % NumCores;
      Mutated.Instances[static_cast<size_t>(Other.InstanceIdx)].Core =
          Target;
      Moves.push_back(std::move(Mutated));
      break;
    }
  }
  return Moves;
}

/// A load-rebalancing move: shift one instance from the busiest core to
/// the least busy core of the simulated execution. Complements the
/// critical-path moves, which only see delays on the single heaviest
/// path. Returns nothing when no instance can usefully move (all cores
/// equally busy and none spare) instead of wasting a candidate slot on a
/// no-op copy of the layout.
std::optional<Layout> rebalanceMove(const Candidate &C, int NumCores,
                                    Rng &R) {
  const std::vector<Cycles> &CoreBusy = C.sim().CoreBusy;
  if (CoreBusy.empty() || C.L.Instances.empty())
    return std::nullopt;
  int Busiest = 0;
  for (size_t Core = 0; Core < CoreBusy.size(); ++Core)
    if (CoreBusy[Core] > CoreBusy[static_cast<size_t>(Busiest)])
      Busiest = static_cast<int>(Core);
  // Prefer a genuinely unused core when one exists (cores beyond the
  // simulated vector never ran anything); otherwise the least busy
  // simulated core.
  int Idlest;
  if (static_cast<int>(CoreBusy.size()) < NumCores) {
    Idlest = static_cast<int>(CoreBusy.size());
  } else {
    Idlest = 0;
    for (size_t Core = 0; Core < CoreBusy.size(); ++Core)
      if (CoreBusy[Core] < CoreBusy[static_cast<size_t>(Idlest)])
        Idlest = static_cast<int>(Core);
  }
  std::vector<size_t> OnBusiest;
  for (size_t I = 0; I < C.L.Instances.size(); ++I)
    if (C.L.Instances[I].Core == Busiest)
      OnBusiest.push_back(I);
  if (OnBusiest.empty() || Busiest == Idlest)
    return std::nullopt;
  Layout Mutated = C.L;
  Mutated.Instances[OnBusiest[R.pickIndex(OnBusiest.size())]].Core = Idlest;
  return Mutated;
}

/// A random perturbation: move one placed instance to a random core.
Layout randomMove(const Layout &L, int NumCores, Rng &R) {
  Layout Mutated = L;
  if (Mutated.Instances.empty())
    return Mutated;
  size_t Pick = R.pickIndex(Mutated.Instances.size());
  Mutated.Instances[Pick].Core =
      static_cast<int>(R.nextBelow(static_cast<uint64_t>(NumCores)));
  return Mutated;
}

} // namespace

DsaResult bamboo::optimize::runDsa(
    const ir::Program &Prog, const analysis::Cstg &Graph,
    const profile::Profile &Prof, const profile::SimHints &Hints,
    const machine::MachineConfig &Machine, const synthesis::GroupPlan &Plan,
    const DsaOptions &Opts, const std::vector<Layout> *Starts,
    DsaMemo *Memo) {
  Rng R(Opts.Seed);
  DsaResult Result;

  schedsim::SimOptions SimOpts;
  SimOpts.RecordTrace = true;

  // Evaluation fan-out. The pool only ever runs the pure
  // simulate-and-analyze job below; layout generation, the RNG, the
  // memoization cache, and every pool/result mutation stay on this
  // thread. Jobs <= 1 constructs a zero-worker pool, which runs jobs
  // inline — the serial and parallel drivers are the same code path.
  support::ThreadPool Workers(
      Opts.Jobs > 1 ? static_cast<unsigned>(Opts.Jobs) : 0u);

  std::vector<Candidate> Pool;
  std::set<std::string> SeenKeys;

  // Layouts admitted this round, waiting for batch evaluation. Admission
  // (isomorphism dedup against everything ever pooled) is decided at
  // collect time; evaluation is deferred so a whole round fans out at
  // once.
  std::vector<synthesis::KeyedLayout> Batch;

  auto Collect = [&](synthesis::KeyedLayout KL) {
    if (!SeenKeys.insert(KL.Key).second)
      return false;
    Batch.push_back(std::move(KL));
    return true;
  };
  // The isomorphism key is built exactly once per layout and shared by
  // admission dedup and the memoization cache.
  auto CollectLayout = [&](Layout L) {
    std::string Key = L.isoKey(Prog);
    return Collect(synthesis::KeyedLayout{std::move(L), std::move(Key)});
  };

  // Simulates every batched layout (memo hits excepted) with one parallel
  // map and appends the candidates to the pool in submission order, so
  // pool contents are independent of worker scheduling.
  auto EvaluateBatch = [&]() {
    std::vector<std::shared_ptr<const DsaEvaluation>> Evals(Batch.size());
    std::vector<size_t> ToSim;
    ToSim.reserve(Batch.size());
    for (size_t I = 0; I < Batch.size(); ++I) {
      if (Memo) {
        auto It = Memo->Results.find(Batch[I].Key);
        if (It != Memo->Results.end()) {
          Evals[I] = It->second;
          ++Memo->Hits;
          continue;
        }
      }
      ToSim.push_back(I);
    }

    std::vector<std::shared_ptr<const DsaEvaluation>> Simulated =
        Workers.map(ToSim.size(), [&](size_t J) {
          auto E = std::make_shared<DsaEvaluation>();
          E->Sim = schedsim::simulateLayout(Prog, Graph, Prof, Hints,
                                            Machine, Batch[ToSim[J]].L,
                                            SimOpts);
          E->Path = computeCriticalPath(E->Sim.Trace);
          return std::shared_ptr<const DsaEvaluation>(std::move(E));
        });
    Result.Evaluations += ToSim.size();
    for (size_t J = 0; J < ToSim.size(); ++J) {
      Evals[ToSim[J]] = Simulated[J];
      if (Memo) {
        ++Memo->Misses;
        if (Memo->Results.size() < Memo->MaxEntries)
          Memo->Results.emplace(Batch[ToSim[J]].Key, Simulated[J]);
      }
    }

    for (size_t I = 0; I < Batch.size(); ++I)
      Pool.push_back(Candidate{std::move(Batch[I].L), std::move(Evals[I])});
    Batch.clear();
  };

  // Seed the pool with one batched evaluation.
  if (Starts && !Starts->empty()) {
    for (const Layout &L : *Starts)
      CollectLayout(L);
  } else {
    // The round-robin spread realizes the parallelization rules' intent
    // (one replica per core) and anchors the otherwise random seed pool.
    CollectLayout(synthesis::spreadLayout(Plan, Machine.NumCores));
    // On a hierarchical machine, also seed the cluster-aware spread; the
    // dedupe in Collect drops it when it coincides with the flat spread.
    if (Machine.Topo)
      CollectLayout(synthesis::clusteredSpreadLayout(Plan, Machine));
    for (synthesis::KeyedLayout &KL : synthesis::randomKeyedLayouts(
             Plan, Prog, Machine.NumCores, Opts.InitialCandidates, R))
      Collect(std::move(KL));
  }
  EvaluateBatch();
  if (Pool.empty()) {
    CollectLayout(synthesis::randomLayout(Plan, Machine.NumCores, R));
    EvaluateBatch();
  }

  auto ByEstimate = [](const Candidate &A, const Candidate &B) {
    return A.sim().EstimatedCycles < B.sim().EstimatedCycles;
  };
  std::sort(Pool.begin(), Pool.end(), ByEstimate);
  Result.Best = Pool.front().L;
  Result.BestEstimate = Pool.front().sim().EstimatedCycles;

  for (int Iter = 0; Iter < Opts.MaxIterations; ++Iter) {
    ++Result.Iterations;

    // Probabilistic pruning: good candidates survive with high
    // probability, poor ones with low probability; the best always stays.
    std::vector<Candidate> Survivors;
    for (size_t I = 0; I < Pool.size(); ++I) {
      bool GoodHalf = I < (Pool.size() + 1) / 2;
      double P = GoodHalf ? Opts.KeepBestProb : Opts.KeepPoorProb;
      if (I == 0 || R.nextBool(P))
        Survivors.push_back(std::move(Pool[I]));
    }
    Pool = std::move(Survivors);

    // Directed + random neighbor generation (driver thread: this is where
    // the RNG draws happen), then one parallel evaluation of the fresh
    // batch.
    std::vector<Layout> Fresh;
    for (const Candidate &C : Pool) {
      if (Opts.UseDirectedMoves) {
        std::vector<Layout> Directed = directedMoves(
            C, Machine.NumCores, R, Opts.NeighborsPerCandidate);
        for (Layout &L : Directed)
          Fresh.push_back(std::move(L));
      }
      if (Opts.UseRebalanceMoves)
        if (std::optional<Layout> Move =
                rebalanceMove(C, Machine.NumCores, R))
          Fresh.push_back(std::move(*Move));
      // Keep exploring even when the critical path offers nothing.
      Fresh.push_back(randomMove(C.L, Machine.NumCores, R));
    }

    Cycles PrevBest = Result.BestEstimate;
    for (Layout &L : Fresh)
      CollectLayout(std::move(L));
    EvaluateBatch();

    std::sort(Pool.begin(), Pool.end(), ByEstimate);
    if (Pool.size() > Opts.MaxPool)
      Pool.resize(Opts.MaxPool);

    if (Pool.front().sim().EstimatedCycles < Result.BestEstimate) {
      Result.BestEstimate = Pool.front().sim().EstimatedCycles;
      Result.Best = Pool.front().L;
    }

    // Stop when the iteration brought no improvement, except for a
    // probabilistic escape from local maxima.
    if (Result.BestEstimate >= PrevBest && !R.nextBool(Opts.ContinueProb))
      break;
  }
  return Result;
}
