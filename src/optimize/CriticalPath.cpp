//===- optimize/CriticalPath.cpp - Trace critical path analysis -----------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "optimize/CriticalPath.h"

#include "support/Dot.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace bamboo;
using namespace bamboo::optimize;
using machine::Cycles;

std::vector<int> CriticalPathResult::resourceDelayed() const {
  std::vector<int> Out;
  for (const PathStep &S : Steps)
    if (S.Wait == WaitKind::Resource)
      Out.push_back(S.TraceId);
  return Out;
}

CriticalPathResult bamboo::optimize::computeCriticalPath(
    const std::vector<schedsim::TraceTask> &Trace) {
  CriticalPathResult Result;
  if (Trace.empty())
    return Result;

  // Predecessor of each task on its own core (the previous completion).
  // Trace ids are assigned in start order, so a linear scan suffices.
  std::map<int, int> LastOnCore; // core -> trace id
  std::vector<int> CorePred(Trace.size(), -1);
  for (const schedsim::TraceTask &T : Trace) {
    auto It = LastOnCore.find(T.Core);
    if (It != LastOnCore.end())
      CorePred[static_cast<size_t>(T.Id)] = It->second;
    LastOnCore[T.Core] = T.Id;
  }

  // The critical predecessor of task T:
  //  - if T.Start > T.Ready, T waited for the core: the previous task on
  //    the core is the binding constraint (resource edge);
  //  - otherwise the data dependence that arrived last binds (scheduling
  //    edge), unless T started the whole computation.
  auto FindEnd = [&]() {
    int Best = 0;
    for (const schedsim::TraceTask &T : Trace)
      if (T.End > Trace[static_cast<size_t>(Best)].End)
        Best = T.Id;
    return Best;
  };

  std::vector<PathStep> Reversed;
  int Cur = FindEnd();
  Result.Length = Trace[static_cast<size_t>(Cur)].End;
  while (Cur >= 0) {
    const schedsim::TraceTask &T = Trace[static_cast<size_t>(Cur)];
    PathStep Step;
    Step.TraceId = Cur;
    int Next = -1;
    if (T.Start > T.Ready && CorePred[static_cast<size_t>(Cur)] >= 0) {
      Step.Wait = WaitKind::Resource;
      Next = CorePred[static_cast<size_t>(Cur)];
    } else {
      Step.Wait = WaitKind::None;
      // Latest-arriving data dependence.
      Cycles BestArrival = 0;
      for (size_t D = 0; D < T.DepIds.size(); ++D) {
        if (T.DepIds[D] < 0)
          continue;
        if (T.DepArrivals[D] >= BestArrival) {
          BestArrival = T.DepArrivals[D];
          Next = T.DepIds[D];
        }
      }
    }
    Reversed.push_back(Step);
    Cur = Next;
    // Defensive: traces are acyclic by construction (producers complete
    // strictly before consumers start), so this loop terminates.
    if (Reversed.size() > Trace.size())
      break;
  }
  Result.Steps.assign(Reversed.rbegin(), Reversed.rend());
  return Result;
}

std::string bamboo::optimize::traceToDot(
    const ir::Program &Prog, const std::vector<schedsim::TraceTask> &Trace,
    const CriticalPathResult &Path) {
  DotWriter Dot("trace");
  std::vector<bool> OnPath(Trace.size(), false);
  for (const PathStep &S : Path.Steps)
    OnPath[static_cast<size_t>(S.TraceId)] = true;

  for (const schedsim::TraceTask &T : Trace) {
    std::string Label = formatString(
        "%s\\ncore %d  [%llu, %llu]", Prog.taskOf(T.Task).Name.c_str(),
        T.Core, static_cast<unsigned long long>(T.Start),
        static_cast<unsigned long long>(T.End));
    std::string Extra = "shape=box";
    if (OnPath[static_cast<size_t>(T.Id)])
      Extra += ", style=dashed";
    Dot.addNode(formatString("t%d", T.Id), Label, Extra);
  }
  for (const schedsim::TraceTask &T : Trace)
    for (size_t D = 0; D < T.DepIds.size(); ++D)
      if (T.DepIds[D] >= 0)
        Dot.addEdge(formatString("t%d", T.DepIds[D]),
                    formatString("t%d", T.Id),
                    formatString("%llu",
                                 static_cast<unsigned long long>(
                                     T.DepArrivals[D])));
  return Dot.str();
}
