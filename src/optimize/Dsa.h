//===- optimize/Dsa.h - Directed simulated annealing ------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Directed simulated annealing (Section 4.5): iteratively improves a set
/// of candidate layouts. Each iteration simulates the candidates, prunes
/// them probabilistically (good layouts survive with high probability,
/// poor ones with low probability), and generates new candidates directed
/// by the critical path analysis of the best simulations:
///
///  - a critical task that started later than its data was ready was
///    delayed by a resource conflict; if some core was idle over that
///    window, migrate the task's placed instance there;
///  - when no core is spare, migrate *non-key* critical tasks (those whose
///    output the next critical task does not consume) away from the cores
///    where they delay key tasks.
///
/// The loop ends when an iteration fails to improve the best estimate,
/// subject to a probabilistic restart (local-maximum escape), exactly as
/// described in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_OPTIMIZE_DSA_H
#define BAMBOO_OPTIMIZE_DSA_H

#include "optimize/CriticalPath.h"
#include "schedsim/SchedSim.h"
#include "synthesis/CoreGroups.h"
#include "synthesis/MappingSearch.h"

#include <optional>
#include <vector>

namespace bamboo::optimize {

struct DsaOptions {
  /// Random starting candidates when none are supplied.
  size_t InitialCandidates = 8;
  /// Hard iteration cap (the probabilistic stop usually fires earlier).
  int MaxIterations = 40;
  /// Directed + random moves generated per surviving candidate.
  int NeighborsPerCandidate = 8;
  /// Survival probability of the better half of candidates.
  double KeepBestProb = 0.95;
  /// Survival probability of the poorer half.
  double KeepPoorProb = 0.15;
  /// Probability of continuing after a non-improving iteration.
  double ContinueProb = 0.85;
  /// Candidate-pool cap per iteration (best retained).
  size_t MaxPool = 16;
  uint64_t Seed = 12345;
  /// Ablation switches: critical-path-directed migration moves and
  /// busiest-to-idlest rebalancing moves (random perturbation always on).
  bool UseDirectedMoves = true;
  bool UseRebalanceMoves = true;
};

struct DsaResult {
  machine::Layout Best;
  machine::Cycles BestEstimate = 0;
  int Iterations = 0;
  uint64_t Evaluations = 0;
};

/// Runs DSA for \p Plan on \p Machine. When \p Starts is provided those
/// layouts seed the search; otherwise random mappings do.
DsaResult runDsa(const ir::Program &Prog, const analysis::Cstg &Graph,
                 const profile::Profile &Prof,
                 const profile::SimHints &Hints,
                 const machine::MachineConfig &Machine,
                 const synthesis::GroupPlan &Plan, const DsaOptions &Opts,
                 const std::vector<machine::Layout> *Starts = nullptr);

} // namespace bamboo::optimize

#endif // BAMBOO_OPTIMIZE_DSA_H
