//===- optimize/Dsa.h - Directed simulated annealing ------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Directed simulated annealing (Section 4.5): iteratively improves a set
/// of candidate layouts. Each iteration simulates the candidates, prunes
/// them probabilistically (good layouts survive with high probability,
/// poor ones with low probability), and generates new candidates directed
/// by the critical path analysis of the best simulations:
///
///  - a critical task that started later than its data was ready was
///    delayed by a resource conflict; if some core was idle over that
///    window, migrate the task's placed instance there;
///  - when no core is spare, migrate *non-key* critical tasks (those whose
///    output the next critical task does not consume) away from the cores
///    where they delay key tasks.
///
/// The loop ends when an iteration fails to improve the best estimate,
/// subject to a probabilistic restart (local-maximum escape), exactly as
/// described in the paper.
///
/// Candidate evaluation (scheduling simulation + critical path) is pure
/// and dominates the search cost, so it fans out over a ThreadPool when
/// DsaOptions::Jobs > 1. All layout generation and every random draw stay
/// on the calling thread and evaluation results are merged in submission
/// order, so the DsaResult is bit-identical for every Jobs value.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_OPTIMIZE_DSA_H
#define BAMBOO_OPTIMIZE_DSA_H

#include "optimize/CriticalPath.h"
#include "schedsim/SchedSim.h"
#include "synthesis/CoreGroups.h"
#include "synthesis/MappingSearch.h"

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace bamboo::optimize {

struct DsaOptions {
  /// Random starting candidates when none are supplied.
  size_t InitialCandidates = 8;
  /// Hard iteration cap (the probabilistic stop usually fires earlier).
  int MaxIterations = 40;
  /// Directed + random moves generated per surviving candidate.
  int NeighborsPerCandidate = 8;
  /// Survival probability of the better half of candidates.
  double KeepBestProb = 0.95;
  /// Survival probability of the poorer half.
  double KeepPoorProb = 0.15;
  /// Probability of continuing after a non-improving iteration.
  double ContinueProb = 0.85;
  /// Candidate-pool cap per iteration (best retained).
  size_t MaxPool = 16;
  uint64_t Seed = 12345;
  /// Ablation switches: critical-path-directed migration moves and
  /// busiest-to-idlest rebalancing moves (random perturbation always on).
  bool UseDirectedMoves = true;
  bool UseRebalanceMoves = true;
  /// Worker threads for candidate evaluation; <= 1 evaluates serially on
  /// the calling thread. The search result does not depend on this value.
  int Jobs = 1;
};

struct DsaResult {
  machine::Layout Best;
  machine::Cycles BestEstimate = 0;
  int Iterations = 0;
  uint64_t Evaluations = 0;
};

/// One evaluated layout: the scheduling simulation and the critical path
/// derived from its trace. Shared (never copied) between the candidate
/// pool and the memoization cache, because the trace is large.
struct DsaEvaluation {
  schedsim::SimResult Sim;
  CriticalPathResult Path;
};

/// Cross-run memoization cache for candidate evaluations, keyed by
/// Layout::isoKey — the same isomorphism key the search already uses to
/// dedupe pool admission, so two layouts that differ only by a core
/// renumbering share one simulation. Pass the same DsaMemo to successive
/// runDsa calls (e.g. multi-start studies like Figure 10) and re-generated
/// layouts are not re-simulated. Single-threaded use only: runDsa touches
/// the cache exclusively from the calling thread.
struct DsaMemo {
  std::unordered_map<std::string, std::shared_ptr<const DsaEvaluation>>
      Results;
  /// Cache statistics across all runs sharing this memo.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Entries hold full traces, so growth is bounded: once Results reaches
  /// this size, new evaluations are no longer inserted (lookups still
  /// hit).
  size_t MaxEntries = 4096;
};

/// Runs DSA for \p Plan on \p Machine. When \p Starts is provided those
/// layouts seed the search; otherwise random mappings do. \p Memo, when
/// non-null, memoizes evaluations across calls (see DsaMemo).
DsaResult runDsa(const ir::Program &Prog, const analysis::Cstg &Graph,
                 const profile::Profile &Prof,
                 const profile::SimHints &Hints,
                 const machine::MachineConfig &Machine,
                 const synthesis::GroupPlan &Plan, const DsaOptions &Opts,
                 const std::vector<machine::Layout> *Starts = nullptr,
                 DsaMemo *Memo = nullptr);

} // namespace bamboo::optimize

#endif // BAMBOO_OPTIMIZE_DSA_H
