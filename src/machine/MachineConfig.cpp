//===- machine/MachineConfig.cpp - Virtual many-core machine model --------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineConfig.h"

#include "machine/Topology.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

using namespace bamboo::machine;

int MachineConfig::meshWidth() const {
  if (Topo)
    return Topo->localMeshWidth();
  if (MeshWidth > 0)
    return MeshWidth;
  int W = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(NumCores))));
  return W > 0 ? W : 1;
}

int MachineConfig::hopDistance(int CoreA, int CoreB) const {
  assert(CoreA >= 0 && CoreA < NumCores && "core out of range");
  assert(CoreB >= 0 && CoreB < NumCores && "core out of range");
  if (Topo)
    return Topo->hopDistance(CoreA, CoreB);
  int W = meshWidth();
  int Ax = CoreA % W, Ay = CoreA / W;
  int Bx = CoreB % W, By = CoreB / W;
  return std::abs(Ax - Bx) + std::abs(Ay - By);
}

Cycles MachineConfig::transferLatency(int FromCore, int ToCore) const {
  if (FromCore == ToCore)
    return 0;
  if (Topo)
    return MsgBaseLatency + Topo->transferExtra(FromCore, ToCore);
  return MsgBaseLatency +
         MsgPerHop * static_cast<Cycles>(hopDistance(FromCore, ToCore));
}

std::string MachineConfig::topologySpec() const {
  return Topo ? Topo->spec() : std::string();
}

MachineConfig MachineConfig::singleCore() {
  MachineConfig C;
  C.NumCores = 1;
  return C;
}

MachineConfig MachineConfig::tilePro64() {
  MachineConfig C;
  C.NumCores = 62;
  C.MeshWidth = 8;
  return C;
}

MachineConfig MachineConfig::hierarchical(
    std::shared_ptr<const Topology> Topo) {
  assert(Topo && "hierarchical() needs a topology");
  MachineConfig C = tilePro64();
  C.NumCores = Topo->totalCores();
  C.MeshWidth = 0;
  C.Topo = std::move(Topo);
  return C;
}
