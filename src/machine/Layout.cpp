//===- machine/Layout.cpp - Task-to-core placements -----------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "machine/Layout.h"

#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace bamboo;
using namespace bamboo::machine;

std::vector<int> Layout::instancesOf(ir::TaskId Task) const {
  std::vector<int> Out;
  for (size_t I = 0; I < Instances.size(); ++I)
    if (Instances[I].Task == Task)
      Out.push_back(static_cast<int>(I));
  return Out;
}

bool Layout::covers(const ir::Program &Prog) const {
  std::vector<bool> Seen(Prog.tasks().size(), false);
  for (const TaskInstance &Inst : Instances) {
    if (Inst.Core < 0 || Inst.Core >= NumCores)
      return false;
    if (Inst.Task < 0 ||
        static_cast<size_t>(Inst.Task) >= Prog.tasks().size())
      return false;
    Seen[static_cast<size_t>(Inst.Task)] = true;
  }
  return std::all_of(Seen.begin(), Seen.end(), [](bool B) { return B; });
}

std::vector<int> Layout::usedCores() const {
  std::vector<int> Cores;
  for (const TaskInstance &Inst : Instances)
    Cores.push_back(Inst.Core);
  std::sort(Cores.begin(), Cores.end());
  Cores.erase(std::unique(Cores.begin(), Cores.end()), Cores.end());
  return Cores;
}

std::string Layout::isoKey(const ir::Program &Prog) const {
  // Group tasks per core, canonicalize each core's multiset of task names,
  // then sort the per-core strings: any renumbering of cores yields the
  // same key.
  std::map<int, std::vector<std::string>> PerCore;
  for (const TaskInstance &Inst : Instances)
    PerCore[Inst.Core].push_back(Prog.taskOf(Inst.Task).Name);
  std::vector<std::string> CoreKeys;
  for (auto &[Core, Names] : PerCore) {
    (void)Core;
    std::sort(Names.begin(), Names.end());
    CoreKeys.push_back(join(Names, "+"));
  }
  std::sort(CoreKeys.begin(), CoreKeys.end());
  return formatString("%d|", NumCores) + join(CoreKeys, "/");
}

std::string Layout::str(const ir::Program &Prog) const {
  std::string Out = formatString("layout on %d cores\n", NumCores);
  for (int Core = 0; Core < NumCores; ++Core) {
    std::vector<std::string> Names;
    for (const TaskInstance &Inst : Instances)
      if (Inst.Core == Core)
        Names.push_back(Prog.taskOf(Inst.Task).Name);
    if (Names.empty())
      continue;
    Out += formatString("  core %d: %s\n", Core, join(Names, ", ").c_str());
  }
  return Out;
}

Layout Layout::allOnOneCore(const ir::Program &Prog) {
  Layout L;
  L.NumCores = 1;
  for (size_t T = 0; T < Prog.tasks().size(); ++T)
    L.Instances.push_back(
        TaskInstance{static_cast<ir::TaskId>(T), /*Core=*/0});
  return L;
}
