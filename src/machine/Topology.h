//===- machine/Topology.h - Hierarchical machine topology -------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hierarchical generalization of the flat TILEPro64 mesh: a machine
/// is CHIPS x CLUSTERS x CORES — some number of chips, each holding
/// clusters of mesh-connected cores. Cores are numbered contiguously:
/// core ids [0, CoresPerCluster) are cluster 0 of chip 0, the next
/// CoresPerCluster ids are cluster 1, and so on, clusters filling chips
/// in order. Within a cluster the cores form a near-square mesh exactly
/// like the flat machine (width = ceil(sqrt(CoresPerCluster))).
///
/// Distances decompose per level — local mesh hops, cluster crossings,
/// chip crossings — and each level carries its own per-hop latency, so a
/// cross-chip transfer is much more expensive than a neighbour hop
/// (MuchiSim-style per-level interconnect costs). The degenerate 1x1xN
/// topology reproduces the flat machine's hop distances and, with the
/// default per-hop latencies, its transfer latencies bit-for-bit.
///
/// Every core's (chip, cluster, x, y) coordinate is precomputed once at
/// construction, so the hot send-path queries — hopDistance and the
/// transfer-latency component beyond the base — are O(1) table lookups
/// with no per-call division chains.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_MACHINE_TOPOLOGY_H
#define BAMBOO_MACHINE_TOPOLOGY_H

#include "machine/MachineConfig.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace bamboo::machine {

/// A chips-of-clusters-of-cores machine shape with per-level hop
/// latencies. Immutable after construction; engines share one instance
/// through MachineConfig's shared_ptr.
class Topology {
public:
  /// Default per-level hop latencies for specs that omit them. The mesh
  /// hop matches MachineConfig::MsgPerHop so 1x1xN is latency-identical
  /// to the flat machine; cluster crossings cost a few mesh hops, chip
  /// crossings a SERDES-scale multiple.
  static constexpr Cycles DefaultChipHop = 200;
  static constexpr Cycles DefaultClusterHop = 24;
  static constexpr Cycles DefaultMeshHop = 8;

  /// Largest accepted total core count (matches the driver's --cores
  /// ceiling; keeps the per-core coordinate table allocation sane).
  static constexpr int MaxTotalCores = 1 << 20;

  Topology(int Chips, int ClustersPerChip, int CoresPerCluster,
           Cycles ChipHop = DefaultChipHop,
           Cycles ClusterHop = DefaultClusterHop,
           Cycles MeshHop = DefaultMeshHop);

  /// Parses "CHIPSxCLUSTERSxCORES[:chipHop,clusterHop,meshHop]" (e.g.
  /// "4x4x64" or "4x4x64:200,24,8"). On failure returns nullptr and sets
  /// \p Err.
  static std::shared_ptr<const Topology> parse(const std::string &Spec,
                                               std::string &Err);

  int chips() const { return NumChips; }
  int clustersPerChip() const { return ClustersPer; }
  int coresPerCluster() const { return CoresPer; }
  int totalCores() const { return Total; }
  Cycles chipHop() const { return ChipHopLat; }
  Cycles clusterHop() const { return ClusterHopLat; }
  Cycles meshHop() const { return MeshHopLat; }

  /// Width of the per-cluster mesh (ceil(sqrt(CoresPerCluster))).
  int localMeshWidth() const { return MeshW; }

  /// Global cluster index of a core, in [0, chips * clustersPerChip).
  int clusterOf(int Core) const {
    return Locs[static_cast<size_t>(Core)].Chip * ClustersPer +
           Locs[static_cast<size_t>(Core)].Cluster;
  }
  int chipOf(int Core) const {
    return Locs[static_cast<size_t>(Core)].Chip;
  }

  /// Per-level Manhattan distance: local mesh hops within the cluster
  /// grid plus one hop per cluster crossed plus one per chip crossed.
  /// Symmetric; zero only for A == B or same-coordinate cores. For 1x1xN
  /// this is exactly the flat machine's mesh Manhattan distance.
  int hopDistance(int CoreA, int CoreB) const {
    const CoreLoc &A = Locs[static_cast<size_t>(CoreA)];
    const CoreLoc &B = Locs[static_cast<size_t>(CoreB)];
    return absDiff(A.Chip, B.Chip) + absDiff(A.Cluster, B.Cluster) +
           absDiff(A.X, B.X) + absDiff(A.Y, B.Y);
  }

  /// The distance-dependent transfer-latency component (the caller adds
  /// the base latency): per-level hop counts weighted by the per-level
  /// hop latencies. O(1) — pure table lookups and multiplies.
  Cycles transferExtra(int CoreA, int CoreB) const {
    const CoreLoc &A = Locs[static_cast<size_t>(CoreA)];
    const CoreLoc &B = Locs[static_cast<size_t>(CoreB)];
    return ChipHopLat * static_cast<Cycles>(absDiff(A.Chip, B.Chip)) +
           ClusterHopLat * static_cast<Cycles>(absDiff(A.Cluster, B.Cluster)) +
           MeshHopLat *
               static_cast<Cycles>(absDiff(A.X, B.X) + absDiff(A.Y, B.Y));
  }

  /// Canonical spec string, always in the full
  /// "CxKxN:chipHop,clusterHop,meshHop" form. Part of checkpoint identity
  /// (exec::RunIdentity): equal specs mean equal machines.
  std::string spec() const;

private:
  struct CoreLoc {
    int32_t Chip = 0;
    int32_t Cluster = 0; ///< Cluster index within the chip.
    int32_t X = 0;       ///< Column in the cluster mesh.
    int32_t Y = 0;       ///< Row in the cluster mesh.
  };

  static int absDiff(int32_t A, int32_t B) { return A < B ? B - A : A - B; }

  int NumChips;
  int ClustersPer;
  int CoresPer;
  int Total;
  int MeshW;
  Cycles ChipHopLat;
  Cycles ClusterHopLat;
  Cycles MeshHopLat;
  /// Precomputed per-core coordinates (the div/mod chains paid once).
  std::vector<CoreLoc> Locs;
};

} // namespace bamboo::machine

#endif // BAMBOO_MACHINE_TOPOLOGY_H
