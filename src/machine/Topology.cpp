//===- machine/Topology.cpp - Hierarchical machine topology ---------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "machine/Topology.h"

#include "support/Format.h"

#include <cmath>

using namespace bamboo;
using namespace bamboo::machine;

Topology::Topology(int Chips, int ClustersPerChip, int CoresPerCluster,
                   Cycles ChipHop, Cycles ClusterHop, Cycles MeshHop)
    : NumChips(Chips), ClustersPer(ClustersPerChip), CoresPer(CoresPerCluster),
      Total(Chips * ClustersPerChip * CoresPerCluster),
      ChipHopLat(ChipHop), ClusterHopLat(ClusterHop), MeshHopLat(MeshHop) {
  assert(Chips >= 1 && ClustersPerChip >= 1 && CoresPerCluster >= 1 &&
         "every topology level needs at least one element");
  assert(Total <= MaxTotalCores && "topology exceeds the core ceiling");
  MeshW = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(CoresPer))));
  if (MeshW < 1)
    MeshW = 1;
  Locs.resize(static_cast<size_t>(Total));
  int Core = 0;
  for (int Chip = 0; Chip < NumChips; ++Chip)
    for (int Cluster = 0; Cluster < ClustersPer; ++Cluster)
      for (int Local = 0; Local < CoresPer; ++Local, ++Core) {
        CoreLoc &Loc = Locs[static_cast<size_t>(Core)];
        Loc.Chip = Chip;
        Loc.Cluster = Cluster;
        Loc.X = Local % MeshW;
        Loc.Y = Local / MeshW;
      }
}

std::string Topology::spec() const {
  return formatString("%dx%dx%d:%llu,%llu,%llu", NumChips, ClustersPer,
                      CoresPer, static_cast<unsigned long long>(ChipHopLat),
                      static_cast<unsigned long long>(ClusterHopLat),
                      static_cast<unsigned long long>(MeshHopLat));
}

std::shared_ptr<const Topology> Topology::parse(const std::string &Spec,
                                                std::string &Err) {
  // CHIPSxCLUSTERSxCORES[:chipHop,clusterHop,meshHop]
  const char *Usage =
      "expected CHIPSxCLUSTERSxCORES[:chipHop,clusterHop,meshHop], "
      "e.g. 4x4x64 or 4x4x64:200,24,8";
  auto Fail = [&](const std::string &Why) -> std::shared_ptr<const Topology> {
    Err = formatString("bad topology '%s': %s (%s)", Spec.c_str(),
                       Why.c_str(), Usage);
    return nullptr;
  };

  std::string Dims = Spec;
  std::string Hops;
  if (size_t Colon = Spec.find(':'); Colon != std::string::npos) {
    Dims = Spec.substr(0, Colon);
    Hops = Spec.substr(Colon + 1);
  }

  auto parseFields = [](const std::string &S, char Sep,
                        std::vector<unsigned long long> &Out) -> bool {
    size_t Pos = 0;
    while (true) {
      size_t End = S.find(Sep, Pos);
      std::string Field =
          S.substr(Pos, End == std::string::npos ? End : End - Pos);
      if (Field.empty() ||
          Field.find_first_not_of("0123456789") != std::string::npos ||
          Field.size() > 9)
        return false;
      Out.push_back(std::stoull(Field));
      if (End == std::string::npos)
        return true;
      Pos = End + 1;
    }
  };

  std::vector<unsigned long long> D;
  if (!parseFields(Dims, 'x', D) || D.size() != 3)
    return Fail("need exactly three 'x'-separated level sizes");
  if (D[0] < 1 || D[1] < 1 || D[2] < 1)
    return Fail("every level size must be at least 1");
  unsigned long long Total = D[0] * D[1] * D[2];
  if (Total > static_cast<unsigned long long>(MaxTotalCores))
    return Fail(formatString("%llu total cores exceeds the %d-core ceiling",
                             Total, MaxTotalCores));

  Cycles ChipHop = DefaultChipHop;
  Cycles ClusterHop = DefaultClusterHop;
  Cycles MeshHop = DefaultMeshHop;
  if (!Hops.empty()) {
    std::vector<unsigned long long> H;
    if (!parseFields(Hops, ',', H) || H.size() != 3)
      return Fail("need exactly three comma-separated hop latencies");
    ChipHop = H[0];
    ClusterHop = H[1];
    MeshHop = H[2];
  }
  return std::make_shared<const Topology>(
      static_cast<int>(D[0]), static_cast<int>(D[1]), static_cast<int>(D[2]),
      ChipHop, ClusterHop, MeshHop);
}
