//===- machine/Layout.h - Task-to-core placements ---------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Layout assigns task instantiations to cores (Figure 4 of the paper).
/// A task may have several instantiations (produced by the data
/// parallelization and rate matching rules of Section 4.3.3); objects that
/// can trigger such a task are distributed over its instances round-robin,
/// or by tag hash when the task's parameters are tag-linked.
///
/// Layouts are produced by the synthesis search, evaluated by the
/// scheduling simulator, mutated by the directed-simulated-annealing
/// optimizer, and finally executed by the runtime — this type is the
/// common currency among those stages.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_MACHINE_LAYOUT_H
#define BAMBOO_MACHINE_LAYOUT_H

#include "ir/Program.h"
#include "machine/MachineConfig.h"

#include <string>
#include <vector>

namespace bamboo::machine {

/// One placed instantiation of a task.
struct TaskInstance {
  ir::TaskId Task = ir::InvalidId;
  int Core = 0;
};

/// A complete placement of the application on a machine.
struct Layout {
  int NumCores = 1;
  std::vector<TaskInstance> Instances;

  /// Indices (into Instances) of the instantiations of \p Task, in stable
  /// order.
  std::vector<int> instancesOf(ir::TaskId Task) const;

  /// True if every task of \p Prog has at least one instantiation and all
  /// cores are within range.
  bool covers(const ir::Program &Prog) const;

  /// Cores that host at least one instance.
  std::vector<int> usedCores() const;

  /// A canonical string key treating the layout as a mapping for
  /// isomorphism-duplicate detection in the search (two layouts that
  /// differ only by a core renumbering produce the same key).
  std::string isoKey(const ir::Program &Prog) const;

  /// A human-readable multi-line description (Figure-4 style).
  std::string str(const ir::Program &Prog) const;

  /// Every task once, all on core 0 of a single-core machine (profiling
  /// and 1-core baseline runs).
  static Layout allOnOneCore(const ir::Program &Prog);
};

} // namespace bamboo::machine

#endif // BAMBOO_MACHINE_LAYOUT_H
