//===- machine/MachineConfig.h - Virtual many-core machine model -*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual many-core machine that stands in for the paper's TILEPro64.
/// It models exactly the factors the Bamboo pipeline depends on:
///
///  - a number of usable cores (the paper uses 62 of 64, reserving two for
///    the PCI bus);
///  - an on-chip mesh network: objects transferred between cores pay a
///    base latency plus a per-hop cost over the Manhattan distance of the
///    cores' mesh coordinates;
///  - fixed per-invocation runtime overheads (dispatch and locking), which
///    produce the small 1-core Bamboo-vs-C overheads of Section 5.5.
///
/// Task bodies execute for real on the host; their *cost* in virtual
/// cycles comes from explicit work metering (TaskContext::charge), which
/// both the Bamboo versions and the sequential C baselines share, so
/// speedups are directly comparable — see DESIGN.md, substitution table.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_MACHINE_MACHINECONFIG_H
#define BAMBOO_MACHINE_MACHINECONFIG_H

#include <cstdint>
#include <memory>
#include <string>

namespace bamboo::machine {

/// Virtual cycle count.
using Cycles = uint64_t;

class Topology;

/// Static description of the target processor.
struct MachineConfig {
  /// Usable cores.
  int NumCores = 62;

  /// Mesh width used for Manhattan-distance routing; 0 means "derive a
  /// near-square mesh from NumCores".
  int MeshWidth = 0;

  /// Fixed cost of transferring one object reference between two distinct
  /// cores, before the per-hop component.
  Cycles MsgBaseLatency = 60;

  /// Additional latency per mesh hop.
  Cycles MsgPerHop = 8;

  /// Per-invocation scheduling cost paid by the executing core (dequeue,
  /// guard re-check, dispatch).
  Cycles DispatchOverhead = 40;

  /// Cost of acquiring/releasing one lock group.
  Cycles LockOverhead = 12;

  /// Cost of enqueueing an outgoing object on the sender core.
  Cycles SendOverhead = 10;

  /// Payload bytes charged per object message (a reference plus header on
  /// the mesh). Used by the tracing/metrics layer to report message-byte
  /// volume; it does not affect latency.
  uint32_t MsgBytesPerObject = 64;

  /// Resilience protocol timings (used when a FaultPlan is active; see
  /// src/resilience). A dropped transfer is detected after AckTimeout
  /// cycles and retransmitted with exponential backoff
  /// (RetryBackoffBase << attempt); after MaxSendRetries failed attempts
  /// the sender escalates to the slow verified channel.
  Cycles AckTimeout = 300;
  Cycles RetryBackoffBase = 100;
  int MaxSendRetries = 8;

  /// Memory-system contention: task bodies slow down by up to this
  /// fraction when every other core is busy (linear in the active-core
  /// fraction). Only the real machine exhibits it — the high-level
  /// scheduling simulator does not model it, which reproduces the paper's
  /// observation that 62-core estimates run a few percent low because
  /// "the execution of individual tasks slowed down" under load
  /// (Section 5.2).
  double LoadSlowdown = 0.06;

  /// Hierarchical machine shape (chips x clusters x cores, per-level hop
  /// latencies — see machine/Topology.h). Null means the historical flat
  /// mesh: every default run keeps the exact pre-topology distance and
  /// latency code paths. When set, NumCores must equal the topology's
  /// total core count, and hopDistance/transferLatency delegate to it.
  std::shared_ptr<const Topology> Topo;

  /// Returns the effective mesh width (the per-cluster mesh width when a
  /// topology is attached).
  int meshWidth() const;

  /// Manhattan distance between two cores: flat-mesh Manhattan distance,
  /// or the topology's per-level distance when one is attached.
  int hopDistance(int CoreA, int CoreB) const;

  /// Transfer latency for one object between cores (zero for the same
  /// core: objects stay in the core's local memory).
  Cycles transferLatency(int FromCore, int ToCore) const;

  /// The attached topology's canonical spec, or "" for the flat mesh.
  /// Part of checkpoint run identity.
  std::string topologySpec() const;

  /// A machine with a single core and no network (used for profiling runs
  /// and 1-core measurements).
  static MachineConfig singleCore();

  /// The evaluation machine of the paper: 62 usable cores on an 8x8 mesh.
  static MachineConfig tilePro64();

  /// A tilePro64-derived machine reshaped to \p Topo (NumCores adopts the
  /// topology's total core count).
  static MachineConfig hierarchical(std::shared_ptr<const Topology> Topo);
};

} // namespace bamboo::machine

#endif // BAMBOO_MACHINE_MACHINECONFIG_H
