//===- frontend/Ast.h - Bamboo abstract syntax trees ------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for the Bamboo language: the task-declaration
/// grammar of Figure 5 (flags, tags, guards, taskexit) plus the Java-like
/// imperative subset used in task and method bodies.
///
/// Nodes carry `Resolved*` fields that semantic analysis fills in (local
/// slots, field indices, class ids, types); the interpreter and the
/// disjointness analysis rely on those annotations. Dispatch is kind-based
/// (no RTTI), following LLVM conventions.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_FRONTEND_AST_H
#define BAMBOO_FRONTEND_AST_H

#include "frontend/SourceLoc.h"
#include "ir/Ids.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bamboo::frontend::ast {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// The base kinds a value can have after resolution. Arrays are represented
/// as a base kind plus a dimension count (Depth > 0).
enum class BaseKind {
  Invalid,
  Void,
  Int,
  Double,
  Bool,
  String,
  Null,  // The type of the `null` literal; assignable to any reference.
  Class, // A user class; see RType::Cls.
  Tag,   // A tag instance (only locals declared via `tag t = new tag(...)`).
};

/// A resolved type: base kind, class id when Base == Class, and array depth.
struct RType {
  BaseKind Base = BaseKind::Invalid;
  ir::ClassId Cls = ir::InvalidId;
  int Depth = 0;

  bool isInvalid() const { return Base == BaseKind::Invalid; }
  bool isArray() const { return Depth > 0; }
  bool isReference() const {
    return isArray() || Base == BaseKind::Class || Base == BaseKind::String ||
           Base == BaseKind::Null;
  }
  bool isNumeric() const {
    return Depth == 0 && (Base == BaseKind::Int || Base == BaseKind::Double);
  }

  /// Element type of an array (one dimension stripped).
  RType element() const { return RType{Base, Cls, Depth - 1}; }

  static RType invalid() { return RType{}; }
  static RType voidTy() { return RType{BaseKind::Void, ir::InvalidId, 0}; }
  static RType intTy() { return RType{BaseKind::Int, ir::InvalidId, 0}; }
  static RType doubleTy() { return RType{BaseKind::Double, ir::InvalidId, 0}; }
  static RType boolTy() { return RType{BaseKind::Bool, ir::InvalidId, 0}; }
  static RType stringTy() { return RType{BaseKind::String, ir::InvalidId, 0}; }
  static RType nullTy() { return RType{BaseKind::Null, ir::InvalidId, 0}; }
  static RType classTy(ir::ClassId C) {
    return RType{BaseKind::Class, C, 0};
  }
  static RType tagTy() { return RType{BaseKind::Tag, ir::InvalidId, 0}; }

  bool operator==(const RType &O) const {
    return Base == O.Base && Cls == O.Cls && Depth == O.Depth;
  }
};

/// A syntactic type reference, resolved by Sema into an RType.
struct TypeRef {
  enum class Kind { Void, Int, Double, Bool, String, Class } K = Kind::Void;
  std::string ClassName; // For Kind::Class.
  int ArrayDepth = 0;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,
  DoubleLit,
  BoolLit,
  StringLit,
  NullLit,
  VarRef,
  FieldAccess,
  Index,
  Call,
  NewObject,
  NewArray,
  Unary,
  Binary,
  Assign,
};

/// Built-in functions callable from task/method bodies. `System`, `Math`,
/// and `Bamboo` act as receiver namespaces; string builtins are methods on
/// String values.
enum class BuiltinId {
  None,
  SystemPrintString,
  SystemPrintInt,
  SystemPrintDouble,
  MathSqrt,
  MathAbs,
  MathFabs,
  MathSin,
  MathCos,
  MathExp,
  MathLog,
  MathPow,
  MathFloor,
  MathMax,
  MathMin,
  BambooCharge,   // Bamboo.charge(cycles): add virtual work (see machine/).
  BambooRand,     // Bamboo.rand(bound): deterministic runtime PRNG.
  StringLength,
  StringCharAt,   // returns the character code as int
  StringSubstring,
  StringIndexOf,
  StringEquals,
};

struct Expr {
  explicit Expr(ExprKind K, SourceLoc Loc) : K(K), Loc(Loc) {}
  virtual ~Expr() = default;

  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;

  const ExprKind K;
  SourceLoc Loc;
  /// Filled by Sema.
  RType Ty;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  IntLitExpr(int64_t V, SourceLoc L) : Expr(ExprKind::IntLit, L), Value(V) {}
  int64_t Value;
};

struct DoubleLitExpr : Expr {
  DoubleLitExpr(double V, SourceLoc L)
      : Expr(ExprKind::DoubleLit, L), Value(V) {}
  double Value;
};

struct BoolLitExpr : Expr {
  BoolLitExpr(bool V, SourceLoc L) : Expr(ExprKind::BoolLit, L), Value(V) {}
  bool Value;
};

struct StringLitExpr : Expr {
  StringLitExpr(std::string V, SourceLoc L)
      : Expr(ExprKind::StringLit, L), Value(std::move(V)) {}
  std::string Value;
};

struct NullLitExpr : Expr {
  explicit NullLitExpr(SourceLoc L) : Expr(ExprKind::NullLit, L) {}
};

/// A name reference. Sema classifies it as a local/parameter slot, an
/// implicit-this field, or a builtin namespace (System/Math/Bamboo).
struct VarRefExpr : Expr {
  VarRefExpr(std::string Name, SourceLoc L)
      : Expr(ExprKind::VarRef, L), Name(std::move(Name)) {}
  std::string Name;

  enum class Binding { Unresolved, LocalSlot, SelfField, Namespace };
  Binding Bind = Binding::Unresolved;
  int Slot = -1;       // For LocalSlot (params occupy the first slots).
  int FieldIndex = -1; // For SelfField (methods only).
};

struct FieldAccessExpr : Expr {
  FieldAccessExpr(ExprPtr Base, std::string Field, SourceLoc L)
      : Expr(ExprKind::FieldAccess, L), Base(std::move(Base)),
        Field(std::move(Field)) {}
  ExprPtr Base;
  std::string Field;

  int FieldIndex = -1;    // Resolved field index in the class.
  bool IsArrayLength = false; // `arr.length`.
};

struct IndexExpr : Expr {
  IndexExpr(ExprPtr Base, ExprPtr Idx, SourceLoc L)
      : Expr(ExprKind::Index, L), Base(std::move(Base)),
        Index(std::move(Idx)) {}
  ExprPtr Base;
  ExprPtr Index;
};

struct CallExpr : Expr {
  CallExpr(ExprPtr Base, std::string Method, std::vector<ExprPtr> Args,
           SourceLoc L)
      : Expr(ExprKind::Call, L), Base(std::move(Base)),
        Method(std::move(Method)), Args(std::move(Args)) {}
  /// Receiver; null for receiverless calls to methods of the enclosing
  /// class.
  ExprPtr Base;
  std::string Method;
  std::vector<ExprPtr> Args;

  BuiltinId Builtin = BuiltinId::None;
  ir::ClassId TargetClass = ir::InvalidId; // Class owning the method.
  int MethodIndex = -1;                    // Index into that class's methods.
};

/// One `flagname := bool` initializer in a `new C(...) { ... }` expression.
struct FlagInit {
  std::string Flag;
  bool Value = true;
  SourceLoc Loc;
};

/// One `add tagvar` initializer in a `new C(...) { ... }` expression.
struct TagInit {
  std::string TagVar;
  SourceLoc Loc;

  int Slot = -1;                       // Resolved local slot of the tag var.
  ir::TagTypeId Type = ir::InvalidId;  // Resolved tag type.
};

struct NewObjectExpr : Expr {
  NewObjectExpr(std::string ClassName, std::vector<ExprPtr> Args,
                std::vector<FlagInit> Flags, std::vector<TagInit> Tags,
                SourceLoc L)
      : Expr(ExprKind::NewObject, L), ClassName(std::move(ClassName)),
        Args(std::move(Args)), Flags(std::move(Flags)),
        Tags(std::move(Tags)) {}
  std::string ClassName;
  std::vector<ExprPtr> Args;
  std::vector<FlagInit> Flags;
  std::vector<TagInit> Tags;

  ir::ClassId Class = ir::InvalidId;
  /// Allocation-site id (only for sites inside task bodies with flag
  /// initializers; plain helper allocations get InvalidId).
  ir::SiteId Site = ir::InvalidId;
  /// Constructor method index in the class (-1 when the class has none and
  /// positional args initialize the first fields).
  int CtorIndex = -1;
};

struct NewArrayExpr : Expr {
  NewArrayExpr(TypeRef Elem, std::vector<ExprPtr> Dims, SourceLoc L)
      : Expr(ExprKind::NewArray, L), Elem(std::move(Elem)),
        Dims(std::move(Dims)) {}
  TypeRef Elem;
  std::vector<ExprPtr> Dims;
};

enum class UnaryOp { Neg, Not };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc L)
      : Expr(ExprKind::Unary, L), Op(Op), Operand(std::move(Operand)) {}
  UnaryOp Op;
  ExprPtr Operand;
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLoc L)
      : Expr(ExprKind::Binary, L), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

struct AssignExpr : Expr {
  AssignExpr(ExprPtr Target, ExprPtr Value, SourceLoc L)
      : Expr(ExprKind::Assign, L), Target(std::move(Target)),
        Value(std::move(Value)) {}
  ExprPtr Target; // VarRef, FieldAccess, or Index.
  ExprPtr Value;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Block,
  VarDecl,
  TagDecl,
  Expr,
  If,
  While,
  For,
  Return,
  Break,
  Continue,
  TaskExit,
};

struct Stmt {
  explicit Stmt(StmtKind K, SourceLoc Loc) : K(K), Loc(Loc) {}
  virtual ~Stmt() = default;

  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;

  const StmtKind K;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt {
  BlockStmt(std::vector<StmtPtr> Stmts, SourceLoc L)
      : Stmt(StmtKind::Block, L), Stmts(std::move(Stmts)) {}
  std::vector<StmtPtr> Stmts;
};

struct VarDeclStmt : Stmt {
  VarDeclStmt(TypeRef Ty, std::string Name, ExprPtr Init, SourceLoc L)
      : Stmt(StmtKind::VarDecl, L), DeclType(std::move(Ty)),
        Name(std::move(Name)), Init(std::move(Init)) {}
  TypeRef DeclType;
  std::string Name;
  ExprPtr Init; // May be null.

  int Slot = -1;
  RType Resolved;
};

/// `tag t = new tag(tagtype);`
struct TagDeclStmt : Stmt {
  TagDeclStmt(std::string Name, std::string TagTypeName, SourceLoc L)
      : Stmt(StmtKind::TagDecl, L), Name(std::move(Name)),
        TagTypeName(std::move(TagTypeName)) {}
  std::string Name;
  std::string TagTypeName;

  int Slot = -1;
  ir::TagTypeId TagType = ir::InvalidId;
};

struct ExprStmt : Stmt {
  ExprStmt(ExprPtr E, SourceLoc L) : Stmt(StmtKind::Expr, L), E(std::move(E)) {}
  ExprPtr E;
};

struct IfStmt : Stmt {
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc L)
      : Stmt(StmtKind::If, L), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // May be null.
};

struct WhileStmt : Stmt {
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc L)
      : Stmt(StmtKind::While, L), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;
};

struct ForStmt : Stmt {
  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Step, StmtPtr Body, SourceLoc L)
      : Stmt(StmtKind::For, L), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}
  StmtPtr Init; // VarDecl or Expr statement; may be null.
  ExprPtr Cond; // May be null (infinite loop).
  ExprPtr Step; // May be null.
  StmtPtr Body;
};

struct ReturnStmt : Stmt {
  ReturnStmt(ExprPtr Value, SourceLoc L)
      : Stmt(StmtKind::Return, L), Value(std::move(Value)) {}
  ExprPtr Value; // May be null for void returns.
};

struct BreakStmt : Stmt {
  explicit BreakStmt(SourceLoc L) : Stmt(StmtKind::Break, L) {}
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(SourceLoc L) : Stmt(StmtKind::Continue, L) {}
};

/// One flag assignment inside a taskexit action: `flag := bool`.
struct ExitFlagAssign {
  std::string Flag;
  bool Value = false;
  SourceLoc Loc;
};

/// One tag action inside a taskexit action: `add t` / `clear t`.
struct ExitTagActionAst {
  bool IsAdd = true;
  std::string TagVar;
  SourceLoc Loc;

  int Slot = -1;                      // Resolved local slot of the tag var.
  ir::TagTypeId Type = ir::InvalidId; // Resolved tag type.
};

/// Actions for one parameter: `param: flag := v, add t, ...`.
struct ExitParamAction {
  std::string ParamName;
  std::vector<ExitFlagAssign> Flags;
  std::vector<ExitTagActionAst> Tags;
  SourceLoc Loc;

  int ParamIndex = -1; // Resolved.
};

/// `taskexit(p1: a := true; p2: b := false);`
struct TaskExitStmt : Stmt {
  TaskExitStmt(std::vector<ExitParamAction> Actions, SourceLoc L)
      : Stmt(StmtKind::TaskExit, L), Actions(std::move(Actions)) {}
  std::vector<ExitParamAction> Actions;

  ir::ExitId Exit = ir::InvalidId; // Resolved exit index.
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  TypeRef DeclType;
  std::string Name;
  SourceLoc Loc;

  RType Resolved;
};

struct MethodDecl {
  TypeRef ReturnType;
  std::string Name;
  std::vector<ParamDecl> Params;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;
  bool IsConstructor = false;

  RType ResolvedReturn;
  int NumSlots = 0; // Locals + params (params occupy the first slots).
};

struct FieldDecl {
  TypeRef DeclType;
  std::string Name;
  SourceLoc Loc;

  RType Resolved;
};

struct ClassDeclAst {
  std::string Name;
  std::vector<std::string> Flags;
  std::vector<FieldDecl> Fields;
  std::vector<MethodDecl> Methods;
  SourceLoc Loc;

  ir::ClassId Id = ir::InvalidId;

  int fieldIndex(const std::string &FieldName) const {
    for (size_t I = 0; I < Fields.size(); ++I)
      if (Fields[I].Name == FieldName)
        return static_cast<int>(I);
    return -1;
  }
  int methodIndex(const std::string &MethodName) const {
    for (size_t I = 0; I < Methods.size(); ++I)
      if (Methods[I].Name == MethodName)
        return static_cast<int>(I);
    return -1;
  }
};

struct TagTypeDeclAst {
  std::string Name;
  SourceLoc Loc;

  ir::TagTypeId Id = ir::InvalidId;
};

/// Guard expression with unresolved flag names (mirrors ir::FlagExpr).
struct GuardExprAst {
  enum class Kind { True, False, Flag, Not, And, Or } K = Kind::True;
  std::string FlagName;
  std::unique_ptr<GuardExprAst> Lhs;
  std::unique_ptr<GuardExprAst> Rhs;
  SourceLoc Loc;
};

struct TagConstraintAst {
  std::string TagTypeName;
  std::string Var;
  SourceLoc Loc;

  int Slot = -1; // Local slot of the tag variable in the task body.
};

struct TaskParamAst {
  std::string ClassName;
  std::string Name;
  std::unique_ptr<GuardExprAst> Guard;
  std::vector<TagConstraintAst> Tags;
  SourceLoc Loc;

  ir::ClassId Class = ir::InvalidId;
};

struct TaskDeclAst {
  std::string Name;
  std::vector<TaskParamAst> Params;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;

  ir::TaskId Id = ir::InvalidId;
  int NumSlots = 0;
};

/// A parsed compilation unit.
struct Module {
  std::string Name;
  std::vector<ClassDeclAst> Classes;
  std::vector<TagTypeDeclAst> TagTypes;
  std::vector<TaskDeclAst> Tasks;

  ClassDeclAst *findClass(const std::string &ClassName) {
    for (ClassDeclAst &C : Classes)
      if (C.Name == ClassName)
        return &C;
    return nullptr;
  }
  const ClassDeclAst *findClass(const std::string &ClassName) const {
    return const_cast<Module *>(this)->findClass(ClassName);
  }
};

} // namespace bamboo::frontend::ast

#endif // BAMBOO_FRONTEND_AST_H
