//===- frontend/SourceLoc.h - Source locations -----------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column source locations attached to tokens, AST nodes, and
/// diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_FRONTEND_SOURCELOC_H
#define BAMBOO_FRONTEND_SOURCELOC_H

namespace bamboo::frontend {

/// A 1-based line/column position. Line 0 denotes an unknown location.
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  bool isValid() const { return Line > 0; }
};

} // namespace bamboo::frontend

#endif // BAMBOO_FRONTEND_SOURCELOC_H
