//===- frontend/Lexer.cpp - Bamboo lexer ----------------------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace bamboo;
using namespace bamboo::frontend;

const char *bamboo::frontend::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof: return "end of file";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntLiteral: return "integer literal";
  case TokenKind::DoubleLiteral: return "floating-point literal";
  case TokenKind::StringLiteral: return "string literal";
  case TokenKind::KwClass: return "'class'";
  case TokenKind::KwFlag: return "'flag'";
  case TokenKind::KwTag: return "'tag'";
  case TokenKind::KwTagType: return "'tagtype'";
  case TokenKind::KwTask: return "'task'";
  case TokenKind::KwTaskExit: return "'taskexit'";
  case TokenKind::KwIn: return "'in'";
  case TokenKind::KwWith: return "'with'";
  case TokenKind::KwAnd: return "'and'";
  case TokenKind::KwOr: return "'or'";
  case TokenKind::KwNew: return "'new'";
  case TokenKind::KwAdd: return "'add'";
  case TokenKind::KwClear: return "'clear'";
  case TokenKind::KwTrue: return "'true'";
  case TokenKind::KwFalse: return "'false'";
  case TokenKind::KwNull: return "'null'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwBreak: return "'break'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::KwInt: return "'int'";
  case TokenKind::KwDouble: return "'double'";
  case TokenKind::KwBoolean: return "'boolean'";
  case TokenKind::KwString: return "'String'";
  case TokenKind::KwVoid: return "'void'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Semi: return "';'";
  case TokenKind::Comma: return "','";
  case TokenKind::Colon: return "':'";
  case TokenKind::Dot: return "'.'";
  case TokenKind::Assign: return "'='";
  case TokenKind::ColonAssign: return "':='";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Bang: return "'!'";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::NotEq: return "'!='";
  case TokenKind::Less: return "'<'";
  case TokenKind::LessEq: return "'<='";
  case TokenKind::Greater: return "'>'";
  case TokenKind::GreaterEq: return "'>='";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::PipePipe: return "'||'";
  }
  return "token";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Buffer(std::move(Source)), Diags(Diags) {}

char Lexer::peek(size_t Ahead) const {
  size_t P = Pos + Ahead;
  return P < Buffer.size() ? Buffer[P] : '\0';
}

char Lexer::advance() {
  char C = Buffer[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

Token Lexer::make(TokenKind K, SourceLoc L) const {
  Token T;
  T.Kind = K;
  T.Loc = L;
  return T;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::lexNumber() {
  SourceLoc Start = loc();
  std::string Digits;
  bool IsDouble = false;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    Digits.push_back(advance());
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsDouble = true;
    Digits.push_back(advance());
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits.push_back(advance());
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Look = 1;
    if (peek(Look) == '+' || peek(Look) == '-')
      ++Look;
    if (std::isdigit(static_cast<unsigned char>(peek(Look)))) {
      IsDouble = true;
      Digits.push_back(advance()); // e
      if (peek() == '+' || peek() == '-')
        Digits.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Digits.push_back(advance());
    }
  }
  Token T = make(IsDouble ? TokenKind::DoubleLiteral : TokenKind::IntLiteral,
                 Start);
  if (IsDouble)
    T.DoubleValue = std::strtod(Digits.c_str(), nullptr);
  else
    T.IntValue = std::strtoll(Digits.c_str(), nullptr, 10);
  T.Text = Digits;
  return T;
}

Token Lexer::lexIdentifier() {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"class", TokenKind::KwClass},       {"flag", TokenKind::KwFlag},
      {"tag", TokenKind::KwTag},           {"tagtype", TokenKind::KwTagType},
      {"task", TokenKind::KwTask},         {"taskexit", TokenKind::KwTaskExit},
      {"in", TokenKind::KwIn},             {"with", TokenKind::KwWith},
      {"and", TokenKind::KwAnd},           {"or", TokenKind::KwOr},
      {"new", TokenKind::KwNew},           {"add", TokenKind::KwAdd},
      {"clear", TokenKind::KwClear},       {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},       {"null", TokenKind::KwNull},
      {"if", TokenKind::KwIf},             {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},       {"for", TokenKind::KwFor},
      {"return", TokenKind::KwReturn},     {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"int", TokenKind::KwInt},
      {"double", TokenKind::KwDouble},     {"boolean", TokenKind::KwBoolean},
      {"String", TokenKind::KwString},     {"void", TokenKind::KwVoid},
  };

  SourceLoc Start = loc();
  std::string Name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Name.push_back(advance());
  auto It = Keywords.find(Name);
  Token T = make(It != Keywords.end() ? It->second : TokenKind::Identifier,
                 Start);
  T.Text = std::move(Name);
  return T;
}

Token Lexer::lexString() {
  SourceLoc Start = loc();
  advance(); // opening quote
  std::string Value;
  while (!atEnd() && peek() != '"' && peek() != '\n') {
    char C = advance();
    if (C == '\\' && !atEnd()) {
      char E = advance();
      switch (E) {
      case 'n': Value.push_back('\n'); break;
      case 't': Value.push_back('\t'); break;
      case '\\': Value.push_back('\\'); break;
      case '"': Value.push_back('"'); break;
      default:
        Diags.error(loc(), formatString("unknown escape sequence '\\%c'", E));
        Value.push_back(E);
      }
      continue;
    }
    Value.push_back(C);
  }
  if (atEnd() || peek() != '"')
    Diags.error(Start, "unterminated string literal");
  else
    advance(); // closing quote
  Token T = make(TokenKind::StringLiteral, Start);
  T.Text = std::move(Value);
  return T;
}

Token Lexer::lexToken() {
  skipTrivia();
  SourceLoc Start = loc();
  if (atEnd())
    return make(TokenKind::Eof, Start);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier();
  if (C == '"')
    return lexString();

  advance();
  switch (C) {
  case '(': return make(TokenKind::LParen, Start);
  case ')': return make(TokenKind::RParen, Start);
  case '{': return make(TokenKind::LBrace, Start);
  case '}': return make(TokenKind::RBrace, Start);
  case '[': return make(TokenKind::LBracket, Start);
  case ']': return make(TokenKind::RBracket, Start);
  case ';': return make(TokenKind::Semi, Start);
  case ',': return make(TokenKind::Comma, Start);
  case '.': return make(TokenKind::Dot, Start);
  case '+': return make(TokenKind::Plus, Start);
  case '-': return make(TokenKind::Minus, Start);
  case '*': return make(TokenKind::Star, Start);
  case '/': return make(TokenKind::Slash, Start);
  case '%': return make(TokenKind::Percent, Start);
  case ':':
    if (peek() == '=') {
      advance();
      return make(TokenKind::ColonAssign, Start);
    }
    return make(TokenKind::Colon, Start);
  case '=':
    if (peek() == '=') {
      advance();
      return make(TokenKind::EqEq, Start);
    }
    return make(TokenKind::Assign, Start);
  case '!':
    if (peek() == '=') {
      advance();
      return make(TokenKind::NotEq, Start);
    }
    return make(TokenKind::Bang, Start);
  case '<':
    if (peek() == '=') {
      advance();
      return make(TokenKind::LessEq, Start);
    }
    return make(TokenKind::Less, Start);
  case '>':
    if (peek() == '=') {
      advance();
      return make(TokenKind::GreaterEq, Start);
    }
    return make(TokenKind::Greater, Start);
  case '&':
    if (peek() == '&') {
      advance();
      return make(TokenKind::AmpAmp, Start);
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      return make(TokenKind::PipePipe, Start);
    }
    break;
  default:
    break;
  }
  Diags.error(Start, formatString("unexpected character '%c'", C));
  return lexToken();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = lexToken();
    bool IsEof = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (IsEof)
      return Tokens;
  }
}
