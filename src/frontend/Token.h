//===- frontend/Token.h - Token definitions ---------------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the Bamboo language: the Figure-5 task grammar keywords
/// plus a Java-like imperative subset for task and method bodies.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_FRONTEND_TOKEN_H
#define BAMBOO_FRONTEND_TOKEN_H

#include "frontend/SourceLoc.h"

#include <cstdint>
#include <string>

namespace bamboo::frontend {

enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  DoubleLiteral,
  StringLiteral,

  // Keywords.
  KwClass,
  KwFlag,
  KwTag,
  KwTagType,
  KwTask,
  KwTaskExit,
  KwIn,
  KwWith,
  KwAnd,
  KwOr,
  KwNew,
  KwAdd,
  KwClear,
  KwTrue,
  KwFalse,
  KwNull,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwInt,
  KwDouble,
  KwBoolean,
  KwString,
  KwVoid,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  Dot,
  Assign,       // =
  ColonAssign,  // :=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
};

/// Returns a human-readable spelling for diagnostics ("';'", "identifier").
const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;     // Identifier or string literal contents.
  int64_t IntValue = 0; // For IntLiteral.
  double DoubleValue = 0.0; // For DoubleLiteral.

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace bamboo::frontend

#endif // BAMBOO_FRONTEND_TOKEN_H
