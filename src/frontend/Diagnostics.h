//===- frontend/Diagnostics.h - Diagnostic collection -----------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. The lexer, parser, and semantic analysis
/// report errors here instead of aborting; drivers render the collected
/// diagnostics. Messages follow the LLVM style: lowercase first word, no
/// trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_FRONTEND_DIAGNOSTICS_H
#define BAMBOO_FRONTEND_DIAGNOSTICS_H

#include "frontend/SourceLoc.h"

#include <string>
#include <vector>

namespace bamboo::frontend {

/// One reported problem.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics for one compilation.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back(Diagnostic{Loc, std::move(Message)});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line, as "<file>:line:col: error: msg".
  std::string render(const std::string &FileName) const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace bamboo::frontend

#endif // BAMBOO_FRONTEND_DIAGNOSTICS_H
