//===- frontend/Frontend.cpp - One-call compilation entry -----------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"

using namespace bamboo;
using namespace bamboo::frontend;

std::optional<CompiledModule>
bamboo::frontend::compileString(const std::string &Source,
                                const std::string &ModuleName,
                                DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return std::nullopt;
  Parser P(std::move(Tokens), Diags);
  ast::Module M = P.parseModule(ModuleName);
  if (Diags.hasErrors())
    return std::nullopt;
  return analyzeModule(std::move(M), Diags);
}
