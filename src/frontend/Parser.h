//===- frontend/Parser.h - Bamboo parser ------------------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Bamboo language. Produces an ast::Module
/// from a token stream; errors are reported to the DiagnosticEngine and the
/// parser recovers at statement/declaration boundaries so that multiple
/// errors can be reported in one pass.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_FRONTEND_PARSER_H
#define BAMBOO_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Diagnostics.h"
#include "frontend/Token.h"

#include <vector>

namespace bamboo::frontend {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses a whole module. Always returns a module; check
  /// Diags.hasErrors() before using it.
  ast::Module parseModule(const std::string &ModuleName);

private:
  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;

  // Token-stream helpers.
  const Token &peek(size_t Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token advance();
  bool check(TokenKind K) const { return current().is(K); }
  bool match(TokenKind K);
  /// Consumes a token of kind \p K or reports an error (returning a
  /// best-effort token without consuming).
  Token expect(TokenKind K, const char *Context);
  void error(const char *Context);
  void syncToDeclBoundary();
  void syncToStmtBoundary();

  // Declarations.
  void parseClassDecl(ast::Module &M);
  void parseTagTypeDecl(ast::Module &M);
  void parseTaskDecl(ast::Module &M);
  ast::MethodDecl parseMethodDecl(ast::TypeRef ReturnType, std::string Name,
                                  SourceLoc Loc, bool IsConstructor);

  // Task declaration pieces.
  ast::TaskParamAst parseTaskParam();
  std::unique_ptr<ast::GuardExprAst> parseGuardOr();
  std::unique_ptr<ast::GuardExprAst> parseGuardAnd();
  std::unique_ptr<ast::GuardExprAst> parseGuardUnary();

  // Types.
  bool startsType() const;
  ast::TypeRef parseTypeRef();

  // Statements.
  std::unique_ptr<ast::BlockStmt> parseBlock();
  ast::StmtPtr parseStatement();
  ast::StmtPtr parseVarDeclOrExprStatement();
  ast::StmtPtr parseTagDeclStatement();
  ast::StmtPtr parseTaskExitStatement();
  ast::StmtPtr parseIfStatement();
  ast::StmtPtr parseWhileStatement();
  ast::StmtPtr parseForStatement();

  /// True when the upcoming tokens begin a local variable declaration
  /// rather than an expression statement.
  bool looksLikeVarDecl() const;

  // Expressions.
  ast::ExprPtr parseExpression(); // Assignment level.
  ast::ExprPtr parseLogicalOr();
  ast::ExprPtr parseLogicalAnd();
  ast::ExprPtr parseEquality();
  ast::ExprPtr parseRelational();
  ast::ExprPtr parseAdditive();
  ast::ExprPtr parseMultiplicative();
  ast::ExprPtr parseUnary();
  ast::ExprPtr parsePostfix();
  ast::ExprPtr parsePrimary();
  ast::ExprPtr parseNewExpression();
  std::vector<ast::ExprPtr> parseCallArgs();
};

} // namespace bamboo::frontend

#endif // BAMBOO_FRONTEND_PARSER_H
