//===- frontend/Lexer.h - Bamboo lexer --------------------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the Bamboo language. Supports `//` and `/* */`
/// comments, decimal integer and floating-point literals, and double-quoted
/// string literals with the usual escapes.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_FRONTEND_LEXER_H
#define BAMBOO_FRONTEND_LEXER_H

#include "frontend/Diagnostics.h"
#include "frontend/Token.h"

#include <string>
#include <vector>

namespace bamboo::frontend {

/// Tokenizes a whole buffer up front. Errors are reported to the diagnostic
/// engine and a best-effort token stream is still produced.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the entire buffer; the last token is always Eof.
  std::vector<Token> lexAll();

private:
  std::string Buffer;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;

  char peek(size_t Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Buffer.size(); }
  SourceLoc loc() const { return SourceLoc{Line, Col}; }

  void skipTrivia();
  Token lexToken();
  Token lexNumber();
  Token lexIdentifier();
  Token lexString();

  Token make(TokenKind K, SourceLoc L) const;
};

} // namespace bamboo::frontend

#endif // BAMBOO_FRONTEND_LEXER_H
