//===- frontend/Sema.h - Bamboo semantic analysis ---------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for parsed Bamboo modules: resolves class/flag/tag
/// names, type-checks method and task bodies, assigns local slots for the
/// interpreter, registers allocation sites and task exits, and lowers the
/// task declarations into an ir::Program.
///
/// Conventions enforced here (Section 3 of the paper):
///  - tasks have no receiver and may only touch parameters and objects
///    reachable from them (no globals exist in the language);
///  - `taskexit` may appear only in task bodies, and each syntactic
///    `taskexit` becomes one ir exit (an implicit no-effect exit is appended
///    for bodies that fall off the end);
///  - allocations with flag or tag initializers are allocation *sites* and
///    may appear only directly in task bodies, where the dependence
///    analysis can attribute them.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_FRONTEND_SEMA_H
#define BAMBOO_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "frontend/Diagnostics.h"
#include "ir/Program.h"
#include "ir/ProgramBuilder.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace bamboo::frontend {

/// The result of a successful frontend run: the annotated AST (consumed by
/// the interpreter and the disjointness analysis) plus the lowered task
/// program (consumed by everything else). Task, class, and tag-type ids in
/// the program are the indices of the corresponding AST declarations.
struct CompiledModule {
  ast::Module Ast;
  ir::Program Prog;

  CompiledModule(ast::Module Ast, ir::Program Prog)
      : Ast(std::move(Ast)), Prog(std::move(Prog)) {}
};

/// Runs semantic analysis over \p M. On success returns the compiled
/// module; on failure returns std::nullopt with diagnostics in \p Diags.
/// \p M is consumed either way.
std::optional<CompiledModule> analyzeModule(ast::Module M,
                                            DiagnosticEngine &Diags);

namespace detail {

/// Implementation class behind analyzeModule; exposed for unit tests that
/// want to poke at intermediate state.
class Sema {
public:
  Sema(ast::Module &M, DiagnosticEngine &Diags);

  /// Returns true on success; the module is annotated in place and the
  /// program can be taken with takeProgram().
  bool run();

  ir::Program takeProgram();

private:
  ast::Module &M;
  DiagnosticEngine &Diags;
  ir::ProgramBuilder PB;
  bool Failed = false;

  /// One local variable binding (parameters, locals, tag variables).
  struct LocalVar {
    ast::RType Ty;
    int Slot = -1;
    ir::TagTypeId TagType = ir::InvalidId; // For Tag-typed locals.
  };

  /// Checking context for one body.
  struct BodyContext {
    ast::ClassDeclAst *EnclosingClass = nullptr; // Methods only.
    ast::TaskDeclAst *EnclosingTask = nullptr;   // Tasks only.
    ast::RType ReturnType = ast::RType::voidTy();
    int NextSlot = 0;
    int LoopDepth = 0;
    std::vector<std::unordered_map<std::string, LocalVar>> Scopes;
  };

  void err(SourceLoc Loc, std::string Msg);

  // Pass 1: declarations.
  void registerDeclarations();
  void resolveSignatures();
  ast::RType resolveTypeRef(const ast::TypeRef &Ty);

  // Pass 2: bodies.
  void checkAllBodies();
  void checkMethodBody(ast::ClassDeclAst &C, ast::MethodDecl &Method);
  void checkTaskBody(ast::TaskDeclAst &Task);

  // Scope handling.
  void pushScope(BodyContext &Ctx) { Ctx.Scopes.emplace_back(); }
  void popScope(BodyContext &Ctx) { Ctx.Scopes.pop_back(); }
  LocalVar *lookupLocal(BodyContext &Ctx, const std::string &Name);
  bool declareLocal(BodyContext &Ctx, const std::string &Name, LocalVar Var,
                    SourceLoc Loc);

  // Statements and expressions.
  void checkStmt(BodyContext &Ctx, ast::Stmt *S);
  ast::RType checkExpr(BodyContext &Ctx, ast::Expr *E);
  ast::RType checkVarRef(BodyContext &Ctx, ast::VarRefExpr *E);
  ast::RType checkFieldAccess(BodyContext &Ctx, ast::FieldAccessExpr *E);
  ast::RType checkIndex(BodyContext &Ctx, ast::IndexExpr *E);
  ast::RType checkCall(BodyContext &Ctx, ast::CallExpr *E);
  ast::RType checkNewObject(BodyContext &Ctx, ast::NewObjectExpr *E);
  ast::RType checkNewArray(BodyContext &Ctx, ast::NewArrayExpr *E);
  ast::RType checkUnary(BodyContext &Ctx, ast::UnaryExpr *E);
  ast::RType checkBinary(BodyContext &Ctx, ast::BinaryExpr *E);
  ast::RType checkAssign(BodyContext &Ctx, ast::AssignExpr *E);
  void checkTaskExit(BodyContext &Ctx, ast::TaskExitStmt *S);

  /// Resolves a (namespace, name) or (String receiver, name) builtin call;
  /// returns BuiltinId::None if there is no such builtin.
  ast::BuiltinId resolveBuiltin(const std::string &Namespace,
                                const std::string &Method) const;
  ast::RType checkBuiltinCall(BodyContext &Ctx, ast::CallExpr *E,
                              ast::RType ReceiverTy);

  /// True if a value of type \p Src can initialize/assign a slot of type
  /// \p Dst (identity, int-to-double widening, or null-to-reference).
  static bool isAssignable(const ast::RType &Dst, const ast::RType &Src);

  std::string typeName(const ast::RType &Ty) const;

  /// Lowers a guard AST to an ir::FlagExpr against \p Class.
  std::unique_ptr<ir::FlagExpr> lowerGuard(const ast::GuardExprAst *G,
                                           ir::ClassId Class);
};

} // namespace detail

} // namespace bamboo::frontend

#endif // BAMBOO_FRONTEND_SEMA_H
