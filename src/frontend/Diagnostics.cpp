//===- frontend/Diagnostics.cpp - Diagnostic collection -------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Diagnostics.h"

#include "support/Format.h"

using namespace bamboo;
using namespace bamboo::frontend;

std::string DiagnosticEngine::render(const std::string &FileName) const {
  std::string Out;
  for (const Diagnostic &D : Diags)
    Out += formatString("%s:%d:%d: error: %s\n", FileName.c_str(), D.Loc.Line,
                        D.Loc.Col, D.Message.c_str());
  return Out;
}
