//===- frontend/Frontend.h - One-call compilation entry ---------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry point: source text in, CompiledModule out.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_FRONTEND_FRONTEND_H
#define BAMBOO_FRONTEND_FRONTEND_H

#include "frontend/Sema.h"

namespace bamboo::frontend {

/// Lexes, parses, and analyzes \p Source. Returns std::nullopt and fills
/// \p Diags on any error.
std::optional<CompiledModule> compileString(const std::string &Source,
                                            const std::string &ModuleName,
                                            DiagnosticEngine &Diags);

} // namespace bamboo::frontend

#endif // BAMBOO_FRONTEND_FRONTEND_H
