//===- frontend/Sema.cpp - Bamboo semantic analysis -----------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include "support/Debug.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace bamboo;
using namespace bamboo::frontend;
using namespace bamboo::frontend::ast;
using detail::Sema;

std::optional<CompiledModule>
bamboo::frontend::analyzeModule(ast::Module M, DiagnosticEngine &Diags) {
  Sema S(M, Diags);
  if (!S.run())
    return std::nullopt;
  return CompiledModule(std::move(M), S.takeProgram());
}

Sema::Sema(ast::Module &M, DiagnosticEngine &Diags)
    : M(M), Diags(Diags), PB(M.Name) {}

void Sema::err(SourceLoc Loc, std::string Msg) {
  Diags.error(Loc, std::move(Msg));
  Failed = true;
}

bool Sema::run() {
  registerDeclarations();
  if (Failed)
    return false;
  resolveSignatures();
  if (Failed)
    return false;
  checkAllBodies();
  return !Failed;
}

ir::Program Sema::takeProgram() { return PB.take(); }

//===----------------------------------------------------------------------===//
// Pass 1: declarations
//===----------------------------------------------------------------------===//

void Sema::registerDeclarations() {
  // Inject the implicit StartupObject class if the module does not declare
  // one. Its creation (with initialstate set) boots the program; `args`
  // carries the command line, as in the Section-2 example.
  if (!M.findClass("StartupObject")) {
    ClassDeclAst Startup;
    Startup.Name = "StartupObject";
    Startup.Flags.push_back("initialstate");
    FieldDecl Args;
    Args.DeclType.K = TypeRef::Kind::String;
    Args.DeclType.ArrayDepth = 1;
    Args.Name = "args";
    Startup.Fields.push_back(std::move(Args));
    M.Classes.push_back(std::move(Startup));
  }

  for (size_t I = 0; I < M.Classes.size(); ++I) {
    ClassDeclAst &C = M.Classes[I];
    for (size_t J = 0; J < I; ++J)
      if (M.Classes[J].Name == C.Name) {
        err(C.Loc, formatString("duplicate class %s", C.Name.c_str()));
        return;
      }
    for (size_t F = 0; F < C.Flags.size(); ++F)
      for (size_t G = F + 1; G < C.Flags.size(); ++G)
        if (C.Flags[F] == C.Flags[G])
          err(C.Loc, formatString("class %s declares duplicate flag %s",
                                  C.Name.c_str(), C.Flags[F].c_str()));
    if (C.Flags.size() > ir::MaxFlagsPerClass)
      err(C.Loc, formatString("class %s declares too many flags",
                              C.Name.c_str()));
    if (Failed)
      return;
    C.Id = PB.addClass(C.Name, C.Flags);
    assert(C.Id == static_cast<ir::ClassId>(I) && "class ids must be dense");
  }

  for (size_t I = 0; I < M.TagTypes.size(); ++I) {
    TagTypeDeclAst &T = M.TagTypes[I];
    for (size_t J = 0; J < I; ++J)
      if (M.TagTypes[J].Name == T.Name) {
        err(T.Loc, formatString("duplicate tag type %s", T.Name.c_str()));
        return;
      }
    if (M.findClass(T.Name))
      err(T.Loc, formatString("tag type %s collides with a class name",
                              T.Name.c_str()));
    T.Id = PB.addTagType(T.Name);
  }

  for (size_t I = 0; I < M.Tasks.size(); ++I) {
    TaskDeclAst &T = M.Tasks[I];
    for (size_t J = 0; J < I; ++J)
      if (M.Tasks[J].Name == T.Name) {
        err(T.Loc, formatString("duplicate task %s", T.Name.c_str()));
        return;
      }
    if (T.Params.empty()) {
      err(T.Loc, formatString("task %s must declare at least one parameter",
                              T.Name.c_str()));
      continue;
    }
    T.Id = PB.addTask(T.Name);

    for (TaskParamAst &P : T.Params) {
      ClassDeclAst *C = M.findClass(P.ClassName);
      if (!C) {
        err(P.Loc, formatString("unknown class %s in task %s parameter",
                                P.ClassName.c_str(), T.Name.c_str()));
        continue;
      }
      P.Class = C->Id;
      std::unique_ptr<ir::FlagExpr> Guard = lowerGuard(P.Guard.get(), C->Id);
      if (!Guard)
        continue;
      std::vector<ir::TagConstraint> Tags;
      for (const TagConstraintAst &TC : P.Tags) {
        ir::TagTypeId TT = PB.peek().findTagType(TC.TagTypeName);
        if (TT == ir::InvalidId) {
          err(TC.Loc, formatString("unknown tag type %s",
                                   TC.TagTypeName.c_str()));
          continue;
        }
        Tags.push_back(ir::TagConstraint{TT, TC.Var});
      }
      PB.addParam(T.Id, P.Name, C->Id, std::move(Guard), std::move(Tags));
    }
  }

  ClassDeclAst *Startup = M.findClass("StartupObject");
  assert(Startup && "StartupObject must exist by now");
  if (std::find(Startup->Flags.begin(), Startup->Flags.end(),
                "initialstate") == Startup->Flags.end()) {
    err(Startup->Loc, "class StartupObject must declare flag initialstate");
    return;
  }
  PB.setStartup(Startup->Id, "initialstate");
}

std::unique_ptr<ir::FlagExpr> Sema::lowerGuard(const GuardExprAst *G,
                                               ir::ClassId Class) {
  switch (G->K) {
  case GuardExprAst::Kind::True:
    return ir::FlagExpr::makeTrue();
  case GuardExprAst::Kind::False:
    return ir::FlagExpr::makeFalse();
  case GuardExprAst::Kind::Flag: {
    ir::FlagId F = PB.peek().classOf(Class).flagIndex(G->FlagName);
    if (F == ir::InvalidId) {
      err(G->Loc, formatString("class %s has no flag %s",
                               PB.peek().classOf(Class).Name.c_str(),
                               G->FlagName.c_str()));
      return nullptr;
    }
    return ir::FlagExpr::makeFlag(F);
  }
  case GuardExprAst::Kind::Not: {
    auto L = lowerGuard(G->Lhs.get(), Class);
    return L ? ir::FlagExpr::makeNot(std::move(L)) : nullptr;
  }
  case GuardExprAst::Kind::And:
  case GuardExprAst::Kind::Or: {
    auto L = lowerGuard(G->Lhs.get(), Class);
    auto R = lowerGuard(G->Rhs.get(), Class);
    if (!L || !R)
      return nullptr;
    return G->K == GuardExprAst::Kind::And
               ? ir::FlagExpr::makeAnd(std::move(L), std::move(R))
               : ir::FlagExpr::makeOr(std::move(L), std::move(R));
  }
  }
  BAMBOO_UNREACHABLE("covered switch");
}

RType Sema::resolveTypeRef(const TypeRef &Ty) {
  RType Base;
  switch (Ty.K) {
  case TypeRef::Kind::Void:
    Base = RType::voidTy();
    break;
  case TypeRef::Kind::Int:
    Base = RType::intTy();
    break;
  case TypeRef::Kind::Double:
    Base = RType::doubleTy();
    break;
  case TypeRef::Kind::Bool:
    Base = RType::boolTy();
    break;
  case TypeRef::Kind::String:
    Base = RType::stringTy();
    break;
  case TypeRef::Kind::Class: {
    ClassDeclAst *C = M.findClass(Ty.ClassName);
    if (!C) {
      err(Ty.Loc, formatString("unknown type %s", Ty.ClassName.c_str()));
      return RType::invalid();
    }
    Base = RType::classTy(C->Id);
    break;
  }
  }
  if (Ty.ArrayDepth > 0 && Base.Base == BaseKind::Void) {
    err(Ty.Loc, "cannot form an array of void");
    return RType::invalid();
  }
  Base.Depth = Ty.ArrayDepth;
  return Base;
}

void Sema::resolveSignatures() {
  for (ClassDeclAst &C : M.Classes) {
    for (size_t I = 0; I < C.Fields.size(); ++I) {
      FieldDecl &F = C.Fields[I];
      for (size_t J = 0; J < I; ++J)
        if (C.Fields[J].Name == F.Name)
          err(F.Loc, formatString("duplicate field %s in class %s",
                                  F.Name.c_str(), C.Name.c_str()));
      F.Resolved = resolveTypeRef(F.DeclType);
      if (F.Resolved.Base == BaseKind::Void)
        err(F.Loc, "fields may not have type void");
    }
    for (size_t I = 0; I < C.Methods.size(); ++I) {
      MethodDecl &Method = C.Methods[I];
      for (size_t J = 0; J < I; ++J)
        if (C.Methods[J].Name == Method.Name)
          err(Method.Loc,
              formatString("duplicate method %s in class %s (overloading is "
                           "not supported)",
                           Method.Name.c_str(), C.Name.c_str()));
      Method.ResolvedReturn = resolveTypeRef(Method.ReturnType);
      for (ParamDecl &P : Method.Params) {
        P.Resolved = resolveTypeRef(P.DeclType);
        if (P.Resolved.Base == BaseKind::Void)
          err(P.Loc, "parameters may not have type void");
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Scope handling
//===----------------------------------------------------------------------===//

Sema::LocalVar *Sema::lookupLocal(BodyContext &Ctx, const std::string &Name) {
  for (auto It = Ctx.Scopes.rbegin(); It != Ctx.Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  return nullptr;
}

bool Sema::declareLocal(BodyContext &Ctx, const std::string &Name,
                        LocalVar Var, SourceLoc Loc) {
  assert(!Ctx.Scopes.empty() && "no open scope");
  auto [It, Inserted] = Ctx.Scopes.back().emplace(Name, Var);
  (void)It;
  if (!Inserted) {
    err(Loc, formatString("redeclaration of %s", Name.c_str()));
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Pass 2: bodies
//===----------------------------------------------------------------------===//

void Sema::checkAllBodies() {
  for (ClassDeclAst &C : M.Classes)
    for (MethodDecl &Method : C.Methods)
      checkMethodBody(C, Method);
  for (TaskDeclAst &T : M.Tasks) {
    if (T.Id == ir::InvalidId)
      continue;
    checkTaskBody(T);
  }
}

void Sema::checkMethodBody(ClassDeclAst &C, MethodDecl &Method) {
  BodyContext Ctx;
  Ctx.EnclosingClass = &C;
  Ctx.ReturnType = Method.ResolvedReturn;
  pushScope(Ctx);
  for (ParamDecl &P : Method.Params) {
    LocalVar Var;
    Var.Ty = P.Resolved;
    Var.Slot = Ctx.NextSlot++;
    declareLocal(Ctx, P.Name, Var, P.Loc);
  }
  checkStmt(Ctx, Method.Body.get());
  popScope(Ctx);
  Method.NumSlots = Ctx.NextSlot;
}

void Sema::checkTaskBody(TaskDeclAst &Task) {
  BodyContext Ctx;
  Ctx.EnclosingTask = &Task;
  pushScope(Ctx);

  // Parameters occupy the first slots.
  for (TaskParamAst &P : Task.Params) {
    if (P.Class == ir::InvalidId)
      return;
    LocalVar Var;
    Var.Ty = RType::classTy(P.Class);
    Var.Slot = Ctx.NextSlot++;
    declareLocal(Ctx, P.Name, Var, P.Loc);
  }

  // Tag variables from `with` constraints are in scope in the body; the
  // same variable on several parameters denotes one shared tag instance
  // and gets one slot.
  for (TaskParamAst &P : Task.Params) {
    for (TagConstraintAst &TC : P.Tags) {
      if (LocalVar *Existing = lookupLocal(Ctx, TC.Var)) {
        TC.Slot = Existing->Slot;
        continue;
      }
      LocalVar Var;
      Var.Ty = RType::tagTy();
      Var.Slot = Ctx.NextSlot++;
      Var.TagType = PB.peek().findTagType(TC.TagTypeName);
      TC.Slot = Var.Slot;
      declareLocal(Ctx, TC.Var, Var, TC.Loc);
    }
  }

  checkStmt(Ctx, Task.Body.get());
  popScope(Ctx);
  Task.NumSlots = Ctx.NextSlot;

  // Implicit fall-through exit: no flag or tag effects. The interpreter and
  // the embedded runtime use the last exit when a body completes without
  // executing a taskexit.
  PB.addExit(Task.Id, "fallthrough");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Sema::checkStmt(BodyContext &Ctx, Stmt *S) {
  if (!S)
    return;
  switch (S->K) {
  case StmtKind::Block: {
    auto *B = static_cast<BlockStmt *>(S);
    pushScope(Ctx);
    for (StmtPtr &Child : B->Stmts)
      checkStmt(Ctx, Child.get());
    popScope(Ctx);
    return;
  }
  case StmtKind::VarDecl: {
    auto *D = static_cast<VarDeclStmt *>(S);
    D->Resolved = resolveTypeRef(D->DeclType);
    if (D->Resolved.Base == BaseKind::Void) {
      err(D->Loc, "variables may not have type void");
      return;
    }
    if (D->Init) {
      RType InitTy = checkExpr(Ctx, D->Init.get());
      if (!InitTy.isInvalid() && !isAssignable(D->Resolved, InitTy))
        err(D->Loc, formatString("cannot initialize %s with %s",
                                 typeName(D->Resolved).c_str(),
                                 typeName(InitTy).c_str()));
    }
    LocalVar Var;
    Var.Ty = D->Resolved;
    Var.Slot = Ctx.NextSlot++;
    D->Slot = Var.Slot;
    declareLocal(Ctx, D->Name, Var, D->Loc);
    return;
  }
  case StmtKind::TagDecl: {
    auto *D = static_cast<TagDeclStmt *>(S);
    if (!Ctx.EnclosingTask) {
      err(D->Loc, "tag instances may only be created inside tasks");
      return;
    }
    D->TagType = PB.peek().findTagType(D->TagTypeName);
    if (D->TagType == ir::InvalidId) {
      err(D->Loc,
          formatString("unknown tag type %s", D->TagTypeName.c_str()));
      return;
    }
    LocalVar Var;
    Var.Ty = RType::tagTy();
    Var.Slot = Ctx.NextSlot++;
    Var.TagType = D->TagType;
    D->Slot = Var.Slot;
    declareLocal(Ctx, D->Name, Var, D->Loc);
    return;
  }
  case StmtKind::Expr: {
    auto *E = static_cast<ExprStmt *>(S);
    checkExpr(Ctx, E->E.get());
    return;
  }
  case StmtKind::If: {
    auto *I = static_cast<IfStmt *>(S);
    RType CondTy = checkExpr(Ctx, I->Cond.get());
    if (!CondTy.isInvalid() && CondTy != RType::boolTy())
      err(I->Loc, "if condition must be boolean");
    checkStmt(Ctx, I->Then.get());
    checkStmt(Ctx, I->Else.get());
    return;
  }
  case StmtKind::While: {
    auto *W = static_cast<WhileStmt *>(S);
    RType CondTy = checkExpr(Ctx, W->Cond.get());
    if (!CondTy.isInvalid() && CondTy != RType::boolTy())
      err(W->Loc, "while condition must be boolean");
    ++Ctx.LoopDepth;
    checkStmt(Ctx, W->Body.get());
    --Ctx.LoopDepth;
    return;
  }
  case StmtKind::For: {
    auto *F = static_cast<ForStmt *>(S);
    pushScope(Ctx);
    checkStmt(Ctx, F->Init.get());
    if (F->Cond) {
      RType CondTy = checkExpr(Ctx, F->Cond.get());
      if (!CondTy.isInvalid() && CondTy != RType::boolTy())
        err(F->Loc, "for condition must be boolean");
    }
    if (F->Step)
      checkExpr(Ctx, F->Step.get());
    ++Ctx.LoopDepth;
    checkStmt(Ctx, F->Body.get());
    --Ctx.LoopDepth;
    popScope(Ctx);
    return;
  }
  case StmtKind::Return: {
    auto *R = static_cast<ReturnStmt *>(S);
    if (Ctx.EnclosingTask) {
      if (R->Value)
        err(R->Loc, "tasks may not return a value; use taskexit");
      return;
    }
    if (R->Value) {
      RType ValueTy = checkExpr(Ctx, R->Value.get());
      if (!ValueTy.isInvalid() && !isAssignable(Ctx.ReturnType, ValueTy))
        err(R->Loc, formatString("cannot return %s from a method returning %s",
                                 typeName(ValueTy).c_str(),
                                 typeName(Ctx.ReturnType).c_str()));
    } else if (Ctx.ReturnType.Base != BaseKind::Void) {
      err(R->Loc, "non-void method must return a value");
    }
    return;
  }
  case StmtKind::Break:
  case StmtKind::Continue:
    if (Ctx.LoopDepth == 0)
      err(S->Loc, "break/continue outside of a loop");
    return;
  case StmtKind::TaskExit:
    checkTaskExit(Ctx, static_cast<TaskExitStmt *>(S));
    return;
  }
  BAMBOO_UNREACHABLE("covered switch");
}

void Sema::checkTaskExit(BodyContext &Ctx, TaskExitStmt *S) {
  if (!Ctx.EnclosingTask) {
    err(S->Loc, "taskexit may only appear inside a task body");
    return;
  }
  TaskDeclAst &Task = *Ctx.EnclosingTask;
  ir::ExitId Exit = PB.addExit(
      Task.Id, formatString("exit%zu",
                            PB.peek().taskOf(Task.Id).Exits.size()));
  S->Exit = Exit;

  for (ExitParamAction &Action : S->Actions) {
    Action.ParamIndex = -1;
    for (size_t PI = 0; PI < Task.Params.size(); ++PI)
      if (Task.Params[PI].Name == Action.ParamName)
        Action.ParamIndex = static_cast<int>(PI);
    if (Action.ParamIndex < 0) {
      err(Action.Loc, formatString("taskexit names unknown parameter %s",
                                   Action.ParamName.c_str()));
      continue;
    }
    ir::ClassId Class = Task.Params[static_cast<size_t>(Action.ParamIndex)]
                            .Class;
    for (ExitFlagAssign &FA : Action.Flags) {
      if (PB.peek().classOf(Class).flagIndex(FA.Flag) == ir::InvalidId) {
        err(FA.Loc, formatString("class %s has no flag %s",
                                 PB.peek().classOf(Class).Name.c_str(),
                                 FA.Flag.c_str()));
        continue;
      }
      PB.setFlagEffect(Task.Id, Exit, Action.ParamIndex, FA.Flag, FA.Value);
    }
    for (ExitTagActionAst &TA : Action.Tags) {
      LocalVar *Var = lookupLocal(Ctx, TA.TagVar);
      if (!Var || Var->Ty.Base != BaseKind::Tag) {
        err(TA.Loc, formatString("%s is not a tag variable",
                                 TA.TagVar.c_str()));
        continue;
      }
      TA.Slot = Var->Slot;
      TA.Type = Var->TagType;
      PB.addTagEffect(Task.Id, Exit, Action.ParamIndex, TA.IsAdd, Var->TagType,
                      TA.TagVar);
    }
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

RType Sema::checkExpr(BodyContext &Ctx, Expr *E) {
  if (!E)
    return RType::invalid();
  RType Ty;
  switch (E->K) {
  case ExprKind::IntLit:
    Ty = RType::intTy();
    break;
  case ExprKind::DoubleLit:
    Ty = RType::doubleTy();
    break;
  case ExprKind::BoolLit:
    Ty = RType::boolTy();
    break;
  case ExprKind::StringLit:
    Ty = RType::stringTy();
    break;
  case ExprKind::NullLit:
    Ty = RType::nullTy();
    break;
  case ExprKind::VarRef:
    Ty = checkVarRef(Ctx, static_cast<VarRefExpr *>(E));
    break;
  case ExprKind::FieldAccess:
    Ty = checkFieldAccess(Ctx, static_cast<FieldAccessExpr *>(E));
    break;
  case ExprKind::Index:
    Ty = checkIndex(Ctx, static_cast<IndexExpr *>(E));
    break;
  case ExprKind::Call:
    Ty = checkCall(Ctx, static_cast<CallExpr *>(E));
    break;
  case ExprKind::NewObject:
    Ty = checkNewObject(Ctx, static_cast<NewObjectExpr *>(E));
    break;
  case ExprKind::NewArray:
    Ty = checkNewArray(Ctx, static_cast<NewArrayExpr *>(E));
    break;
  case ExprKind::Unary:
    Ty = checkUnary(Ctx, static_cast<UnaryExpr *>(E));
    break;
  case ExprKind::Binary:
    Ty = checkBinary(Ctx, static_cast<BinaryExpr *>(E));
    break;
  case ExprKind::Assign:
    Ty = checkAssign(Ctx, static_cast<AssignExpr *>(E));
    break;
  }
  E->Ty = Ty;
  return Ty;
}

RType Sema::checkVarRef(BodyContext &Ctx, VarRefExpr *E) {
  if (LocalVar *Var = lookupLocal(Ctx, E->Name)) {
    E->Bind = VarRefExpr::Binding::LocalSlot;
    E->Slot = Var->Slot;
    return Var->Ty;
  }
  if (Ctx.EnclosingClass) {
    int FieldIdx = Ctx.EnclosingClass->fieldIndex(E->Name);
    if (FieldIdx >= 0) {
      E->Bind = VarRefExpr::Binding::SelfField;
      E->FieldIndex = FieldIdx;
      return Ctx.EnclosingClass->Fields[static_cast<size_t>(FieldIdx)]
          .Resolved;
    }
  }
  err(E->Loc, formatString("unknown variable %s", E->Name.c_str()));
  return RType::invalid();
}

RType Sema::checkFieldAccess(BodyContext &Ctx, FieldAccessExpr *E) {
  RType BaseTy = checkExpr(Ctx, E->Base.get());
  if (BaseTy.isInvalid())
    return RType::invalid();
  if (BaseTy.isArray()) {
    if (E->Field == "length") {
      E->IsArrayLength = true;
      return RType::intTy();
    }
    err(E->Loc, formatString("arrays have no field %s", E->Field.c_str()));
    return RType::invalid();
  }
  if (BaseTy.Base != BaseKind::Class) {
    err(E->Loc, formatString("%s has no fields", typeName(BaseTy).c_str()));
    return RType::invalid();
  }
  ClassDeclAst &C = M.Classes[static_cast<size_t>(BaseTy.Cls)];
  int FieldIdx = C.fieldIndex(E->Field);
  if (FieldIdx < 0) {
    err(E->Loc, formatString("class %s has no field %s", C.Name.c_str(),
                             E->Field.c_str()));
    return RType::invalid();
  }
  E->FieldIndex = FieldIdx;
  return C.Fields[static_cast<size_t>(FieldIdx)].Resolved;
}

RType Sema::checkIndex(BodyContext &Ctx, IndexExpr *E) {
  RType BaseTy = checkExpr(Ctx, E->Base.get());
  RType IdxTy = checkExpr(Ctx, E->Index.get());
  if (!IdxTy.isInvalid() && IdxTy != RType::intTy())
    err(E->Loc, "array index must be an int");
  if (BaseTy.isInvalid())
    return RType::invalid();
  if (!BaseTy.isArray()) {
    err(E->Loc, formatString("cannot index %s", typeName(BaseTy).c_str()));
    return RType::invalid();
  }
  return BaseTy.element();
}

BuiltinId Sema::resolveBuiltin(const std::string &Namespace,
                               const std::string &Method) const {
  struct Entry {
    const char *Namespace;
    const char *Method;
    BuiltinId Id;
  };
  static const Entry Table[] = {
      {"System", "printString", BuiltinId::SystemPrintString},
      {"System", "printInt", BuiltinId::SystemPrintInt},
      {"System", "printDouble", BuiltinId::SystemPrintDouble},
      {"Math", "sqrt", BuiltinId::MathSqrt},
      {"Math", "abs", BuiltinId::MathAbs},
      {"Math", "fabs", BuiltinId::MathFabs},
      {"Math", "sin", BuiltinId::MathSin},
      {"Math", "cos", BuiltinId::MathCos},
      {"Math", "exp", BuiltinId::MathExp},
      {"Math", "log", BuiltinId::MathLog},
      {"Math", "pow", BuiltinId::MathPow},
      {"Math", "floor", BuiltinId::MathFloor},
      {"Math", "max", BuiltinId::MathMax},
      {"Math", "min", BuiltinId::MathMin},
      {"Bamboo", "charge", BuiltinId::BambooCharge},
      {"Bamboo", "rand", BuiltinId::BambooRand},
  };
  for (const Entry &Row : Table)
    if (Namespace == Row.Namespace && Method == Row.Method)
      return Row.Id;
  return BuiltinId::None;
}

RType Sema::checkBuiltinCall(BodyContext &Ctx, CallExpr *E,
                             RType ReceiverTy) {
  auto CheckArgs = [&](std::vector<RType> Expected, RType Ret) {
    if (E->Args.size() != Expected.size()) {
      err(E->Loc, formatString("%s expects %zu arguments, got %zu",
                               E->Method.c_str(), Expected.size(),
                               E->Args.size()));
      return Ret;
    }
    for (size_t I = 0; I < Expected.size(); ++I) {
      RType ArgTy = checkExpr(Ctx, E->Args[I].get());
      if (!ArgTy.isInvalid() && !isAssignable(Expected[I], ArgTy))
        err(E->Args[I]->Loc,
            formatString("argument %zu of %s must be %s, got %s", I + 1,
                         E->Method.c_str(), typeName(Expected[I]).c_str(),
                         typeName(ArgTy).c_str()));
    }
    return Ret;
  };

  switch (E->Builtin) {
  case BuiltinId::SystemPrintString:
    return CheckArgs({RType::stringTy()}, RType::voidTy());
  case BuiltinId::SystemPrintInt:
    return CheckArgs({RType::intTy()}, RType::voidTy());
  case BuiltinId::SystemPrintDouble:
    return CheckArgs({RType::doubleTy()}, RType::voidTy());
  case BuiltinId::MathSqrt:
  case BuiltinId::MathFabs:
  case BuiltinId::MathSin:
  case BuiltinId::MathCos:
  case BuiltinId::MathExp:
  case BuiltinId::MathLog:
  case BuiltinId::MathFloor:
    return CheckArgs({RType::doubleTy()}, RType::doubleTy());
  case BuiltinId::MathPow:
  case BuiltinId::MathMax:
  case BuiltinId::MathMin:
    return CheckArgs({RType::doubleTy(), RType::doubleTy()},
                     RType::doubleTy());
  case BuiltinId::MathAbs: {
    if (E->Args.size() == 1) {
      RType ArgTy = checkExpr(Ctx, E->Args[0].get());
      if (ArgTy == RType::intTy())
        return RType::intTy();
      if (ArgTy == RType::doubleTy())
        return RType::doubleTy();
      if (!ArgTy.isInvalid())
        err(E->Loc, "Math.abs requires a numeric argument");
      return RType::invalid();
    }
    err(E->Loc, "Math.abs expects one argument");
    return RType::invalid();
  }
  case BuiltinId::BambooCharge:
    return CheckArgs({RType::intTy()}, RType::voidTy());
  case BuiltinId::BambooRand:
    return CheckArgs({RType::intTy()}, RType::intTy());
  case BuiltinId::StringLength:
    (void)ReceiverTy;
    return CheckArgs({}, RType::intTy());
  case BuiltinId::StringCharAt:
    return CheckArgs({RType::intTy()}, RType::intTy());
  case BuiltinId::StringSubstring:
    return CheckArgs({RType::intTy(), RType::intTy()}, RType::stringTy());
  case BuiltinId::StringIndexOf:
    return CheckArgs({RType::stringTy(), RType::intTy()}, RType::intTy());
  case BuiltinId::StringEquals:
    return CheckArgs({RType::stringTy()}, RType::boolTy());
  case BuiltinId::None:
    break;
  }
  BAMBOO_UNREACHABLE("not a builtin");
}

RType Sema::checkCall(BodyContext &Ctx, CallExpr *E) {
  // Receiverless call: a method of the enclosing class.
  if (!E->Base) {
    if (!Ctx.EnclosingClass) {
      err(E->Loc, "tasks have no receiver; call methods on an object");
      return RType::invalid();
    }
    int MethodIdx = Ctx.EnclosingClass->methodIndex(E->Method);
    if (MethodIdx < 0 ||
        Ctx.EnclosingClass->Methods[static_cast<size_t>(MethodIdx)]
            .IsConstructor) {
      err(E->Loc, formatString("class %s has no method %s",
                               Ctx.EnclosingClass->Name.c_str(),
                               E->Method.c_str()));
      return RType::invalid();
    }
    E->TargetClass = Ctx.EnclosingClass->Id;
    E->MethodIndex = MethodIdx;
    MethodDecl &Method =
        Ctx.EnclosingClass->Methods[static_cast<size_t>(MethodIdx)];
    if (E->Args.size() != Method.Params.size()) {
      err(E->Loc, formatString("method %s expects %zu arguments, got %zu",
                               E->Method.c_str(), Method.Params.size(),
                               E->Args.size()));
      return Method.ResolvedReturn;
    }
    for (size_t I = 0; I < E->Args.size(); ++I) {
      RType ArgTy = checkExpr(Ctx, E->Args[I].get());
      if (!ArgTy.isInvalid() &&
          !isAssignable(Method.Params[I].Resolved, ArgTy))
        err(E->Args[I]->Loc,
            formatString("argument %zu of %s has type %s, expected %s", I + 1,
                         E->Method.c_str(), typeName(ArgTy).c_str(),
                         typeName(Method.Params[I].Resolved).c_str()));
    }
    return Method.ResolvedReturn;
  }

  // Builtin namespace receiver (System/Math/Bamboo), unless shadowed by a
  // local variable.
  if (E->Base->K == ExprKind::VarRef) {
    auto *Base = static_cast<VarRefExpr *>(E->Base.get());
    if (!lookupLocal(Ctx, Base->Name) &&
        (!Ctx.EnclosingClass ||
         Ctx.EnclosingClass->fieldIndex(Base->Name) < 0)) {
      BuiltinId Builtin = resolveBuiltin(Base->Name, E->Method);
      if (Builtin != BuiltinId::None) {
        Base->Bind = VarRefExpr::Binding::Namespace;
        E->Builtin = Builtin;
        return checkBuiltinCall(Ctx, E, RType::invalid());
      }
    }
  }

  RType BaseTy = checkExpr(Ctx, E->Base.get());
  if (BaseTy.isInvalid())
    return RType::invalid();

  // String builtin methods.
  if (BaseTy == RType::stringTy()) {
    static const struct {
      const char *Name;
      BuiltinId Id;
    } StringMethods[] = {
        {"length", BuiltinId::StringLength},
        {"charAt", BuiltinId::StringCharAt},
        {"substring", BuiltinId::StringSubstring},
        {"indexOf", BuiltinId::StringIndexOf},
        {"equals", BuiltinId::StringEquals},
    };
    for (const auto &Row : StringMethods) {
      if (E->Method == Row.Name) {
        E->Builtin = Row.Id;
        return checkBuiltinCall(Ctx, E, BaseTy);
      }
    }
    err(E->Loc, formatString("String has no method %s", E->Method.c_str()));
    return RType::invalid();
  }

  if (BaseTy.Base != BaseKind::Class || BaseTy.isArray()) {
    err(E->Loc, formatString("%s has no methods", typeName(BaseTy).c_str()));
    return RType::invalid();
  }

  ClassDeclAst &C = M.Classes[static_cast<size_t>(BaseTy.Cls)];
  int MethodIdx = C.methodIndex(E->Method);
  if (MethodIdx < 0 ||
      C.Methods[static_cast<size_t>(MethodIdx)].IsConstructor) {
    err(E->Loc, formatString("class %s has no method %s", C.Name.c_str(),
                             E->Method.c_str()));
    return RType::invalid();
  }
  E->TargetClass = C.Id;
  E->MethodIndex = MethodIdx;
  MethodDecl &Method = C.Methods[static_cast<size_t>(MethodIdx)];
  if (E->Args.size() != Method.Params.size()) {
    err(E->Loc, formatString("method %s expects %zu arguments, got %zu",
                             E->Method.c_str(), Method.Params.size(),
                             E->Args.size()));
    return Method.ResolvedReturn;
  }
  for (size_t I = 0; I < E->Args.size(); ++I) {
    RType ArgTy = checkExpr(Ctx, E->Args[I].get());
    if (!ArgTy.isInvalid() && !isAssignable(Method.Params[I].Resolved, ArgTy))
      err(E->Args[I]->Loc,
          formatString("argument %zu of %s has type %s, expected %s", I + 1,
                       E->Method.c_str(), typeName(ArgTy).c_str(),
                       typeName(Method.Params[I].Resolved).c_str()));
  }
  return Method.ResolvedReturn;
}

RType Sema::checkNewObject(BodyContext &Ctx, NewObjectExpr *E) {
  ClassDeclAst *C = M.findClass(E->ClassName);
  if (!C) {
    err(E->Loc, formatString("unknown class %s", E->ClassName.c_str()));
    return RType::invalid();
  }
  E->Class = C->Id;

  // Constructor resolution.
  int CtorIdx = -1;
  for (size_t I = 0; I < C->Methods.size(); ++I)
    if (C->Methods[I].IsConstructor)
      CtorIdx = static_cast<int>(I);
  E->CtorIndex = CtorIdx;
  if (CtorIdx >= 0) {
    MethodDecl &Ctor = C->Methods[static_cast<size_t>(CtorIdx)];
    if (E->Args.size() != Ctor.Params.size()) {
      err(E->Loc,
          formatString("constructor of %s expects %zu arguments, got %zu",
                       C->Name.c_str(), Ctor.Params.size(), E->Args.size()));
    } else {
      for (size_t I = 0; I < E->Args.size(); ++I) {
        RType ArgTy = checkExpr(Ctx, E->Args[I].get());
        if (!ArgTy.isInvalid() &&
            !isAssignable(Ctor.Params[I].Resolved, ArgTy))
          err(E->Args[I]->Loc,
              formatString("constructor argument %zu has type %s, expected %s",
                           I + 1, typeName(ArgTy).c_str(),
                           typeName(Ctor.Params[I].Resolved).c_str()));
      }
    }
  } else if (!E->Args.empty()) {
    err(E->Loc, formatString("class %s has no constructor", C->Name.c_str()));
    for (ExprPtr &Arg : E->Args)
      checkExpr(Ctx, Arg.get());
  }

  // Flag/tag initializers make this an allocation site; those are only
  // meaningful where the dependence analysis can attribute them to a task.
  if (!E->Flags.empty() || !E->Tags.empty()) {
    if (!Ctx.EnclosingTask) {
      err(E->Loc,
          "allocations with flag or tag initializers may only appear in "
          "task bodies");
      return RType::classTy(C->Id);
    }
    std::vector<std::string> FlagNames;
    for (FlagInit &FI : E->Flags) {
      if (C->Id != ir::InvalidId &&
          PB.peek().classOf(C->Id).flagIndex(FI.Flag) == ir::InvalidId) {
        err(FI.Loc, formatString("class %s has no flag %s", C->Name.c_str(),
                                 FI.Flag.c_str()));
        continue;
      }
      if (FI.Value)
        FlagNames.push_back(FI.Flag);
    }
    std::vector<ir::TagTypeId> BoundTags;
    for (TagInit &TI : E->Tags) {
      LocalVar *Var = lookupLocal(Ctx, TI.TagVar);
      if (!Var || Var->Ty.Base != BaseKind::Tag) {
        err(TI.Loc,
            formatString("%s is not a tag variable", TI.TagVar.c_str()));
        continue;
      }
      TI.Slot = Var->Slot;
      TI.Type = Var->TagType;
      BoundTags.push_back(Var->TagType);
    }
    E->Site = PB.addSite(Ctx.EnclosingTask->Id, C->Id, FlagNames,
                         std::move(BoundTags),
                         formatString("line%d", E->Loc.Line));
  }
  return RType::classTy(C->Id);
}

RType Sema::checkNewArray(BodyContext &Ctx, NewArrayExpr *E) {
  RType Elem = resolveTypeRef(E->Elem);
  if (Elem.isInvalid())
    return RType::invalid();
  for (ExprPtr &Dim : E->Dims) {
    RType DimTy = checkExpr(Ctx, Dim.get());
    if (!DimTy.isInvalid() && DimTy != RType::intTy())
      err(Dim->Loc, "array dimension must be an int");
  }
  Elem.Depth += static_cast<int>(E->Dims.size());
  return Elem;
}

RType Sema::checkUnary(BodyContext &Ctx, UnaryExpr *E) {
  RType Ty = checkExpr(Ctx, E->Operand.get());
  if (Ty.isInvalid())
    return Ty;
  if (E->Op == UnaryOp::Neg) {
    if (!Ty.isNumeric()) {
      err(E->Loc, "unary '-' requires a numeric operand");
      return RType::invalid();
    }
    return Ty;
  }
  if (Ty != RType::boolTy()) {
    err(E->Loc, "unary '!' requires a boolean operand");
    return RType::invalid();
  }
  return Ty;
}

RType Sema::checkBinary(BodyContext &Ctx, BinaryExpr *E) {
  RType L = checkExpr(Ctx, E->Lhs.get());
  RType R = checkExpr(Ctx, E->Rhs.get());
  if (L.isInvalid() || R.isInvalid())
    return RType::invalid();

  auto NumericResult = [&]() {
    return (L == RType::doubleTy() || R == RType::doubleTy())
               ? RType::doubleTy()
               : RType::intTy();
  };

  switch (E->Op) {
  case BinaryOp::Add:
    // String concatenation accepts any printable operand on either side.
    if (L == RType::stringTy() || R == RType::stringTy()) {
      auto Printable = [](const RType &Ty) {
        return Ty == RType::stringTy() || Ty.isNumeric() ||
               Ty == RType::boolTy();
      };
      if (Printable(L) && Printable(R))
        return RType::stringTy();
      err(E->Loc, "invalid operands to string concatenation");
      return RType::invalid();
    }
    [[fallthrough]];
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
    if (!L.isNumeric() || !R.isNumeric()) {
      err(E->Loc, "arithmetic requires numeric operands");
      return RType::invalid();
    }
    return NumericResult();
  case BinaryOp::Rem:
    if (L != RType::intTy() || R != RType::intTy()) {
      err(E->Loc, "'%' requires int operands");
      return RType::invalid();
    }
    return RType::intTy();
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    if (!L.isNumeric() || !R.isNumeric()) {
      err(E->Loc, "comparison requires numeric operands");
      return RType::invalid();
    }
    return RType::boolTy();
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    bool Ok = (L.isNumeric() && R.isNumeric()) ||
              (L == RType::boolTy() && R == RType::boolTy()) ||
              (L == RType::stringTy() && R == RType::stringTy()) ||
              (L.isReference() && R.isReference() &&
               (L == R || L.Base == BaseKind::Null ||
                R.Base == BaseKind::Null));
    if (!Ok) {
      err(E->Loc, formatString("cannot compare %s with %s",
                               typeName(L).c_str(), typeName(R).c_str()));
      return RType::invalid();
    }
    return RType::boolTy();
  }
  case BinaryOp::And:
  case BinaryOp::Or:
    if (L != RType::boolTy() || R != RType::boolTy()) {
      err(E->Loc, "logical operators require boolean operands");
      return RType::invalid();
    }
    return RType::boolTy();
  }
  BAMBOO_UNREACHABLE("covered switch");
}

RType Sema::checkAssign(BodyContext &Ctx, AssignExpr *E) {
  RType TargetTy = checkExpr(Ctx, E->Target.get());
  RType ValueTy = checkExpr(Ctx, E->Value.get());

  switch (E->Target->K) {
  case ExprKind::VarRef: {
    auto *Var = static_cast<VarRefExpr *>(E->Target.get());
    if (Var->Bind == VarRefExpr::Binding::LocalSlot &&
        TargetTy.Base == BaseKind::Tag) {
      err(E->Loc, "tag variables cannot be reassigned");
      return RType::invalid();
    }
    break;
  }
  case ExprKind::FieldAccess: {
    auto *Field = static_cast<FieldAccessExpr *>(E->Target.get());
    if (Field->IsArrayLength) {
      err(E->Loc, "array length is read-only");
      return RType::invalid();
    }
    break;
  }
  case ExprKind::Index:
    break;
  default:
    err(E->Loc, "invalid assignment target");
    return RType::invalid();
  }

  if (!TargetTy.isInvalid() && !ValueTy.isInvalid() &&
      !isAssignable(TargetTy, ValueTy))
    err(E->Loc, formatString("cannot assign %s to %s",
                             typeName(ValueTy).c_str(),
                             typeName(TargetTy).c_str()));
  return TargetTy;
}

bool Sema::isAssignable(const RType &Dst, const RType &Src) {
  if (Dst == Src)
    return true;
  if (Dst == RType::doubleTy() && Src == RType::intTy())
    return true;
  if (Src.Base == BaseKind::Null && Src.Depth == 0 && Dst.isReference())
    return true;
  return false;
}

std::string Sema::typeName(const RType &Ty) const {
  std::string Base;
  switch (Ty.Base) {
  case BaseKind::Invalid: Base = "<error>"; break;
  case BaseKind::Void: Base = "void"; break;
  case BaseKind::Int: Base = "int"; break;
  case BaseKind::Double: Base = "double"; break;
  case BaseKind::Bool: Base = "boolean"; break;
  case BaseKind::String: Base = "String"; break;
  case BaseKind::Null: Base = "null"; break;
  case BaseKind::Tag: Base = "tag"; break;
  case BaseKind::Class:
    Base = Ty.Cls >= 0 && static_cast<size_t>(Ty.Cls) < M.Classes.size()
               ? M.Classes[static_cast<size_t>(Ty.Cls)].Name
               : "<class>";
    break;
  }
  for (int I = 0; I < Ty.Depth; ++I)
    Base += "[]";
  return Base;
}
