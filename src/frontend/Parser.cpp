//===- frontend/Parser.cpp - Bamboo parser --------------------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "support/Format.h"

#include <cassert>

using namespace bamboo;
using namespace bamboo::frontend;
using namespace bamboo::frontend::ast;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

const Token &Parser::peek(size_t Ahead) const {
  size_t P = Pos + Ahead;
  if (P >= Tokens.size())
    P = Tokens.size() - 1; // Eof.
  return Tokens[P];
}

Token Parser::advance() {
  Token T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

Token Parser::expect(TokenKind K, const char *Context) {
  if (check(K))
    return advance();
  Diags.error(current().Loc,
              formatString("expected %s %s, found %s", tokenKindName(K),
                           Context, tokenKindName(current().Kind)));
  Token Dummy;
  Dummy.Kind = K;
  Dummy.Loc = current().Loc;
  return Dummy;
}

void Parser::error(const char *Context) {
  Diags.error(current().Loc,
              formatString("unexpected %s %s", tokenKindName(current().Kind),
                           Context));
}

void Parser::syncToDeclBoundary() {
  while (!check(TokenKind::Eof) && !check(TokenKind::KwClass) &&
         !check(TokenKind::KwTask) && !check(TokenKind::KwTagType))
    advance();
}

void Parser::syncToStmtBoundary() {
  while (!check(TokenKind::Eof)) {
    if (match(TokenKind::Semi))
      return;
    if (check(TokenKind::RBrace))
      return;
    advance();
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

Module Parser::parseModule(const std::string &ModuleName) {
  Module M;
  M.Name = ModuleName;
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwClass)) {
      parseClassDecl(M);
      continue;
    }
    if (check(TokenKind::KwTagType)) {
      parseTagTypeDecl(M);
      continue;
    }
    if (check(TokenKind::KwTask)) {
      parseTaskDecl(M);
      continue;
    }
    error("at top level; expected 'class', 'task', or 'tagtype'");
    advance();
    syncToDeclBoundary();
  }
  return M;
}

void Parser::parseClassDecl(Module &M) {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwClass, "to begin class declaration");
  Token Name = expect(TokenKind::Identifier, "for class name");

  ClassDeclAst C;
  C.Name = Name.Text;
  C.Loc = Loc;

  expect(TokenKind::LBrace, "to open class body");
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (match(TokenKind::KwFlag)) {
      Token FlagName = expect(TokenKind::Identifier, "for flag name");
      expect(TokenKind::Semi, "after flag declaration");
      C.Flags.push_back(FlagName.Text);
      continue;
    }

    // Constructor: `ClassName(params) { ... }`.
    if (check(TokenKind::Identifier) && current().Text == C.Name &&
        peek(1).is(TokenKind::LParen)) {
      SourceLoc CtorLoc = current().Loc;
      advance();
      TypeRef VoidTy;
      VoidTy.K = TypeRef::Kind::Void;
      VoidTy.Loc = CtorLoc;
      C.Methods.push_back(parseMethodDecl(VoidTy, C.Name, CtorLoc,
                                          /*IsConstructor=*/true));
      continue;
    }

    if (!startsType()) {
      error("in class body; expected flag, field, or method declaration");
      advance();
      syncToStmtBoundary();
      continue;
    }

    TypeRef Ty = parseTypeRef();
    Token MemberName = expect(TokenKind::Identifier, "for member name");
    if (check(TokenKind::LParen)) {
      C.Methods.push_back(parseMethodDecl(Ty, MemberName.Text, MemberName.Loc,
                                          /*IsConstructor=*/false));
      continue;
    }
    expect(TokenKind::Semi, "after field declaration");
    FieldDecl F;
    F.DeclType = Ty;
    F.Name = MemberName.Text;
    F.Loc = MemberName.Loc;
    C.Fields.push_back(std::move(F));
  }
  expect(TokenKind::RBrace, "to close class body");
  M.Classes.push_back(std::move(C));
}

MethodDecl Parser::parseMethodDecl(TypeRef ReturnType, std::string Name,
                                   SourceLoc Loc, bool IsConstructor) {
  MethodDecl Method;
  Method.ReturnType = std::move(ReturnType);
  Method.Name = std::move(Name);
  Method.Loc = Loc;
  Method.IsConstructor = IsConstructor;

  expect(TokenKind::LParen, "to open parameter list");
  if (!check(TokenKind::RParen)) {
    do {
      ParamDecl P;
      P.DeclType = parseTypeRef();
      Token PName = expect(TokenKind::Identifier, "for parameter name");
      P.Name = PName.Text;
      P.Loc = PName.Loc;
      Method.Params.push_back(std::move(P));
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close parameter list");
  Method.Body = parseBlock();
  return Method;
}

void Parser::parseTagTypeDecl(Module &M) {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwTagType, "to begin tag type declaration");
  Token Name = expect(TokenKind::Identifier, "for tag type name");
  expect(TokenKind::Semi, "after tag type declaration");
  TagTypeDeclAst T;
  T.Name = Name.Text;
  T.Loc = Loc;
  M.TagTypes.push_back(std::move(T));
}

void Parser::parseTaskDecl(Module &M) {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwTask, "to begin task declaration");
  Token Name = expect(TokenKind::Identifier, "for task name");

  TaskDeclAst T;
  T.Name = Name.Text;
  T.Loc = Loc;

  expect(TokenKind::LParen, "to open task parameter list");
  if (!check(TokenKind::RParen)) {
    do {
      T.Params.push_back(parseTaskParam());
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close task parameter list");
  T.Body = parseBlock();
  M.Tasks.push_back(std::move(T));
}

TaskParamAst Parser::parseTaskParam() {
  TaskParamAst P;
  Token ClassName = expect(TokenKind::Identifier, "for parameter class");
  Token ParamName = expect(TokenKind::Identifier, "for parameter name");
  P.ClassName = ClassName.Text;
  P.Name = ParamName.Text;
  P.Loc = ClassName.Loc;
  expect(TokenKind::KwIn, "before parameter guard");
  P.Guard = parseGuardOr();
  if (match(TokenKind::KwWith)) {
    do {
      TagConstraintAst TC;
      Token TagTy = expect(TokenKind::Identifier, "for tag type");
      Token TagVar = expect(TokenKind::Identifier, "for tag variable");
      TC.TagTypeName = TagTy.Text;
      TC.Var = TagVar.Text;
      TC.Loc = TagTy.Loc;
      P.Tags.push_back(std::move(TC));
    } while (match(TokenKind::KwAnd));
  }
  return P;
}

std::unique_ptr<GuardExprAst> Parser::parseGuardOr() {
  auto Lhs = parseGuardAnd();
  while (check(TokenKind::KwOr)) {
    SourceLoc Loc = advance().Loc;
    auto Node = std::make_unique<GuardExprAst>();
    Node->K = GuardExprAst::Kind::Or;
    Node->Loc = Loc;
    Node->Lhs = std::move(Lhs);
    Node->Rhs = parseGuardAnd();
    Lhs = std::move(Node);
  }
  return Lhs;
}

std::unique_ptr<GuardExprAst> Parser::parseGuardAnd() {
  auto Lhs = parseGuardUnary();
  while (check(TokenKind::KwAnd)) {
    SourceLoc Loc = advance().Loc;
    auto Node = std::make_unique<GuardExprAst>();
    Node->K = GuardExprAst::Kind::And;
    Node->Loc = Loc;
    Node->Lhs = std::move(Lhs);
    Node->Rhs = parseGuardUnary();
    Lhs = std::move(Node);
  }
  return Lhs;
}

std::unique_ptr<GuardExprAst> Parser::parseGuardUnary() {
  auto Node = std::make_unique<GuardExprAst>();
  Node->Loc = current().Loc;
  if (match(TokenKind::Bang)) {
    Node->K = GuardExprAst::Kind::Not;
    Node->Lhs = parseGuardUnary();
    return Node;
  }
  if (match(TokenKind::LParen)) {
    Node = parseGuardOr();
    expect(TokenKind::RParen, "to close guard expression");
    return Node;
  }
  if (match(TokenKind::KwTrue)) {
    Node->K = GuardExprAst::Kind::True;
    return Node;
  }
  if (match(TokenKind::KwFalse)) {
    Node->K = GuardExprAst::Kind::False;
    return Node;
  }
  Token FlagName = expect(TokenKind::Identifier, "for flag in guard");
  Node->K = GuardExprAst::Kind::Flag;
  Node->FlagName = FlagName.Text;
  return Node;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::startsType() const {
  switch (current().Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwInt:
  case TokenKind::KwDouble:
  case TokenKind::KwBoolean:
  case TokenKind::KwString:
  case TokenKind::Identifier:
    return true;
  default:
    return false;
  }
}

TypeRef Parser::parseTypeRef() {
  TypeRef Ty;
  Ty.Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::KwVoid:
    Ty.K = TypeRef::Kind::Void;
    advance();
    break;
  case TokenKind::KwInt:
    Ty.K = TypeRef::Kind::Int;
    advance();
    break;
  case TokenKind::KwDouble:
    Ty.K = TypeRef::Kind::Double;
    advance();
    break;
  case TokenKind::KwBoolean:
    Ty.K = TypeRef::Kind::Bool;
    advance();
    break;
  case TokenKind::KwString:
    Ty.K = TypeRef::Kind::String;
    advance();
    break;
  case TokenKind::Identifier:
    Ty.K = TypeRef::Kind::Class;
    Ty.ClassName = advance().Text;
    break;
  default:
    error("while parsing a type");
    advance();
    break;
  }
  while (check(TokenKind::LBracket) && peek(1).is(TokenKind::RBracket)) {
    advance();
    advance();
    ++Ty.ArrayDepth;
  }
  return Ty;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    size_t Before = Pos;
    StmtPtr S = parseStatement();
    if (S)
      Stmts.push_back(std::move(S));
    if (Pos == Before) {
      // No progress; avoid infinite loops on malformed input.
      advance();
      syncToStmtBoundary();
    }
  }
  expect(TokenKind::RBrace, "to close block");
  return std::make_unique<BlockStmt>(std::move(Stmts), Loc);
}

StmtPtr Parser::parseStatement() {
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwTag:
    return parseTagDeclStatement();
  case TokenKind::KwTaskExit:
    return parseTaskExitStatement();
  case TokenKind::KwIf:
    return parseIfStatement();
  case TokenKind::KwWhile:
    return parseWhileStatement();
  case TokenKind::KwFor:
    return parseForStatement();
  case TokenKind::KwReturn: {
    SourceLoc Loc = advance().Loc;
    ExprPtr Value;
    if (!check(TokenKind::Semi))
      Value = parseExpression();
    expect(TokenKind::Semi, "after return statement");
    return std::make_unique<ReturnStmt>(std::move(Value), Loc);
  }
  case TokenKind::KwBreak: {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::Semi, "after break");
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::Semi, "after continue");
    return std::make_unique<ContinueStmt>(Loc);
  }
  default:
    return parseVarDeclOrExprStatement();
  }
}

bool Parser::looksLikeVarDecl() const {
  switch (current().Kind) {
  case TokenKind::KwInt:
  case TokenKind::KwDouble:
  case TokenKind::KwBoolean:
  case TokenKind::KwString:
    return true;
  case TokenKind::Identifier:
    // `Foo x ...` or `Foo[] x ...`.
    if (peek(1).is(TokenKind::Identifier))
      return true;
    if (peek(1).is(TokenKind::LBracket) && peek(2).is(TokenKind::RBracket))
      return true;
    return false;
  default:
    return false;
  }
}

StmtPtr Parser::parseVarDeclOrExprStatement() {
  if (looksLikeVarDecl()) {
    TypeRef Ty = parseTypeRef();
    Token Name = expect(TokenKind::Identifier, "for variable name");
    ExprPtr Init;
    if (match(TokenKind::Assign))
      Init = parseExpression();
    expect(TokenKind::Semi, "after variable declaration");
    return std::make_unique<VarDeclStmt>(std::move(Ty), Name.Text,
                                         std::move(Init), Name.Loc);
  }
  SourceLoc Loc = current().Loc;
  ExprPtr E = parseExpression();
  expect(TokenKind::Semi, "after expression statement");
  if (!E)
    return nullptr;
  return std::make_unique<ExprStmt>(std::move(E), Loc);
}

StmtPtr Parser::parseTagDeclStatement() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwTag, "to begin tag declaration");
  Token Name = expect(TokenKind::Identifier, "for tag variable");
  expect(TokenKind::Assign, "in tag declaration");
  expect(TokenKind::KwNew, "in tag declaration");
  expect(TokenKind::KwTag, "in tag declaration");
  expect(TokenKind::LParen, "in tag declaration");
  Token TagTypeName = expect(TokenKind::Identifier, "for tag type");
  expect(TokenKind::RParen, "in tag declaration");
  expect(TokenKind::Semi, "after tag declaration");
  return std::make_unique<TagDeclStmt>(Name.Text, TagTypeName.Text, Loc);
}

StmtPtr Parser::parseTaskExitStatement() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwTaskExit, "to begin taskexit");
  expect(TokenKind::LParen, "after taskexit");
  std::vector<ExitParamAction> Actions;
  if (!check(TokenKind::RParen)) {
    do {
      ExitParamAction Action;
      Token ParamName = expect(TokenKind::Identifier, "for parameter name");
      Action.ParamName = ParamName.Text;
      Action.Loc = ParamName.Loc;
      expect(TokenKind::Colon, "after taskexit parameter name");
      do {
        if (match(TokenKind::KwAdd)) {
          Token Var = expect(TokenKind::Identifier, "for tag variable");
          Action.Tags.push_back(ExitTagActionAst{true, Var.Text, Var.Loc});
          continue;
        }
        if (match(TokenKind::KwClear)) {
          Token Var = expect(TokenKind::Identifier, "for tag variable");
          Action.Tags.push_back(ExitTagActionAst{false, Var.Text, Var.Loc});
          continue;
        }
        Token FlagName = expect(TokenKind::Identifier, "for flag name");
        expect(TokenKind::ColonAssign, "in flag assignment");
        bool Value;
        if (match(TokenKind::KwTrue)) {
          Value = true;
        } else {
          expect(TokenKind::KwFalse, "for flag value");
          Value = false;
        }
        Action.Flags.push_back(ExitFlagAssign{FlagName.Text, Value,
                                              FlagName.Loc});
      } while (match(TokenKind::Comma));
      Actions.push_back(std::move(Action));
    } while (match(TokenKind::Semi));
  }
  expect(TokenKind::RParen, "to close taskexit");
  expect(TokenKind::Semi, "after taskexit");
  return std::make_unique<TaskExitStmt>(std::move(Actions), Loc);
}

StmtPtr Parser::parseIfStatement() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwIf, "to begin if statement");
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "to close if condition");
  StmtPtr Then = parseStatement();
  StmtPtr Else;
  if (match(TokenKind::KwElse))
    Else = parseStatement();
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhileStatement() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwWhile, "to begin while statement");
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpression();
  expect(TokenKind::RParen, "to close while condition");
  StmtPtr Body = parseStatement();
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseForStatement() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwFor, "to begin for statement");
  expect(TokenKind::LParen, "after 'for'");

  StmtPtr Init;
  if (!match(TokenKind::Semi)) {
    if (looksLikeVarDecl()) {
      TypeRef Ty = parseTypeRef();
      Token Name = expect(TokenKind::Identifier, "for variable name");
      ExprPtr InitExpr;
      if (match(TokenKind::Assign))
        InitExpr = parseExpression();
      Init = std::make_unique<VarDeclStmt>(std::move(Ty), Name.Text,
                                           std::move(InitExpr), Name.Loc);
    } else {
      ExprPtr E = parseExpression();
      if (E)
        Init = std::make_unique<ExprStmt>(std::move(E), Loc);
    }
    expect(TokenKind::Semi, "after for initializer");
  }

  ExprPtr Cond;
  if (!check(TokenKind::Semi))
    Cond = parseExpression();
  expect(TokenKind::Semi, "after for condition");

  ExprPtr Step;
  if (!check(TokenKind::RParen))
    Step = parseExpression();
  expect(TokenKind::RParen, "to close for header");

  StmtPtr Body = parseStatement();
  return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                   std::move(Step), std::move(Body), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpression() {
  ExprPtr Lhs = parseLogicalOr();
  if (!Lhs)
    return nullptr;
  if (check(TokenKind::Assign)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseExpression(); // Right-associative.
    return std::make_unique<AssignExpr>(std::move(Lhs), std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseLogicalOr() {
  ExprPtr Lhs = parseLogicalAnd();
  while (check(TokenKind::PipePipe)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseLogicalAnd();
    Lhs = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseLogicalAnd() {
  ExprPtr Lhs = parseEquality();
  while (check(TokenKind::AmpAmp)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseEquality();
    Lhs = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseEquality() {
  ExprPtr Lhs = parseRelational();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::EqEq))
      Op = BinaryOp::Eq;
    else if (check(TokenKind::NotEq))
      Op = BinaryOp::Ne;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseRelational();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseRelational() {
  ExprPtr Lhs = parseAdditive();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Less))
      Op = BinaryOp::Lt;
    else if (check(TokenKind::LessEq))
      Op = BinaryOp::Le;
    else if (check(TokenKind::Greater))
      Op = BinaryOp::Gt;
    else if (check(TokenKind::GreaterEq))
      Op = BinaryOp::Ge;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseAdditive();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr Lhs = parseMultiplicative();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (check(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseMultiplicative();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr Lhs = parseUnary();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (check(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (check(TokenKind::Percent))
      Op = BinaryOp::Rem;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseUnary();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseUnary() {
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = advance().Loc;
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  }
  if (check(TokenKind::Bang)) {
    SourceLoc Loc = advance().Loc;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary(), Loc);
  }
  return parsePostfix();
}

std::vector<ExprPtr> Parser::parseCallArgs() {
  std::vector<ExprPtr> Args;
  expect(TokenKind::LParen, "to open argument list");
  if (!check(TokenKind::RParen)) {
    do {
      Args.push_back(parseExpression());
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close argument list");
  return Args;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  for (;;) {
    if (check(TokenKind::Dot)) {
      advance();
      Token Member = expect(TokenKind::Identifier, "after '.'");
      if (check(TokenKind::LParen)) {
        std::vector<ExprPtr> Args = parseCallArgs();
        E = std::make_unique<CallExpr>(std::move(E), Member.Text,
                                       std::move(Args), Member.Loc);
      } else {
        E = std::make_unique<FieldAccessExpr>(std::move(E), Member.Text,
                                              Member.Loc);
      }
      continue;
    }
    if (check(TokenKind::LBracket)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr Index = parseExpression();
      expect(TokenKind::RBracket, "to close index expression");
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Index), Loc);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parseNewExpression() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::KwNew, "to begin allocation");

  // Array of a primitive type: `new int[n]`, `new double[n][m]`.
  if (check(TokenKind::KwInt) || check(TokenKind::KwDouble) ||
      check(TokenKind::KwBoolean) || check(TokenKind::KwString) ||
      (check(TokenKind::Identifier) && peek(1).is(TokenKind::LBracket))) {
    TypeRef Elem;
    Elem.Loc = current().Loc;
    switch (current().Kind) {
    case TokenKind::KwInt: Elem.K = TypeRef::Kind::Int; break;
    case TokenKind::KwDouble: Elem.K = TypeRef::Kind::Double; break;
    case TokenKind::KwBoolean: Elem.K = TypeRef::Kind::Bool; break;
    case TokenKind::KwString: Elem.K = TypeRef::Kind::String; break;
    default:
      Elem.K = TypeRef::Kind::Class;
      Elem.ClassName = current().Text;
      break;
    }
    advance();
    std::vector<ExprPtr> Dims;
    while (check(TokenKind::LBracket)) {
      advance();
      Dims.push_back(parseExpression());
      expect(TokenKind::RBracket, "to close array dimension");
    }
    if (Dims.empty())
      Diags.error(Loc, "array allocation requires at least one dimension");
    return std::make_unique<NewArrayExpr>(std::move(Elem), std::move(Dims),
                                          Loc);
  }

  // Object allocation: `new C(args) { flag := true, add t }`.
  Token ClassName = expect(TokenKind::Identifier, "for class in allocation");
  std::vector<ExprPtr> Args;
  if (check(TokenKind::LParen))
    Args = parseCallArgs();
  std::vector<FlagInit> Flags;
  std::vector<TagInit> Tags;
  if (match(TokenKind::LBrace)) {
    if (!check(TokenKind::RBrace)) {
      do {
        if (match(TokenKind::KwAdd)) {
          Token Var = expect(TokenKind::Identifier, "for tag variable");
          Tags.push_back(TagInit{Var.Text, Var.Loc});
          continue;
        }
        Token FlagName = expect(TokenKind::Identifier, "for flag name");
        expect(TokenKind::ColonAssign, "in flag initializer");
        bool Value;
        if (match(TokenKind::KwTrue)) {
          Value = true;
        } else {
          expect(TokenKind::KwFalse, "for flag value");
          Value = false;
        }
        Flags.push_back(FlagInit{FlagName.Text, Value, FlagName.Loc});
      } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RBrace, "to close flag initializers");
  }
  return std::make_unique<NewObjectExpr>(ClassName.Text, std::move(Args),
                                         std::move(Flags), std::move(Tags),
                                         Loc);
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    Token T = advance();
    return std::make_unique<IntLitExpr>(T.IntValue, Loc);
  }
  case TokenKind::DoubleLiteral: {
    Token T = advance();
    return std::make_unique<DoubleLitExpr>(T.DoubleValue, Loc);
  }
  case TokenKind::StringLiteral: {
    Token T = advance();
    return std::make_unique<StringLitExpr>(T.Text, Loc);
  }
  case TokenKind::KwTrue:
    advance();
    return std::make_unique<BoolLitExpr>(true, Loc);
  case TokenKind::KwFalse:
    advance();
    return std::make_unique<BoolLitExpr>(false, Loc);
  case TokenKind::KwNull:
    advance();
    return std::make_unique<NullLitExpr>(Loc);
  case TokenKind::KwNew:
    return parseNewExpression();
  case TokenKind::LParen: {
    advance();
    ExprPtr E = parseExpression();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokenKind::Identifier: {
    Token T = advance();
    if (check(TokenKind::LParen)) {
      // Receiverless call to a method of the enclosing class.
      std::vector<ExprPtr> Args = parseCallArgs();
      return std::make_unique<CallExpr>(nullptr, T.Text, std::move(Args),
                                        Loc);
    }
    return std::make_unique<VarRefExpr>(T.Text, Loc);
  }
  default:
    error("while parsing an expression");
    advance();
    return nullptr;
  }
}
