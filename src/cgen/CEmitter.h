//===- cgen/CEmitter.h - C code generation ----------------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C backend: translates a compiled Bamboo module into a single
/// self-contained C file, mirroring the paper's compiler, which emitted C
/// for the TILEPro64 toolchain. The emitted file contains
///
///  - one struct per class (fields plus a flag word),
///  - one function per method (explicit `self` receiver),
///  - one function per task (parameter objects in, exit id out),
///  - generated guard predicates from the task declarations, and
///  - a small embedded single-core runtime: heap, parameter matching by
///    guard scan, and a scheduler loop that repeatedly dispatches any
///    enabled task until no work remains (the distributed scheduler of
///    the paper degenerates to this on one core).
///
/// The output compiles with any C11 compiler and, for programs without
/// tags, reproduces the interpreter's observable behaviour (System.print*
/// output). Programs using tags are rejected with a diagnostic — the
/// embedded C runtime does not implement tag matching.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_CGEN_CEMITTER_H
#define BAMBOO_CGEN_CEMITTER_H

#include "frontend/Sema.h"

#include <optional>
#include <string>

namespace bamboo::cgen {

/// Emits C source for \p CM. Returns std::nullopt and sets \p Error when
/// the module uses unsupported features (tags).
std::optional<std::string> emitC(const frontend::CompiledModule &CM,
                                 std::string &Error);

} // namespace bamboo::cgen

#endif // BAMBOO_CGEN_CEMITTER_H
