//===- driver/KeywordExample.h - The Section-2 example program --*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The keyword-counting example of Section 2 of the paper, in the Bamboo
/// DSL, shared by the figure benches and the examples. The startup task
/// partitions the input text, processText counts keyword occurrences per
/// section, and mergeIntermediateResult folds the per-section counts.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_DRIVER_KEYWORDEXAMPLE_H
#define BAMBOO_DRIVER_KEYWORDEXAMPLE_H

namespace bamboo::driver {

inline const char *KeywordCountSource = R"(
// Keyword counting, the running example of the Bamboo paper (Section 2).

class Partitioner {
  String text;
  int sections;
  int count;

  Partitioner(String t, int n) {
    text = t;
    sections = n;
    count = 0;
  }

  boolean morePartitions() {
    return count < sections;
  }

  String nextPartition() {
    int len = text.length();
    int start = count * len / sections;
    int end = (count + 1) * len / sections;
    count = count + 1;
    return text.substring(start, end);
  }

  int sectionNum() {
    return sections;
  }
}

class Text {
  flag process;
  flag submit;
  String section;
  int hits;

  Text(String s) {
    section = s;
    hits = 0;
  }

  void countWord(String w) {
    int i = 0;
    int n = section.length();
    while (i < n) {
      int j = section.indexOf(w, i);
      if (j < 0) {
        i = n;
      } else {
        hits = hits + 1;
        i = j + 1;
      }
    }
    Bamboo.charge(n * 4);
  }
}

class Results {
  flag finished;
  int expected;
  int merged;
  int total;

  Results(int n) {
    expected = n;
    merged = 0;
    total = 0;
  }

  boolean mergeResult(Text t) {
    total = total + t.hits;
    merged = merged + 1;
    return merged == expected;
  }
}

task startup(StartupObject s in initialstate) {
  Partitioner p = new Partitioner(s.args[0], 4);
  while (p.morePartitions()) {
    String section = p.nextPartition();
    Text tp = new Text(section) { process := true };
  }
  Results rp = new Results(p.sectionNum()) { finished := false };
  taskexit(s: initialstate := false);
}

task processText(Text tp in process) {
  tp.countWord("the");
  taskexit(tp: process := false, submit := true);
}

task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
  boolean allprocessed = rp.mergeResult(tp);
  if (allprocessed) {
    System.printString("total=" + rp.total);
    taskexit(rp: finished := true; tp: submit := false);
  }
  taskexit(tp: submit := false);
}
)";

} // namespace bamboo::driver

#endif // BAMBOO_DRIVER_KEYWORDEXAMPLE_H
