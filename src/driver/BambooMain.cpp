//===- driver/BambooMain.cpp - The bamboo command line tool -----------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `bamboo` tool: compiles a Bamboo source file and, depending on
/// flags, dumps analyses, emits C, or synthesizes a layout and executes
/// the program on the virtual many-core machine.
///
///   bamboo prog.bb --run [--cores=N] [--arg=STRING]
///   bamboo prog.bb --dump-cstg | --dump-astg | --dump-taskflow
///   bamboo prog.bb --dump-locks | --dump-ir | --dump-layout
///   bamboo prog.bb --emit-c
///
//===----------------------------------------------------------------------===//

#include "analysis/Disjoint.h"
#include "cgen/CEmitter.h"
#include "driver/Pipeline.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "machine/Topology.h"
#include "resilience/Checkpoint.h"
#include "resilience/FaultPlan.h"
#include "runtime/ThreadExecutor.h"
#include "sched/Scheduler.h"
#include "schedsim/SchedSim.h"
#include "serve/Server.h"
#include "support/Parse.h"
#include "support/Signal.h"
#include "support/Trace.h"
#include "vm/Vm.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

using namespace bamboo;

namespace {

/// Which engine --run executes on (engine choice used to be implicit:
/// always the tile machine).
enum class EngineKind { Tile, Sim, Thread };

/// How task bodies execute: the tree-walking interpreter or the bytecode
/// VM. Both run through the same BoundProgram seam and are required to be
/// observationally identical; the VM is the default because it is faster.
enum class ExecMode { Interp, Vm };

void usage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: bamboo <source.bb> [options]\n"
      "       bamboo serve [serve options]   (resident job server; see\n"
      "                                       'bamboo serve --help')\n"
      "  --run             synthesize a layout and execute (default)\n"
      "  --cores=N         target core count (default 62, max 1048576)\n"
      "  --topology=SPEC   hierarchical machine shape\n"
      "                    CHIPSxCLUSTERSxCORES[:chipHop,clusterHop,\n"
      "                    meshHop], e.g. 4x4x64 or 4x4x64:200,24,8.\n"
      "                    Cores form per-cluster meshes; cluster and\n"
      "                    chip crossings cost extra per-level hop\n"
      "                    latency. Sets the core count to the topology\n"
      "                    total; --cores, if also given, must agree.\n"
      "                    1x1xN is cycle-identical to the default flat\n"
      "                    mesh\n"
      "  --arg=S           program argument (repeatable)\n"
      "  --seed=N          synthesis and execution seed (default 1)\n"
      "  --jobs=N          worker threads for synthesis candidate\n"
      "                    evaluation (default 1; result is independent\n"
      "                    of N)\n"
      "  --engine=NAME     engine for the final run: 'tile' (default)\n"
      "                    executes on the cycle-accounted virtual\n"
      "                    machine; 'sim' replays the profile through\n"
      "                    the scheduling simulator (token-level, no\n"
      "                    program output); 'thread' runs one host\n"
      "                    thread per core (wall-clock timing; the\n"
      "                    --checkpoint-every value is an invocation\n"
      "                    count and --watchdog-cycles is read as\n"
      "                    milliseconds). --recovery=restart restarts\n"
      "                    apply to the tile engine\n"
      "  --sched=NAME      scheduling policy for the final run (synthesis\n"
      "                    always measures under rr): 'rr' (default)\n"
      "                    round-robin distribution, bit-identical to the\n"
      "                    historical scheduler; 'ws' adds deterministic\n"
      "                    work stealing with a seed-keyed victim order;\n"
      "                    'locality' steals from the nearest loaded core\n"
      "                    first (mesh hop distance); 'dep' places each\n"
      "                    send on the nearest hosting instance (Myrmics-\n"
      "                    style dependency-driven placement, no\n"
      "                    stealing). Every policy is byte-deterministic\n"
      "                    for a given program, seed and core count\n"
      "  --trace=FILE      record the final run's execution trace as\n"
      "                    Chrome trace-format JSON (about:tracing /\n"
      "                    Perfetto); deterministic for a given program,\n"
      "                    seed and core count\n"
      "  --metrics         print a per-core/per-task metrics rollup of\n"
      "                    the final run (busy%%, queue depth, lock\n"
      "                    retries, message bytes/hops)\n"
      "  --faults=SPEC     inject faults into the final run (synthesis\n"
      "                    and profiling stay fault-free). SPEC is a\n"
      "                    comma list of KIND@CYCLE[:CORE|:FROM-TO][xN]\n"
      "                    scheduled faults and KIND~RATE seeded rates;\n"
      "                    kinds: drop dup delay stall fail lock.\n"
      "                    e.g. --faults=drop~0.05,fail@20000:3\n"
      "  --fault-seed=N    seed for the fault decision stream (default\n"
      "                    1); same plan + seed => identical faults\n"
      "  --recovery=MODE   on (default): absorb injected faults via\n"
      "                    retransmission and core failover; off: let\n"
      "                    faults take raw effect (the run then reports\n"
      "                    failure instead of recovering); restart: let\n"
      "                    faults take raw effect but restart a failed\n"
      "                    run from its most recent checkpoint (take\n"
      "                    them with --checkpoint-every) with a bumped\n"
      "                    fault seed, up to 5 attempts\n"
      "  --checkpoint-every=N\n"
      "                    snapshot the complete run state at each\n"
      "                    N-cycle boundary; a checkpointed run is\n"
      "                    byte-identical to an uncheckpointed one\n"
      "  --checkpoint-dir=DIR\n"
      "                    also write each snapshot to DIR/ckpt-<cycle>\n"
      "                    (created if missing)\n"
      "  --restore=FILE    resume execution from a checkpoint file\n"
      "                    written by --checkpoint-dir; the program,\n"
      "                    seed, args and layout must match (exit 4 on\n"
      "                    mismatch or a corrupt file)\n"
      "  --exec-mode=MODE  how task bodies execute: 'vm' (default)\n"
      "                    compiles them to register bytecode run by a\n"
      "                    threaded-code VM; 'interp' walks the AST. The\n"
      "                    two modes produce identical output, cycle\n"
      "                    counts, traces and checkpoints\n"
      "  --watchdog-cycles=N\n"
      "                    abort when virtual time advances N cycles\n"
      "                    with no dispatch or completion, printing a\n"
      "                    diagnostic dump (exit 3); 0 disables\n"
      "  --dump-ir         print the task-level IR\n"
      "  --dump-astg       print per-class state graphs (DOT)\n"
      "  --dump-cstg       print the combined state graph (DOT)\n"
      "  --dump-taskflow   print the task flow graph (DOT)\n"
      "  --dump-locks      print the lock plans\n"
      "  --dump-layout     print the synthesized layout\n"
      "  --dump-bytecode   print the VM bytecode disassembly (implies\n"
      "                    --exec-mode=vm)\n"
      "  --emit-c          print generated C code\n"
      "  --help            print this help\n"
      "exit codes: 0 success, 1 runtime/compile error, 2 usage error,\n"
      "3 watchdog abort, 4 restore failure, 5 interrupted by signal\n");
}

void serveUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: bamboo serve [options]\n"
      "  --apps-dir=DIR    directory of .bb apps to keep resident\n"
      "                    (default examples/dsl)\n"
      "  --port=N          TCP port on 127.0.0.1 (default 0: pick an\n"
      "                    ephemeral port)\n"
      "  --port-file=FILE  write the bound port here (atomically), for\n"
      "                    race-free discovery of an ephemeral port\n"
      "  --workers=N       resident worker count (default 2)\n"
      "  --jobs=N          synthesis threads per worker (default 1)\n"
      "  --batch=N         jobs one worker claims per queue pass,\n"
      "                    grouped by app for warm reuse (default 4)\n"
      "  --queue-limit=N   admission queue bound; beyond it requests\n"
      "                    get a queue-full error (default 256)\n"
      "  --topology=SPEC   hierarchical machine shape (same grammar as\n"
      "                    the one-shot --topology). Requests whose\n"
      "                    'cores' equals the topology total run on the\n"
      "                    hierarchical machine; any other core count\n"
      "                    runs the flat mesh as before\n"
      "  --trace=FILE      record request spans as Chrome trace JSON,\n"
      "                    written after drain\n"
      "  --metrics         print the request rollup on exit\n"
      "  --chaos=SPEC      inject faults into every worker engine (same\n"
      "                    grammar as the one-shot --faults). Failed runs\n"
      "                    are retried from their last in-memory\n"
      "                    checkpoint with a bumped fault seed; each\n"
      "                    job's seed is a pure function of (chaos seed,\n"
      "                    request id), so outcomes are byte-reproducible\n"
      "                    across --workers\n"
      "  --chaos-seed=N    base seed for chaos fault draws (default 1)\n"
      "  --watchdog-cycles=N\n"
      "                    per-job engine watchdog: abort a run whose\n"
      "                    clock advances N cycles (ms on the thread\n"
      "                    engine) with no progress and answer it 'hung'\n"
      "                    (default 50000000); 0 disables\n"
      "  --checkpoint-every=N\n"
      "                    in-memory snapshot cadence for chaos retries,\n"
      "                    cycles (tile/sim) or invocations (thread)\n"
      "                    (default 10000); only active under --chaos\n"
      "  --max-retries=N   default per-job retry budget when a request\n"
      "                    does not carry max_retries (default 2, max 8)\n"
      "  --quarantine-ms=N how long an (app, args, seed) key that burned\n"
      "                    every retry stays quarantined; repeat requests\n"
      "                    are rejected with 'quarantined' (default\n"
      "                    5000); 0 disables\n"
      "  --default-deadline-ms=N\n"
      "                    deadline applied to requests that carry no\n"
      "                    deadline_ms; over-deadline jobs are cancelled\n"
      "                    and answered 'deadline-exceeded' (default 0:\n"
      "                    no deadline)\n"
      "  --help            print this help\n"
      "protocol: one JSON request per line, one JSON response line per\n"
      "request (see README 'bamboo serve'). SIGINT/SIGTERM drain\n"
      "gracefully: accepted requests finish, new ones are rejected with\n"
      "a retry-after error, and the process exits 0 once drained.\n");
}

/// Parses the value of --FLAG=N with the checked parser; on junk prints
/// the error the unknown-flag path would and signals exit 2.
bool checkedU64(const std::string &Arg, size_t Prefix, const char *Flag,
                uint64_t &Out) {
  std::string Text = Arg.substr(Prefix);
  if (!bamboo::support::parseU64(Text, Out)) {
    std::fprintf(stderr,
                 "bamboo: %s expects a non-negative integer, got '%s'\n",
                 Flag, Text.c_str());
    return false;
  }
  return true;
}

/// Same, for int-typed flags with a sanity range.
bool checkedInt(const std::string &Arg, size_t Prefix, const char *Flag,
                int64_t Min, int64_t Max, int &Out) {
  std::string Text = Arg.substr(Prefix);
  int64_t Value = 0;
  if (!bamboo::support::parseBoundedInt(Text, Min, Max, Value)) {
    std::fprintf(
        stderr, "bamboo: %s expects an integer in [%lld, %lld], got '%s'\n",
        Flag, static_cast<long long>(Min), static_cast<long long>(Max),
        Text.c_str());
    return false;
  }
  Out = static_cast<int>(Value);
  return true;
}

/// The `bamboo serve` subcommand: a resident job server over the apps
/// directory. Blocks until SIGINT/SIGTERM, then drains gracefully.
int runServe(int Argc, char **Argv) {
  serve::ServerOptions SO;
  SO.AppsDir = "examples/dsl";
  std::string TracePath;
  bool Metrics = false;
  // Owns the parsed --chaos plan; ServerOptions::Chaos is a non-owning
  // pointer that must outlive the server.
  resilience::FaultPlan ChaosPlan;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help") {
      serveUsage(stdout);
      return 0;
    }
    if (Arg.rfind("--apps-dir=", 0) == 0)
      SO.AppsDir = Arg.substr(11);
    else if (Arg.rfind("--port=", 0) == 0) {
      int Port = 0;
      if (!checkedInt(Arg, 7, "--port", 0, 65535, Port))
        return 2;
      SO.Port = static_cast<uint16_t>(Port);
    } else if (Arg.rfind("--port-file=", 0) == 0)
      SO.PortFile = Arg.substr(12);
    else if (Arg.rfind("--workers=", 0) == 0) {
      if (!checkedInt(Arg, 10, "--workers", 1, 256, SO.Workers))
        return 2;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!checkedInt(Arg, 7, "--jobs", 0, 1024, SO.Jobs))
        return 2;
    } else if (Arg.rfind("--batch=", 0) == 0) {
      if (!checkedInt(Arg, 8, "--batch", 1, 1024, SO.Batch))
        return 2;
    } else if (Arg.rfind("--queue-limit=", 0) == 0) {
      int Limit = 0;
      if (!checkedInt(Arg, 14, "--queue-limit", 1, 1 << 20, Limit))
        return 2;
      SO.QueueLimit = static_cast<size_t>(Limit);
    } else if (Arg.rfind("--topology=", 0) == 0) {
      std::string Err;
      SO.Topo = machine::Topology::parse(Arg.substr(11), Err);
      if (!SO.Topo) {
        std::fprintf(stderr, "bamboo: %s\n", Err.c_str());
        return 2;
      }
    } else if (Arg.rfind("--trace=", 0) == 0)
      TracePath = Arg.substr(8);
    else if (Arg == "--metrics")
      Metrics = true;
    else if (Arg.rfind("--chaos=", 0) == 0) {
      std::string Error;
      auto Plan = resilience::FaultPlan::parse(Arg.substr(8), Error);
      if (!Plan) {
        std::fprintf(stderr, "bamboo: --chaos: %s\n", Error.c_str());
        return 2;
      }
      ChaosPlan = *Plan;
      if (!ChaosPlan.empty())
        SO.Chaos = &ChaosPlan;
    } else if (Arg.rfind("--chaos-seed=", 0) == 0) {
      if (!checkedU64(Arg, 13, "--chaos-seed", SO.ChaosSeed))
        return 2;
    } else if (Arg.rfind("--watchdog-cycles=", 0) == 0) {
      if (!checkedU64(Arg, 18, "--watchdog-cycles", SO.WatchdogCycles))
        return 2;
    } else if (Arg.rfind("--checkpoint-every=", 0) == 0) {
      if (!checkedU64(Arg, 19, "--checkpoint-every", SO.CheckpointEvery))
        return 2;
    } else if (Arg.rfind("--max-retries=", 0) == 0) {
      if (!checkedInt(Arg, 14, "--max-retries", 0,
                      static_cast<int64_t>(serve::MaxRetryLimit),
                      SO.MaxRetries))
        return 2;
    } else if (Arg.rfind("--quarantine-ms=", 0) == 0) {
      if (!checkedInt(Arg, 16, "--quarantine-ms", 0, 86'400'000,
                      SO.QuarantineMs))
        return 2;
    } else if (Arg.rfind("--default-deadline-ms=", 0) == 0) {
      uint64_t Ms = 0;
      if (!checkedU64(Arg, 22, "--default-deadline-ms", Ms))
        return 2;
      if (Ms > serve::MaxDeadlineMs) {
        std::fprintf(stderr,
                     "bamboo: --default-deadline-ms must be at most %llu\n",
                     static_cast<unsigned long long>(serve::MaxDeadlineMs));
        return 2;
      }
      SO.DefaultDeadlineMs = Ms;
    } else {
      std::fprintf(stderr, "unknown option %s\n", Arg.c_str());
      serveUsage(stderr);
      return 2;
    }
  }

  support::Trace Trace;
  if (!TracePath.empty() || Metrics)
    SO.Trace = &Trace;
  support::installStopHandlers();

  serve::Server Srv(SO);
  if (std::string Err = Srv.start(); !Err.empty()) {
    std::fprintf(stderr, "bamboo: serve: %s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "bamboo: serving %zu apps on 127.0.0.1:%u (%d workers, "
               "batch %d, queue %zu)\n",
               Srv.appCount(), static_cast<unsigned>(Srv.port()),
               SO.Workers, SO.Batch, SO.QueueLimit);
  if (SO.Topo)
    std::fprintf(stderr,
                 "bamboo: topology %s active for %d-core requests\n",
                 SO.Topo->spec().c_str(), SO.Topo->totalCores());
  if (SO.Chaos)
    std::fprintf(stderr,
                 "bamboo: chaos enabled: %s (seed %llu, max %d retries)\n",
                 SO.Chaos->str().c_str(),
                 static_cast<unsigned long long>(SO.ChaosSeed),
                 SO.MaxRetries);

  // The handlers only raise the flag; the drain below is the real work.
  while (!support::stopRequested())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::fprintf(stderr, "bamboo: signal %d received; draining\n",
               support::stopSignal());
  Srv.beginDrain();
  Srv.waitUntilDrained();
  serve::ServerStats St = Srv.stats();
  Srv.shutdown();

  if (!TracePath.empty()) {
    std::ofstream Out(TracePath, std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "bamboo: cannot write %s\n", TracePath.c_str());
      return 1;
    }
    Out << Trace.toChromeJson();
    std::fprintf(stderr, "bamboo: wrote %zu trace events to %s\n",
                 Trace.size(), TracePath.c_str());
  }
  if (Metrics)
    std::fprintf(stderr, "%s",
                 Trace.metrics().str(Trace.taskNames()).c_str());
  std::fprintf(stderr,
               "bamboo: drained cleanly: %llu requests served, %llu "
               "synthesis runs, %llu rejected (%llu bad)\n",
               static_cast<unsigned long long>(St.Completed),
               static_cast<unsigned long long>(St.SynthRuns),
               static_cast<unsigned long long>(St.QueueFullRejects +
                                               St.DrainingRejects),
               static_cast<unsigned long long>(St.BadRequests));
  if (St.Retries + St.TimedOut + St.Hung + St.Quarantined +
          St.QuarantinedRejects >
      0)
    std::fprintf(stderr,
                 "bamboo: supervision: %llu retries, %llu timed out, "
                 "%llu hung, %llu quarantined (%llu rejects)\n",
                 static_cast<unsigned long long>(St.Retries),
                 static_cast<unsigned long long>(St.TimedOut),
                 static_cast<unsigned long long>(St.Hung),
                 static_cast<unsigned long long>(St.Quarantined),
                 static_cast<unsigned long long>(St.QuarantinedRejects));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && std::strcmp(Argv[1], "serve") == 0)
    return runServe(Argc, Argv);
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--help") == 0) {
      usage(stdout);
      return 0;
    }
  if (Argc < 2) {
    usage(stderr);
    return 2;
  }
  std::string SourcePath = Argv[1];
  int Cores = 62;
  bool CoresSet = false;
  std::shared_ptr<const machine::Topology> Topo;
  int Jobs = 1;
  EngineKind Engine = EngineKind::Tile;
  sched::Policy SchedPolicy = sched::Policy::Rr;
  ExecMode Mode = ExecMode::Vm;
  uint64_t Seed = 1;
  uint64_t FaultSeed = 1;
  bool Recovery = true;
  bool RestartPolicy = false;
  uint64_t CheckpointEvery = 0;
  std::string CheckpointDir;
  std::string RestorePath;
  uint64_t WatchdogCycles = 0;
  std::optional<resilience::FaultPlan> Faults;
  std::vector<std::string> Args;
  std::string TracePath;
  bool Metrics = false;
  bool DumpIr = false, DumpAstg = false, DumpCstg = false,
       DumpTaskflow = false, DumpLocks = false, DumpLayout = false,
       DumpBytecode = false, EmitCCode = false, Run = false;

  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    // Numeric flags all go through the checked parser: "--cores=abc" and
    // "--seed=12x" are hard usage errors (exit 2), never a silent 0.
    if (Arg.rfind("--cores=", 0) == 0) {
      if (!checkedInt(Arg, 8, "--cores", 1, machine::Topology::MaxTotalCores,
                      Cores))
        return 2;
      CoresSet = true;
    } else if (Arg.rfind("--topology=", 0) == 0) {
      std::string Err;
      Topo = machine::Topology::parse(Arg.substr(11), Err);
      if (!Topo) {
        std::fprintf(stderr, "bamboo: %s\n", Err.c_str());
        return 2;
      }
    } else if (Arg.rfind("--arg=", 0) == 0)
      Args.push_back(Arg.substr(6));
    else if (Arg.rfind("--seed=", 0) == 0) {
      if (!checkedU64(Arg, 7, "--seed", Seed))
        return 2;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      if (!checkedInt(Arg, 7, "--jobs", 0, 1024, Jobs))
        return 2;
    } else if (Arg.rfind("--engine=", 0) == 0) {
      std::string Name = Arg.substr(9);
      if (Name == "tile")
        Engine = EngineKind::Tile;
      else if (Name == "sim")
        Engine = EngineKind::Sim;
      else if (Name == "thread")
        Engine = EngineKind::Thread;
      else {
        std::fprintf(
            stderr,
            "bamboo: --engine expects 'tile', 'sim' or 'thread', got "
            "'%s'\n",
            Name.c_str());
        return 2;
      }
    } else if (Arg.rfind("--sched=", 0) == 0) {
      std::string Name = Arg.substr(8);
      if (!sched::parsePolicy(Name, SchedPolicy)) {
        std::fprintf(stderr, "bamboo: --sched expects %s, got '%s'\n",
                     sched::policyChoices(), Name.c_str());
        return 2;
      }
    }
    else if (Arg.rfind("--exec-mode=", 0) == 0) {
      std::string Name = Arg.substr(12);
      if (Name == "interp")
        Mode = ExecMode::Interp;
      else if (Name == "vm")
        Mode = ExecMode::Vm;
      else {
        std::fprintf(stderr,
                     "bamboo: --exec-mode expects 'interp' or 'vm', got "
                     "'%s'\n",
                     Name.c_str());
        return 2;
      }
    }
    else if (Arg.rfind("--trace=", 0) == 0)
      TracePath = Arg.substr(8);
    else if (Arg.rfind("--faults=", 0) == 0) {
      std::string Error;
      Faults = resilience::FaultPlan::parse(Arg.substr(9), Error);
      if (!Faults) {
        std::fprintf(stderr, "bamboo: bad --faults spec: %s\n",
                     Error.c_str());
        return 2;
      }
    } else if (Arg.rfind("--fault-seed=", 0) == 0) {
      if (!checkedU64(Arg, 13, "--fault-seed", FaultSeed))
        return 2;
    } else if (Arg.rfind("--recovery=", 0) == 0) {
      std::string Mode = Arg.substr(11);
      if (Mode == "on") {
        Recovery = true;
        RestartPolicy = false;
      } else if (Mode == "off") {
        Recovery = false;
        RestartPolicy = false;
      } else if (Mode == "restart") {
        // Faults take raw effect; a failed run restarts from its last
        // checkpoint with a different fault stream instead of absorbing
        // faults in place.
        Recovery = false;
        RestartPolicy = true;
      } else {
        std::fprintf(
            stderr,
            "bamboo: --recovery expects 'on', 'off' or 'restart', got "
            "'%s'\n",
            Mode.c_str());
        return 2;
      }
    } else if (Arg.rfind("--checkpoint-every=", 0) == 0) {
      if (!checkedU64(Arg, 19, "--checkpoint-every", CheckpointEvery))
        return 2;
    } else if (Arg.rfind("--checkpoint-dir=", 0) == 0)
      CheckpointDir = Arg.substr(17);
    else if (Arg.rfind("--restore=", 0) == 0)
      RestorePath = Arg.substr(10);
    else if (Arg.rfind("--watchdog-cycles=", 0) == 0) {
      if (!checkedU64(Arg, 18, "--watchdog-cycles", WatchdogCycles))
        return 2;
    } else if (Arg == "--metrics")
      Metrics = true;
    else if (Arg == "--run")
      Run = true;
    else if (Arg == "--dump-ir")
      DumpIr = true;
    else if (Arg == "--dump-astg")
      DumpAstg = true;
    else if (Arg == "--dump-cstg")
      DumpCstg = true;
    else if (Arg == "--dump-taskflow")
      DumpTaskflow = true;
    else if (Arg == "--dump-locks")
      DumpLocks = true;
    else if (Arg == "--dump-layout")
      DumpLayout = true;
    else if (Arg == "--dump-bytecode")
      DumpBytecode = true;
    else if (Arg == "--emit-c")
      EmitCCode = true;
    else {
      std::fprintf(stderr, "unknown option %s\n", Arg.c_str());
      usage(stderr);
      return 2;
    }
  }
  if (Topo) {
    // --topology defines the machine width; an explicit --cores may
    // restate it but never contradict it.
    if (CoresSet && Cores != Topo->totalCores()) {
      std::fprintf(stderr,
                   "bamboo: --cores=%d contradicts --topology=%s, which "
                   "has %d cores; drop --cores or make them agree\n",
                   Cores, Topo->spec().c_str(), Topo->totalCores());
      return 2;
    }
    Cores = Topo->totalCores();
  }
  // --trace/--metrics/--faults and the checkpoint/watchdog flags observe
  // or perturb an execution, so they imply --run.
  if (!TracePath.empty() || Metrics || Faults || CheckpointEvery > 0 ||
      !RestorePath.empty() || WatchdogCycles > 0)
    Run = true;
  if (!DumpIr && !DumpAstg && !DumpCstg && !DumpTaskflow && !DumpLocks &&
      !DumpLayout && !DumpBytecode && !EmitCCode)
    Run = true;

  resilience::Checkpoint RestoreCkpt;
  if (!RestorePath.empty()) {
    std::string Err =
        resilience::Checkpoint::loadFile(RestorePath, RestoreCkpt);
    if (!Err.empty()) {
      std::fprintf(stderr, "bamboo: cannot restore from %s: %s\n",
                   RestorePath.c_str(), Err.c_str());
      return 4;
    }
  }
  if (!CheckpointDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(CheckpointDir, Ec);
    if (Ec) {
      std::fprintf(stderr, "bamboo: cannot create %s: %s\n",
                   CheckpointDir.c_str(), Ec.message().c_str());
      return 1;
    }
  }

  std::ifstream In(SourcePath);
  if (!In) {
    std::fprintf(stderr, "bamboo: cannot open %s\n", SourcePath.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  frontend::DiagnosticEngine Diags;
  auto CM = frontend::compileString(Buffer.str(), SourcePath, Diags);
  if (!CM) {
    std::fprintf(stderr, "%s", Diags.render(SourcePath).c_str());
    return 1;
  }
  analysis::analyzeDisjointness(*CM);

  if (DumpIr)
    std::printf("%s", CM->Prog.str().c_str());
  if (DumpLocks) {
    auto Plans = analysis::buildLockPlans(CM->Prog);
    std::printf("%s", analysis::lockPlanSummary(CM->Prog, Plans).c_str());
  }
  if (DumpAstg) {
    auto Graphs = analysis::buildAstgs(CM->Prog);
    for (const analysis::Astg &G : Graphs)
      if (!G.Nodes.empty())
        std::printf("%s\n", G.toDot(CM->Prog).c_str());
  }
  if (DumpCstg) {
    analysis::Cstg Graph = analysis::buildCstg(CM->Prog);
    std::printf("%s", Graph.toDot(CM->Prog).c_str());
  }
  if (DumpTaskflow) {
    analysis::Cstg Graph = analysis::buildCstg(CM->Prog);
    std::printf("%s", analysis::taskFlowDot(CM->Prog, Graph).c_str());
  }
  if (EmitCCode) {
    std::string Error;
    auto C = cgen::emitC(*CM, Error);
    if (!C) {
      std::fprintf(stderr, "bamboo: %s\n", Error.c_str());
      return 1;
    }
    std::printf("%s", C->c_str());
  }
  if (!Run && !DumpLayout && !DumpBytecode)
    return 0;

  std::unique_ptr<interp::DslProgram> IP;
  if (Mode == ExecMode::Vm || DumpBytecode) {
    auto VP = std::make_unique<vm::VmProgram>(std::move(*CM));
    if (DumpBytecode) {
      if (VP->usesBytecode())
        std::printf("%s", vm::disassemble(VP->chunk()).c_str());
      else
        std::printf("; bytecode unavailable: a body exceeds the format "
                    "limits, interpreter fallback active\n");
    }
    IP = std::move(VP);
  } else {
    IP = std::make_unique<interp::InterpProgram>(std::move(*CM));
  }
  if (!Run && !DumpLayout)
    return 0;

  driver::PipelineOptions Opts;
  Opts.Target = Topo ? machine::MachineConfig::hierarchical(Topo)
                     : machine::MachineConfig::tilePro64();
  Opts.Target.NumCores = Cores;
  Opts.Dsa.Seed = Seed;
  Opts.Dsa.Jobs = Jobs;
  Opts.Exec.Args = Args;
  Opts.Exec.Seed = Seed;
  // Catch SIGINT/SIGTERM from here on: a signal during synthesis lets
  // the pipeline finish (its profiling runs must observe the fault-free
  // machine end to end), then the final run below aborts immediately,
  // flushes trace/metrics, and main exits with the documented code 5.
  if (Run)
    support::installStopHandlers();
  driver::PipelineResult R = driver::runPipeline(IP->bound(), Opts);

  if (DumpLayout)
    std::printf("%s", R.BestLayout.str(IP->bound().program()).c_str());
  if (Run) {
    // The pipeline ran the program for profiling and measurement; re-run
    // the chosen layout once for clean program output (and, when
    // requested, the execution trace / metrics of exactly that run).
    support::Trace Trace;
    if (!TracePath.empty() || Metrics)
      Opts.Exec.Trace = &Trace;
    // The stop flag is wired only into this final run, not the
    // synthesis pipeline above (the handlers themselves were installed
    // before the pipeline, so the flag may already be raised here — the
    // run then stops at its first event boundary).
    Opts.Exec.Stop = support::stopFlag();
    bool Interrupted = false;
    // Like faults, the scheduling policy applies only to this final run:
    // the synthesis search above always measures under rr.
    Opts.Exec.Sched = SchedPolicy;
    // Faults perturb only this final run; the synthesis search above
    // measured the fault-free machine.
    if (Faults) {
      Opts.Exec.Faults = &*Faults;
      Opts.Exec.FaultSeed = FaultSeed;
      Opts.Exec.Recovery = Recovery;
    }
    Opts.Exec.CheckpointEvery = CheckpointEvery;
    Opts.Exec.WatchdogCycles = WatchdogCycles;
    resilience::Checkpoint LastCkpt;
    bool HaveCkpt = false;
    if (CheckpointEvery > 0)
      Opts.Exec.OnCheckpoint = [&](const resilience::Checkpoint &C) {
        // A tainted snapshot already contains raw fault damage (e.g. a
        // dropped message is simply gone); restarting from it could
        // never converge, so the restart point only advances on clean
        // snapshots. Files are still written — what to do with a
        // damaged-run snapshot is the user's call.
        if (!C.Tainted) {
          LastCkpt = C;
          HaveCkpt = true;
        }
        if (CheckpointDir.empty())
          return;
        std::string Path = CheckpointDir + "/ckpt-" +
                           std::to_string(C.Cycle);
        std::string Err = C.saveFile(Path);
        if (!Err.empty())
          std::fprintf(stderr, "bamboo: cannot write %s: %s\n",
                       Path.c_str(), Err.c_str());
      };
    if (!RestorePath.empty())
      Opts.Exec.Restore = &RestoreCkpt;
    if (Engine == EngineKind::Sim) {
      // The simulator replays the profiled run token by token: it
      // reproduces scheduling behavior (cycles, trace, faults), not
      // program output.
      schedsim::SimOptions SimOpts;
      SimOpts.Sched = SchedPolicy;
      SimOpts.Trace = Opts.Exec.Trace;
      SimOpts.Faults = Opts.Exec.Faults;
      SimOpts.FaultSeed = FaultSeed;
      SimOpts.Recovery = Recovery;
      SimOpts.CheckpointEvery = CheckpointEvery;
      SimOpts.OnCheckpoint = Opts.Exec.OnCheckpoint;
      SimOpts.Restore = Opts.Exec.Restore;
      SimOpts.WatchdogCycles = WatchdogCycles;
      SimOpts.Stop = Opts.Exec.Stop;
      schedsim::SimResult S = schedsim::simulateLayout(
          IP->bound().program(), R.Graph, *R.Prof, IP->bound().hints(),
          Opts.Target, R.BestLayout, SimOpts);
      if (!S.RestoreError.empty()) {
        std::fprintf(stderr, "bamboo: restore failed: %s\n",
                     S.RestoreError.c_str());
        return 4;
      }
      if (S.WatchdogFired) {
        std::fprintf(stderr, "%s", S.WatchdogDump.c_str());
        std::fprintf(stderr,
                     "bamboo: watchdog abort — no progress for %llu "
                     "cycles\n",
                     static_cast<unsigned long long>(WatchdogCycles));
        return 3;
      }
      if (!S.CheckpointError.empty())
        std::fprintf(stderr, "bamboo: checkpoint failed: %s\n",
                     S.CheckpointError.c_str());
      Interrupted = S.Interrupted;
      if (Faults)
        std::fprintf(stderr, "bamboo: %s%s\n", S.Recovery.str().c_str(),
                     S.Terminated ? "" : " [RUN FAILED]");
      std::fprintf(stderr,
                   "bamboo: sim %d-core %llu cycles (%llu invocations)\n",
                   Cores,
                   static_cast<unsigned long long>(S.EstimatedCycles),
                   static_cast<unsigned long long>(S.Invocations));
    } else if (Engine == EngineKind::Thread) {
      runtime::ThreadExecOptions TOpts;
      TOpts.Args = Args;
      TOpts.Seed = Seed;
      TOpts.Sched = SchedPolicy;
      TOpts.Trace = Opts.Exec.Trace;
      TOpts.Faults = Opts.Exec.Faults;
      TOpts.FaultSeed = FaultSeed;
      TOpts.Recovery = Recovery;
      // The host engine has no virtual clock: the checkpoint cadence is
      // an invocation count and the watchdog threshold is milliseconds.
      TOpts.CheckpointEveryInvocations = CheckpointEvery;
      TOpts.OnCheckpoint = Opts.Exec.OnCheckpoint;
      TOpts.Restore = Opts.Exec.Restore;
      TOpts.WatchdogMs = static_cast<int64_t>(WatchdogCycles);
      TOpts.Stop = Opts.Exec.Stop;
      runtime::ThreadExecutor Exec(IP->bound(), R.Graph, R.BestLayout);
      IP->clearOutput();
      IP->clearError();
      runtime::ThreadExecResult TR = Exec.run(TOpts);
      if (!TR.RestoreError.empty()) {
        std::fprintf(stderr, "bamboo: restore failed: %s\n",
                     TR.RestoreError.c_str());
        return 4;
      }
      if (TR.WatchdogFired) {
        std::fprintf(stderr, "%s", TR.WatchdogDump.c_str());
        std::fprintf(stderr,
                     "bamboo: watchdog abort — no progress for %llu ms\n",
                     static_cast<unsigned long long>(WatchdogCycles));
        return 3;
      }
      if (!TR.CheckpointError.empty())
        std::fprintf(stderr, "bamboo: checkpoint failed: %s\n",
                     TR.CheckpointError.c_str());
      Interrupted = TR.Interrupted;
      std::printf("%s", IP->output().c_str());
      if (Faults)
        std::fprintf(stderr, "bamboo: %s%s\n", TR.Recovery.str().c_str(),
                     TR.Completed ? "" : " [RUN FAILED]");
      std::fprintf(
          stderr, "bamboo: thread %d-core %.3fs wall (%llu invocations)\n",
          Cores, TR.WallSeconds,
          static_cast<unsigned long long>(TR.TaskInvocations));
    } else {
      runtime::TileExecutor Exec(IP->bound(), R.Graph, Opts.Target,
                                 R.BestLayout);
      // Under --recovery=restart a damaged run is retried from its most
      // recent checkpoint (or from the start if none was taken yet) with
      // a bumped fault seed, so the retry draws a different fault
      // stream.
      const int MaxRestarts = 5;
      int Attempt = 0;
      runtime::ExecResult FinalRun;
      for (;;) {
        IP->clearOutput();
        IP->clearError();
        FinalRun = Exec.run(Opts.Exec);
        if (!FinalRun.RestoreError.empty()) {
          std::fprintf(stderr, "bamboo: restore failed: %s\n",
                       FinalRun.RestoreError.c_str());
          return 4;
        }
        if (FinalRun.WatchdogFired) {
          std::fprintf(stderr, "%s", FinalRun.WatchdogDump.c_str());
          std::fprintf(stderr,
                       "bamboo: watchdog abort — no progress for %llu "
                       "cycles\n",
                       static_cast<unsigned long long>(WatchdogCycles));
          return 3;
        }
        if (!FinalRun.CheckpointError.empty())
          std::fprintf(stderr, "bamboo: checkpoint failed: %s\n",
                       FinalRun.CheckpointError.c_str());
        if (FinalRun.Interrupted) {
          // A signal is a request to wind down, not a fault: the
          // restart policy must not respin the run.
          Interrupted = true;
          break;
        }
        if (FinalRun.Completed || !RestartPolicy || Attempt >= MaxRestarts)
          break;
        ++Attempt;
        Opts.Exec.FaultSeed = FaultSeed + static_cast<uint64_t>(Attempt);
        if (HaveCkpt) {
          RestoreCkpt = LastCkpt;
          Opts.Exec.Restore = &RestoreCkpt;
        }
        std::fprintf(
            stderr,
            "bamboo: run failed; restarting from %s (attempt %d/%d)\n",
            HaveCkpt
                ? ("checkpoint at cycle " + std::to_string(LastCkpt.Cycle))
                      .c_str()
                : "the start",
            Attempt, MaxRestarts);
        Trace.clear();
      }
      std::printf("%s", IP->output().c_str());
      if (Faults)
        std::fprintf(stderr, "bamboo: %s%s\n",
                     FinalRun.Recovery.str().c_str(),
                     FinalRun.Completed ? "" : " [RUN FAILED]");
    }
    if (!TracePath.empty()) {
      std::ofstream Out(TracePath, std::ios::binary);
      if (!Out) {
        std::fprintf(stderr, "bamboo: cannot write %s\n",
                     TracePath.c_str());
        return 1;
      }
      Out << Trace.toChromeJson();
      std::fprintf(stderr, "bamboo: wrote %zu trace events to %s\n",
                   Trace.size(), TracePath.c_str());
    }
    if (Metrics)
      std::fprintf(stderr, "%s",
                   Trace.metrics().str(Trace.taskNames()).c_str());
    if (Interrupted) {
      std::fprintf(stderr,
                   "bamboo: interrupted by signal %d; trace and metrics "
                   "flushed\n",
                   support::stopSignal());
      return 5;
    }
    if (IP->hadError())
      std::fprintf(stderr, "bamboo: runtime error: %s\n",
                   IP->error().c_str());
    std::fprintf(stderr,
                 "bamboo: 1-core %llu cycles; %d-core %llu cycles "
                 "(speedup %.2fx, %llu DSA evaluations, %.2fs synthesis)\n",
                 static_cast<unsigned long long>(R.Real1Core), Cores,
                 static_cast<unsigned long long>(R.RealNCore),
                 R.speedupVsOneCore(),
                 static_cast<unsigned long long>(R.DsaEvaluations),
                 R.DsaSeconds);
  }
  return IP->hadError() ? 1 : 0;
}
