//===- driver/Pipeline.h - Whole-compiler pipeline driver -------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end flow of Section 4, packaged for benches, examples, and
/// tests:
///
///   1. build the CSTG (dependence analysis);
///   2. run the program once on a single-core machine with profiling (the
///      paper's single-core profiling bootstrap);
///   3. build the group plan (candidate implementation generation);
///   4. optimize with directed simulated annealing on the scheduling
///      simulator;
///   5. estimate and really execute both the 1-core layout and the
///      optimized N-core layout.
///
/// The result carries everything Figures 7, 9, and 11 report: real and
/// estimated cycles for 1 and N cores, plus the chosen layout.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_DRIVER_PIPELINE_H
#define BAMBOO_DRIVER_PIPELINE_H

#include "analysis/Cstg.h"
#include "optimize/Dsa.h"
#include "runtime/TileExecutor.h"
#include "schedsim/SchedSim.h"
#include "synthesis/CoreGroups.h"

#include <functional>
#include <optional>

namespace bamboo::driver {

struct PipelineOptions {
  machine::MachineConfig Target = machine::MachineConfig::tilePro64();
  runtime::ExecOptions Exec;
  optimize::DsaOptions Dsa;
  /// Skip the real N-core execution (estimation-only studies).
  bool SkipRealRun = false;
};

struct PipelineResult {
  analysis::Cstg Graph;
  std::optional<profile::Profile> Prof;
  synthesis::GroupPlan Plan;
  machine::Layout OneCoreLayout;
  machine::Layout BestLayout;

  machine::Cycles Estimated1Core = 0;
  machine::Cycles Real1Core = 0;
  machine::Cycles EstimatedNCore = 0;
  machine::Cycles RealNCore = 0;
  bool RealRunCompleted = false;
  uint64_t DsaEvaluations = 0;
  /// Wall-clock seconds spent inside the DSA optimizer (reported in
  /// Section 5.1 of the paper).
  double DsaSeconds = 0.0;

  double speedupVsOneCore() const {
    return RealNCore ? static_cast<double>(Real1Core) /
                           static_cast<double>(RealNCore)
                     : 0.0;
  }
};

/// Runs the full pipeline for \p BP.
PipelineResult runPipeline(const runtime::BoundProgram &BP,
                           const PipelineOptions &Opts);

/// Convenience: a profiling run of \p BP on one core.
profile::Profile profileOneCore(const runtime::BoundProgram &BP,
                                const analysis::Cstg &Graph,
                                const runtime::ExecOptions &Exec);

} // namespace bamboo::driver

#endif // BAMBOO_DRIVER_PIPELINE_H
