//===- driver/Pipeline.cpp - Whole-compiler pipeline driver ---------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <cassert>
#include <chrono>

using namespace bamboo;
using namespace bamboo::driver;

profile::Profile
bamboo::driver::profileOneCore(const runtime::BoundProgram &BP,
                               const analysis::Cstg &Graph,
                               const runtime::ExecOptions &Exec) {
  machine::MachineConfig One = machine::MachineConfig::singleCore();
  machine::Layout L = machine::Layout::allOnOneCore(BP.program());
  runtime::TileExecutor Executor(BP, Graph, One, L);
  runtime::ExecOptions Opts = Exec;
  Opts.CollectProfile = true;
  runtime::ExecResult R = Executor.run(Opts);
  assert(R.CollectedProfile && "profiling run must collect a profile");
  return std::move(*R.CollectedProfile);
}

PipelineResult bamboo::driver::runPipeline(const runtime::BoundProgram &BP,
                                           const PipelineOptions &Opts) {
  PipelineResult Result;
  const ir::Program &Prog = BP.program();

  // 1. Dependence analysis.
  Result.Graph = analysis::buildCstg(Prog);

  // 2. Single-core profiling bootstrap (also the Real1Core measurement:
  //    the same binary on one core).
  {
    machine::MachineConfig One = machine::MachineConfig::singleCore();
    Result.OneCoreLayout = machine::Layout::allOnOneCore(Prog);
    runtime::TileExecutor Executor(BP, Result.Graph, One,
                                   Result.OneCoreLayout);
    runtime::ExecOptions ProfOpts = Opts.Exec;
    ProfOpts.CollectProfile = true;
    runtime::ExecResult R = Executor.run(ProfOpts);
    Result.Real1Core = R.TotalCycles;
    Result.Prof = std::move(*R.CollectedProfile);
  }

  // Scheduling-simulator estimate of the 1-core layout (Figure 9, left).
  {
    machine::MachineConfig One = machine::MachineConfig::singleCore();
    schedsim::SimResult Sim = schedsim::simulateLayout(
        Prog, Result.Graph, *Result.Prof, BP.hints(), One,
        Result.OneCoreLayout);
    Result.Estimated1Core = Sim.EstimatedCycles;
  }

  // 3. Candidate implementation generation.
  Result.Plan = synthesis::buildGroupPlan(Prog, Result.Graph, *Result.Prof,
                                          Opts.Target.NumCores);

  // 4. Directed simulated annealing.
  {
    auto T0 = std::chrono::steady_clock::now();
    optimize::DsaResult Dsa =
        optimize::runDsa(Prog, Result.Graph, *Result.Prof, BP.hints(),
                         Opts.Target, Result.Plan, Opts.Dsa);
    auto T1 = std::chrono::steady_clock::now();
    Result.DsaSeconds =
        std::chrono::duration<double>(T1 - T0).count();
    Result.BestLayout = std::move(Dsa.Best);
    Result.EstimatedNCore = Dsa.BestEstimate;
    Result.DsaEvaluations = Dsa.Evaluations;
  }

  // 5. Real N-core execution of the chosen layout (Figure 9, right; the
  //    headline Figure-7 measurement).
  if (!Opts.SkipRealRun) {
    runtime::TileExecutor Executor(BP, Result.Graph, Opts.Target,
                                   Result.BestLayout);
    runtime::ExecResult R = Executor.run(Opts.Exec);
    Result.RealNCore = R.TotalCycles;
    Result.RealRunCompleted = R.Completed;
  }
  return Result;
}
