//===- resilience/Recovery.h - Recovery policy and per-run report -*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recovery contract shared by TileExecutor, ThreadExecutor, and
/// SchedSim, and the RecoveryReport each run returns.
///
/// With recovery ON, every injected fault is absorbed:
///  - dropped transfers are detected by a (simulated) missing ack and
///    retransmitted with exponential backoff (MachineConfig::AckTimeout +
///    RetryBackoffBase << attempt), up to MachineConfig::MaxSendRetries;
///    an exhausted retry budget escalates to the slow verified channel
///    (the message still arrives — counted as an Escalation);
///  - duplicated transfers are delivered twice and neutralized by the
///    executors' idempotent re-delivery (dedupe against pending
///    invocations);
///  - a permanently failed core has its task instances migrated to
///    sibling cores (RoutingTable::failoverOrder) and queued-but-unstarted
///    invocations re-dispatched there; in-flight work finishes first
///    (fail-stop at the dispatch boundary), so host side effects are never
///    applied twice;
///  - stall / lock-livelock windows end by construction; recovery just
///    re-arms dispatch at the window boundary.
///
/// With recovery OFF, faults take effect raw: drops are lost messages,
/// dead cores blackhole their deliveries, and the run is reported as
/// failed/wedged (Completed=false with a fully populated result struct) —
/// never a hang.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_RESILIENCE_RECOVERY_H
#define BAMBOO_RESILIENCE_RECOVERY_H

#include "machine/MachineConfig.h"

#include <cstdint>
#include <string>

namespace bamboo::resilience {

/// Per-run fault / recovery accounting, embedded in each executor's result
/// struct. Injected-side counters say what the FaultInjector did; the
/// recovery-side counters say how the runtime absorbed it. reconciles()
/// checks the two sides against each other.
struct RecoveryReport {
  // --- injected ---
  uint64_t Drops = 0;      ///< Messages dropped in flight.
  uint64_t Dups = 0;       ///< Messages duplicated.
  uint64_t Delays = 0;     ///< Messages delayed by DelayCycles.
  uint64_t Stalls = 0;     ///< Core stall windows entered.
  uint64_t LockFaults = 0; ///< Lock-livelock windows entered.
  uint64_t CoreFails = 0;  ///< Permanent core failures applied.

  // --- recovery ---
  uint64_t Retransmits = 0;  ///< Dropped sends recovered by retransmission.
  uint64_t Escalations = 0;  ///< Retry budget exhausted; verified channel.
  uint64_t LostMessages = 0; ///< Transfers dropped for good (recovery off).
  uint64_t BlackholedDeliveries = 0; ///< Deliveries a dead core swallowed
                                     ///< (recovery off).
  uint64_t RedirectedDeliveries = 0; ///< Deliveries re-routed off dead cores.
  uint64_t InstancesMigrated = 0;    ///< Task instances moved on core failure.
  uint64_t RedispatchedInvocations = 0; ///< Queued work moved off dead cores.

  /// Extra virtual cycles attributable to faults (retry backoff, delay,
  /// redirect hops) — the per-run "cost of resilience".
  machine::Cycles AddedCycles = 0;

  bool RecoveryEnabled = true;

  uint64_t totalInjected() const {
    return Drops + Dups + Delays + Stalls + LockFaults + CoreFails;
  }

  /// Every injected fault must be accounted for on the recovery side:
  /// with recovery on every drop was retransmitted or escalated and
  /// nothing was lost; with recovery off every drop is a lost message.
  bool reconciles() const {
    if (RecoveryEnabled)
      return Drops == Retransmits + Escalations && LostMessages == 0 &&
             BlackholedDeliveries == 0;
    return Drops == LostMessages && Retransmits == 0 && Escalations == 0;
  }

  /// True when the run was actually damaged (only possible with recovery
  /// off): work disappeared, so the result cannot be trusted complete.
  bool damaged() const { return LostMessages + BlackholedDeliveries > 0; }

  /// One-line human-readable summary.
  std::string str() const;
};

} // namespace bamboo::resilience

#endif // BAMBOO_RESILIENCE_RECOVERY_H
