//===- resilience/FaultInjector.cpp - Deterministic fault decisions --------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "resilience/FaultInjector.h"

#include <algorithm>

namespace bamboo::resilience {

namespace {

/// splitmix64 finalizer: the same avalanche mix support::Rng seeds with,
/// reimplemented here as a pure keyed hash (no stream state).
uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Uniform [0,1) from a hash (top 53 bits).
double toUnit(uint64_t H) { return static_cast<double>(H >> 11) * 0x1.0p-53; }

} // namespace

FaultInjector::FaultInjector(const FaultPlan *Plan, uint64_t Seed)
    : Plan(Plan), Seed(Seed) {
  if (Plan && !Plan->Scheduled.empty()) {
    Remaining = std::make_unique<std::atomic<int>[]>(Plan->Scheduled.size());
    for (size_t I = 0; I < Plan->Scheduled.size(); ++I)
      Remaining[I].store(Plan->Scheduled[I].Count, std::memory_order_relaxed);
  }
}

bool FaultInjector::draw(FaultKind K, uint64_t A, uint64_t B, uint64_t C,
                         double Rate) const {
  if (Rate <= 0.0)
    return false;
  uint64_t H = mix(Seed ^ (static_cast<uint64_t>(K) + 1));
  H = mix(H ^ A);
  H = mix(H ^ B);
  H = mix(H ^ C);
  return toUnit(H) < Rate;
}

bool FaultInjector::consumeScheduled(FaultKind K, machine::Cycles Now,
                                     int Core, int From, int To) {
  if (!Remaining)
    return false;
  for (size_t I = 0; I < Plan->Scheduled.size(); ++I) {
    const ScheduledFault &F = Plan->Scheduled[I];
    if (F.Kind != K || Now < F.Cycle)
      continue;
    if (F.From >= 0) {
      if (F.From != From || F.To != To)
        continue;
    } else if (F.Core >= 0) {
      if (F.Core != Core)
        continue;
    }
    // Claim one firing; retry the CAS only while budget remains.
    int Cur = Remaining[I].load(std::memory_order_relaxed);
    while (Cur > 0) {
      if (Remaining[I].compare_exchange_weak(Cur, Cur - 1,
                                             std::memory_order_relaxed))
        return true;
    }
  }
  return false;
}

FaultInjector::SendDecision FaultInjector::onSend(machine::Cycles Now,
                                                  int From, int To,
                                                  uint64_t ObjId,
                                                  int Attempt) {
  SendDecision D;
  if (!active())
    return D;
  uint64_t Edge = (static_cast<uint64_t>(static_cast<uint32_t>(From)) << 32) |
                  static_cast<uint32_t>(To);
  if (consumeScheduled(FaultKind::MsgDrop, Now, From, From, To) ||
      draw(FaultKind::MsgDrop, ObjId, Edge, static_cast<uint64_t>(Attempt),
           Plan->DropRate)) {
    D.Drop = true;
    return D;
  }
  if (consumeScheduled(FaultKind::MsgDup, Now, From, From, To) ||
      draw(FaultKind::MsgDup, ObjId, Edge, static_cast<uint64_t>(Attempt),
           Plan->DupRate))
    D.Duplicate = true;
  if (consumeScheduled(FaultKind::MsgDelay, Now, From, From, To) ||
      draw(FaultKind::MsgDelay, ObjId, Edge, static_cast<uint64_t>(Attempt),
           Plan->DelayRate))
    D.Delay = Plan->DelayCycles;
  return D;
}

machine::Cycles FaultInjector::windowUntil(FaultKind K, machine::Cycles Now,
                                           int Core, machine::Cycles Width,
                                           double Rate) {
  if (!active())
    return 0;
  if (consumeScheduled(K, Now, Core, -1, -1))
    return Now + Width;
  // Rate windows are quantized: one draw decides the whole window
  // [W*Width, (W+1)*Width), so re-queries inside it agree.
  uint64_t Window = Now / Width;
  if (draw(K, static_cast<uint64_t>(Core), Window, 0, Rate))
    return (Window + 1) * Width;
  return 0;
}

machine::Cycles FaultInjector::stallUntil(machine::Cycles Now, int Core) {
  return windowUntil(FaultKind::CoreStall, Now, Core, Plan ? Plan->StallWidth : 1,
                     Plan ? Plan->StallRate : 0.0);
}

machine::Cycles FaultInjector::lockFaultUntil(machine::Cycles Now, int Core) {
  return windowUntil(FaultKind::LockSweep, Now, Core, Plan ? Plan->LockWidth : 1,
                     Plan ? Plan->LockRate : 0.0);
}

bool FaultInjector::lockSweepFault(int Core, uint64_t ObjId,
                                   uint64_t Attempt) {
  if (!active())
    return false;
  if (consumeScheduled(FaultKind::LockSweep, 0, Core, -1, -1))
    return true;
  return draw(FaultKind::LockSweep, static_cast<uint64_t>(Core) ^ ObjId,
              Attempt, 1, Plan->LockRate);
}

std::vector<ScheduledFault> FaultInjector::coreFailures() const {
  std::vector<ScheduledFault> Fails;
  if (!Plan)
    return Fails;
  for (const ScheduledFault &F : Plan->Scheduled)
    if (F.Kind == FaultKind::CoreFail)
      Fails.push_back(F);
  std::stable_sort(Fails.begin(), Fails.end(),
                   [](const ScheduledFault &A, const ScheduledFault &B) {
                     if (A.Cycle != B.Cycle)
                       return A.Cycle < B.Cycle;
                     return A.Core < B.Core;
                   });
  return Fails;
}

} // namespace bamboo::resilience
