//===- resilience/Checkpoint.cpp - Versioned run-state snapshots ----------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "resilience/Checkpoint.h"

#include "resilience/Recovery.h"
#include "support/Format.h"

#include <array>
#include <cstdio>
#include <fstream>

namespace bamboo::resilience {

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

} // namespace

uint32_t crc32(const void *Data, size_t Len, uint32_t Seed) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  uint32_t C = Seed ^ 0xFFFFFFFFu;
  const auto *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

const char *engineKindName(EngineKind K) {
  switch (K) {
  case EngineKind::Tile:
    return "tile";
  case EngineKind::Sched:
    return "sched";
  case EngineKind::Thread:
    return "thread";
  }
  return "?";
}

std::string Checkpoint::serialize() const {
  ByteWriter W;
  W.u64(Magic);
  // Flat-machine snapshots stay version-1 byte streams; only a
  // hierarchical topology opts the file into the v2 header section.
  W.u32(Topology.empty() ? FormatVersion : FormatVersionTopology);
  W.u32(static_cast<uint32_t>(Engine));
  W.str(Program);
  W.u64(Seed);
  W.u64(FaultSeed);
  W.u8(Recovery);
  W.str(FaultSpec);
  W.u64(Args.size());
  for (const std::string &A : Args)
    W.str(A);
  W.str(LayoutKey);
  W.u64(NumCores);
  if (!Topology.empty())
    W.str(Topology);
  W.u64(Cycle);
  W.str(Body);
  std::string Out = W.take();
  uint32_t Crc = crc32(Out.data(), Out.size());
  ByteWriter Trailer;
  Trailer.u32(Crc);
  Out += Trailer.buffer();
  return Out;
}

std::string Checkpoint::deserialize(const std::string &Bytes, Checkpoint &Out) {
  // Validate the envelope before parsing any variable-length field: magic
  // first (is this even a checkpoint?), then version, then the CRC over
  // everything up to the trailer.
  if (Bytes.size() < 16 + 4)
    return "checkpoint: file too short to hold a header";
  ByteReader Probe(Bytes);
  if (Probe.u64() != Magic)
    return "checkpoint: bad magic (not a Bamboo checkpoint file)";
  uint32_t Version = Probe.u32();
  if (Version != FormatVersion && Version != FormatVersionTopology)
    return formatString(
        "checkpoint: unsupported format version %u (this build reads "
        "versions %u and %u)",
        Version, FormatVersion, FormatVersionTopology);
  std::string Payload = Bytes.substr(0, Bytes.size() - 4);
  uint32_t Stored = 0;
  for (int I = 0; I < 4; ++I)
    Stored |= static_cast<uint32_t>(
                  static_cast<uint8_t>(Bytes[Bytes.size() - 4 + I]))
              << (8 * I);
  uint32_t Actual = crc32(Payload.data(), Payload.size());
  if (Stored != Actual)
    return formatString(
        "checkpoint: CRC mismatch (stored %08x, computed %08x) — file is "
        "corrupted or truncated",
        Stored, Actual);

  ByteReader R(Payload);
  Checkpoint C;
  (void)R.u64(); // Magic, already checked.
  (void)R.u32(); // Version, already checked.
  uint32_t Engine = R.u32();
  if (Engine > static_cast<uint32_t>(EngineKind::Thread))
    return formatString("checkpoint: unknown engine kind %u", Engine);
  C.Engine = static_cast<EngineKind>(Engine);
  C.Program = R.str();
  C.Seed = R.u64();
  C.FaultSeed = R.u64();
  C.Recovery = R.u8();
  C.FaultSpec = R.str();
  uint64_t NumArgs = R.u64();
  if (!R.ok() || NumArgs > Payload.size())
    return "checkpoint: truncated header (argument count)";
  for (uint64_t I = 0; I < NumArgs; ++I)
    C.Args.push_back(R.str());
  C.LayoutKey = R.str();
  C.NumCores = R.u64();
  if (Version >= FormatVersionTopology)
    C.Topology = R.str();
  C.Cycle = R.u64();
  C.Body = R.str();
  if (!R.ok())
    return "checkpoint: truncated header or body";
  if (!R.atEnd())
    return "checkpoint: trailing bytes after body";
  Out = std::move(C);
  return {};
}

std::string Checkpoint::saveFile(const std::string &Path) const {
  // Write-then-rename so a crash or kill mid-write can never leave a
  // corrupt file at the canonical path: the old checkpoint survives until
  // the new one is fully on disk.
  std::string TmpPath = Path + ".tmp";
  {
    std::ofstream OutF(TmpPath, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return formatString("checkpoint: cannot open '%s' for writing",
                          TmpPath.c_str());
    std::string Bytes = serialize();
    OutF.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    OutF.flush();
    if (!OutF) {
      std::remove(TmpPath.c_str());
      return formatString("checkpoint: write to '%s' failed",
                          TmpPath.c_str());
    }
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return formatString("checkpoint: cannot move '%s' into place at '%s'",
                        TmpPath.c_str(), Path.c_str());
  }
  return {};
}

void writeRecoveryReport(ByteWriter &W, const RecoveryReport &R) {
  W.u64(R.Drops);
  W.u64(R.Dups);
  W.u64(R.Delays);
  W.u64(R.Stalls);
  W.u64(R.LockFaults);
  W.u64(R.CoreFails);
  W.u64(R.Retransmits);
  W.u64(R.Escalations);
  W.u64(R.LostMessages);
  W.u64(R.BlackholedDeliveries);
  W.u64(R.RedirectedDeliveries);
  W.u64(R.InstancesMigrated);
  W.u64(R.RedispatchedInvocations);
  W.u64(R.AddedCycles);
}

void readRecoveryReport(ByteReader &R, RecoveryReport &Out) {
  Out.Drops = R.u64();
  Out.Dups = R.u64();
  Out.Delays = R.u64();
  Out.Stalls = R.u64();
  Out.LockFaults = R.u64();
  Out.CoreFails = R.u64();
  Out.Retransmits = R.u64();
  Out.Escalations = R.u64();
  Out.LostMessages = R.u64();
  Out.BlackholedDeliveries = R.u64();
  Out.RedirectedDeliveries = R.u64();
  Out.InstancesMigrated = R.u64();
  Out.RedispatchedInvocations = R.u64();
  Out.AddedCycles = R.u64();
}

std::string Checkpoint::loadFile(const std::string &Path, Checkpoint &Out) {
  std::ifstream InF(Path, std::ios::binary);
  if (!InF)
    return formatString("checkpoint: cannot open '%s'", Path.c_str());
  std::string Bytes((std::istreambuf_iterator<char>(InF)),
                    std::istreambuf_iterator<char>());
  return deserialize(Bytes, Out);
}

} // namespace bamboo::resilience
