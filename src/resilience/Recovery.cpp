//===- resilience/Recovery.cpp - RecoveryReport formatting -----------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "resilience/Recovery.h"

#include <sstream>

namespace bamboo::resilience {

std::string RecoveryReport::str() const {
  std::ostringstream OS;
  OS << "faults injected=" << totalInjected() << " (drop=" << Drops
     << " dup=" << Dups << " delay=" << Delays << " stall=" << Stalls
     << " lock=" << LockFaults << " fail=" << CoreFails << ")"
     << " recovery=" << (RecoveryEnabled ? "on" : "off")
     << " retransmits=" << Retransmits << " escalations=" << Escalations
     << " lost=" << LostMessages << " blackholed=" << BlackholedDeliveries
     << " redirected=" << RedirectedDeliveries
     << " migrated=" << InstancesMigrated
     << " redispatched=" << RedispatchedInvocations
     << " addedCycles=" << AddedCycles
     << (reconciles() ? "" : " [UNRECONCILED]");
  return OS.str();
}

} // namespace bamboo::resilience
