//===- resilience/Checkpoint.h - Versioned run-state snapshots --*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint container: a versioned, byte-deterministic snapshot of a
/// run's complete resumable state. The container layer owns the envelope —
/// magic, format version, engine kind, run identity (program name, seed,
/// fault seed/spec, recovery mode, program arguments, layout fingerprint),
/// snapshot cycle, an engine-opaque body, and a CRC32 trailer — while each
/// engine (TileExecutor, SchedSim, ThreadExecutor) serializes its own body
/// through the little-endian ByteWriter/ByteReader below.
///
/// Determinism contract: serializing the same engine state twice yields the
/// same bytes, and a run restored from a checkpoint continues to a final
/// state byte-identical to the uninterrupted run (same heap contents, same
/// counters, same trace suffix modulo the documented resume marker).
///
/// All load paths fail *cleanly*: a wrong-magic, wrong-version, truncated,
/// or bit-flipped file produces a descriptive error string, never a crash
/// or partial state.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_RESILIENCE_CHECKPOINT_H
#define BAMBOO_RESILIENCE_CHECKPOINT_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace bamboo::resilience {

struct RecoveryReport;

/// CRC-32 (IEEE 802.3 polynomial, reflected). \p Seed chains partial
/// computations: crc32(b, crc32(a)) == crc32(a+b).
uint32_t crc32(const void *Data, size_t Len, uint32_t Seed = 0);

/// Appends fixed-width little-endian fields to a byte buffer. Engines use
/// this for checkpoint bodies so the on-disk format is host-independent.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  /// Doubles are written as their IEEE-754 bit pattern, so checkpointed
  /// floating-point state round-trips exactly.
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u64(S.size());
    Buf.append(S);
  }
  void bytes(const void *Data, size_t Len) {
    Buf.append(static_cast<const char *>(Data), Len);
  }

  const std::string &buffer() const { return Buf; }
  std::string take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  std::string Buf;
};

/// Reads fields written by ByteWriter. Underflow or an over-long string
/// length sets a sticky failure flag and yields zero values; callers check
/// ok() once at the end instead of after every field.
class ByteReader {
public:
  explicit ByteReader(const std::string &Buf) : Buf(Buf) {}

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(Buf[Pos++]);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[Pos++])) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Buf[Pos++])) << (8 * I);
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint64_t Len = u64();
    if (!OkFlag || Len > Buf.size() - Pos) {
      OkFlag = false;
      return {};
    }
    std::string S = Buf.substr(Pos, Len);
    Pos += Len;
    return S;
  }

  bool ok() const { return OkFlag; }
  bool atEnd() const { return Pos == Buf.size(); }
  size_t pos() const { return Pos; }
  void fail() { OkFlag = false; }

private:
  bool need(size_t N) {
    if (!OkFlag || Buf.size() - Pos < N) {
      OkFlag = false;
      return false;
    }
    return true;
  }

  const std::string &Buf;
  size_t Pos = 0;
  bool OkFlag = true;
};

/// Which engine wrote a checkpoint. Bodies are engine-specific; restoring
/// into a different engine is rejected at header validation.
enum class EngineKind : uint32_t {
  Tile = 0,   ///< Discrete-event TileExecutor.
  Sched = 1,  ///< Scheduling simulator (SchedSim).
  Thread = 2, ///< Thread-backed executor.
};

const char *engineKindName(EngineKind K);

/// One snapshot: the identity header plus an engine-opaque body.
///
/// Wire versioning: version 1 is the flat-machine format. Version 2
/// appends the machine-topology spec after NumCores; a flat-machine
/// snapshot (empty Topology) still serializes as version-1 bytes, so
/// every historical checkpoint byte stream is preserved exactly and old
/// v1 files keep loading. Only hierarchical-topology runs emit v2.
struct Checkpoint {
  static constexpr uint64_t Magic = 0x54504B434F424D42ULL; // "BMBOCKPT"
  static constexpr uint32_t FormatVersion = 1;
  /// The topology-bearing format; readable alongside version 1.
  static constexpr uint32_t FormatVersionTopology = 2;

  EngineKind Engine = EngineKind::Tile;
  std::string Program;     ///< Program name (ir::Program::name()).
  uint64_t Seed = 1;       ///< Run seed the snapshot was taken under.
  uint64_t FaultSeed = 1;  ///< Fault-injection seed.
  uint8_t Recovery = 1;    ///< Live-recovery flag at snapshot time.
  std::string FaultSpec;   ///< FaultPlan::str(), empty when fault-free.
  std::vector<std::string> Args; ///< Program arguments.
  std::string LayoutKey;   ///< Layout fingerprint (Layout::isoKey).
  uint64_t NumCores = 0;   ///< Machine width the layout targets.
  /// Canonical machine-topology spec (machine::Topology::spec()), or ""
  /// for the flat mesh. Run identity: a restore under a different
  /// topology is rejected.
  std::string Topology;
  uint64_t Cycle = 0;      ///< Virtual cycle the snapshot was taken at.
  std::string Body;        ///< Engine-opaque serialized state.

  /// Transient, NOT serialized: true when raw (recovery-off) fault
  /// damage had already landed when the snapshot was taken. A restart
  /// from a tainted snapshot can never undo the damage — e.g. a dropped
  /// message is simply absent from the heap — so the restart policy must
  /// roll back to an untainted snapshot (or the start) instead.
  bool Tainted = false;

  /// Byte-deterministic wire form: header + body + CRC32 trailer.
  std::string serialize() const;

  /// Parses \p Bytes into \p Out. Returns an empty string on success, a
  /// descriptive error otherwise ("bad magic", "unsupported version",
  /// "truncated", "CRC mismatch", ...). \p Out is untouched on error.
  static std::string deserialize(const std::string &Bytes, Checkpoint &Out);

  /// File round-trip; same error convention as serialize/deserialize.
  std::string saveFile(const std::string &Path) const;
  static std::string loadFile(const std::string &Path, Checkpoint &Out);
};

/// RecoveryReport serialization shared by the three engines' checkpoint
/// bodies (RecoveryEnabled is NOT serialized — it is the restoring run's
/// policy, not checkpointed state).
void writeRecoveryReport(ByteWriter &W, const RecoveryReport &R);
void readRecoveryReport(ByteReader &R, RecoveryReport &Out);

} // namespace bamboo::resilience

#endif // BAMBOO_RESILIENCE_CHECKPOINT_H
