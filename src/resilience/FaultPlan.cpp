//===- resilience/FaultPlan.cpp - Fault plan spec parsing ------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "resilience/FaultPlan.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace bamboo::resilience {

namespace {

constexpr std::array<const char *, 6> KindNames = {
    "drop", "dup", "delay", "stall", "fail", "lock"};

std::optional<FaultKind> kindFromName(const std::string &Name) {
  for (size_t I = 0; I < KindNames.size(); ++I)
    if (Name == KindNames[I])
      return static_cast<FaultKind>(I);
  return std::nullopt;
}

/// Splits on a separator; no empty-field collapsing.
std::vector<std::string> split(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == Sep) {
      Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  Out.push_back(Cur);
  return Out;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  // strtoull alone would accept leading whitespace, '+', and even '-'
  // (wrapping the negation into a huge value); require a plain digit
  // string.
  if (S.empty() || !std::isdigit(static_cast<unsigned char>(S[0])))
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

/// Largest repeat count / core index a spec may name. Far above any real
/// machine, but small enough that downstream int casts and per-repeat
/// loops cannot overflow or appear to hang.
constexpr uint64_t MaxSpecValue = 1'000'000;

bool parseBoundedInt(const std::string &S, int &Out) {
  uint64_t V = 0;
  if (!parseU64(S, V) || V > MaxSpecValue)
    return false;
  Out = static_cast<int>(V);
  return true;
}

bool parseRate(const std::string &S, double &Out) {
  // Reject NaN explicitly: NaN compares false to both bounds below and
  // would otherwise slip through as a "valid" rate.
  if (S.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  double V = std::strtod(S.c_str(), &End);
  if (errno != 0 || End != S.c_str() + S.size() || !std::isfinite(V) ||
      V < 0.0 || V > 1.0)
    return false;
  Out = V;
  return true;
}

/// Shortest %g-style form that still round-trips typical CLI rates.
std::string rateStr(double R) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%g", R);
  return Buf;
}

} // namespace

const char *faultKindName(FaultKind K) {
  return KindNames[static_cast<size_t>(K)];
}

bool FaultPlan::empty() const {
  return Scheduled.empty() && DropRate == 0.0 && DupRate == 0.0 &&
         DelayRate == 0.0 && StallRate == 0.0 && LockRate == 0.0;
}

std::string FaultPlan::str() const {
  std::ostringstream OS;
  bool First = true;
  auto Sep = [&] {
    if (!First)
      OS << ",";
    First = false;
  };
  for (const ScheduledFault &F : Scheduled) {
    Sep();
    OS << faultKindName(F.Kind) << "@" << F.Cycle;
    if (F.From >= 0)
      OS << ":" << F.From << "-" << F.To;
    else if (F.Core >= 0)
      OS << ":" << F.Core;
    if (F.Count != 1)
      OS << "x" << F.Count;
  }
  const std::pair<const char *, double> Rates[] = {
      {"drop", DropRate}, {"dup", DupRate},   {"delay", DelayRate},
      {"stall", StallRate}, {"lock", LockRate}};
  for (auto [Name, Rate] : Rates)
    if (Rate > 0.0) {
      Sep();
      OS << Name << "~" << rateStr(Rate);
    }
  FaultPlan Defaults;
  if (StallWidth != Defaults.StallWidth) {
    Sep();
    OS << "stallwidth=" << StallWidth;
  }
  if (DelayCycles != Defaults.DelayCycles) {
    Sep();
    OS << "delaycycles=" << DelayCycles;
  }
  if (LockWidth != Defaults.LockWidth) {
    Sep();
    OS << "lockwidth=" << LockWidth;
  }
  return OS.str();
}

std::optional<FaultPlan> FaultPlan::parse(const std::string &Spec,
                                          std::string &Error) {
  FaultPlan Plan;
  for (const std::string &Entry : split(Spec, ',')) {
    if (Entry.empty()) {
      Error = "empty fault entry";
      return std::nullopt;
    }

    // PARAM=VALUE magnitudes.
    if (size_t Eq = Entry.find('='); Eq != std::string::npos) {
      std::string Name = Entry.substr(0, Eq);
      uint64_t Value = 0;
      if (!parseU64(Entry.substr(Eq + 1), Value) || Value == 0) {
        Error = "bad value in fault entry '" + Entry + "'";
        return std::nullopt;
      }
      if (Name == "stallwidth")
        Plan.StallWidth = Value;
      else if (Name == "delaycycles")
        Plan.DelayCycles = Value;
      else if (Name == "lockwidth")
        Plan.LockWidth = Value;
      else {
        Error = "unknown fault parameter '" + Name + "'";
        return std::nullopt;
      }
      continue;
    }

    // KIND~RATE seeded rates.
    if (size_t Tilde = Entry.find('~'); Tilde != std::string::npos) {
      std::string Name = Entry.substr(0, Tilde);
      auto Kind = kindFromName(Name);
      if (!Kind) {
        Error = "unknown fault kind '" + Name + "'";
        return std::nullopt;
      }
      if (*Kind == FaultKind::CoreFail) {
        Error = "'fail' is schedule-only (use fail@CYCLE:CORE); a failure "
                "rate would not be a reproducible experiment";
        return std::nullopt;
      }
      double Rate = 0.0;
      if (!parseRate(Entry.substr(Tilde + 1), Rate)) {
        Error = "bad rate in fault entry '" + Entry + "' (want 0..1)";
        return std::nullopt;
      }
      switch (*Kind) {
      case FaultKind::MsgDrop:
        Plan.DropRate = Rate;
        break;
      case FaultKind::MsgDup:
        Plan.DupRate = Rate;
        break;
      case FaultKind::MsgDelay:
        Plan.DelayRate = Rate;
        break;
      case FaultKind::CoreStall:
        Plan.StallRate = Rate;
        break;
      case FaultKind::LockSweep:
        Plan.LockRate = Rate;
        break;
      case FaultKind::CoreFail:
        break; // unreachable; rejected above
      }
      continue;
    }

    // KIND@CYCLE[:TARGET][xCOUNT] scheduled faults.
    size_t At = Entry.find('@');
    if (At == std::string::npos) {
      Error = "fault entry '" + Entry +
              "' is neither kind@cycle, kind~rate, nor param=value";
      return std::nullopt;
    }
    auto Kind = kindFromName(Entry.substr(0, At));
    if (!Kind) {
      Error = "unknown fault kind '" + Entry.substr(0, At) + "'";
      return std::nullopt;
    }
    std::string Rest = Entry.substr(At + 1);

    ScheduledFault F;
    F.Kind = *Kind;
    if (size_t X = Rest.rfind('x'); X != std::string::npos) {
      int Count = 0;
      if (!parseBoundedInt(Rest.substr(X + 1), Count) || Count == 0) {
        Error = "bad repeat count in fault entry '" + Entry + "'";
        return std::nullopt;
      }
      F.Count = Count;
      Rest = Rest.substr(0, X);
    }
    std::string Target;
    if (size_t Colon = Rest.find(':'); Colon != std::string::npos) {
      Target = Rest.substr(Colon + 1);
      Rest = Rest.substr(0, Colon);
      if (Target.empty()) {
        // A trailing ':' is a truncated spec, not an untargeted fault.
        Error = "empty target in fault entry '" + Entry + "'";
        return std::nullopt;
      }
    }
    uint64_t Cycle = 0;
    if (!parseU64(Rest, Cycle)) {
      Error = "bad cycle in fault entry '" + Entry + "'";
      return std::nullopt;
    }
    F.Cycle = Cycle;

    bool IsMsgKind = *Kind == FaultKind::MsgDrop || *Kind == FaultKind::MsgDup ||
                     *Kind == FaultKind::MsgDelay;
    if (!Target.empty()) {
      if (size_t Dash = Target.find('-'); Dash != std::string::npos) {
        if (!IsMsgKind) {
          Error = "edge target in '" + Entry +
                  "' only applies to message faults (drop/dup/delay)";
          return std::nullopt;
        }
        if (!parseBoundedInt(Target.substr(0, Dash), F.From) ||
            !parseBoundedInt(Target.substr(Dash + 1), F.To)) {
          Error = "bad edge target in fault entry '" + Entry + "'";
          return std::nullopt;
        }
      } else {
        if (!parseBoundedInt(Target, F.Core)) {
          Error = "bad core target in fault entry '" + Entry + "'";
          return std::nullopt;
        }
      }
    } else if (*Kind == FaultKind::CoreFail) {
      Error = "'fail' needs an explicit core target (fail@CYCLE:CORE)";
      return std::nullopt;
    }
    Plan.Scheduled.push_back(F);
  }
  return Plan;
}

} // namespace bamboo::resilience
