//===- resilience/FaultInjector.h - Deterministic fault decisions -*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FaultInjector turns a FaultPlan into concrete per-site decisions.
/// Executors consult it at their send / dispatch / lock sites; it answers
/// "does this site fault, and how".
///
/// Determinism: rate-based decisions are drawn from a *counter-based*
/// stream — a splitmix-style hash of (fault seed, fault kind, site
/// identity, attempt) mapped to [0,1) — not from a stateful PRNG. The
/// decision for a given site is therefore a pure function of the plan and
/// seed, independent of the order in which sites are visited. That is what
/// lets the thread-backed executor (whose visit order is scheduler-
/// dependent) inject the *same set* of faults as the discrete-event
/// executors, and what makes `--faults` runs byte-identical across
/// `--jobs` values.
///
/// Scheduled faults carry a firing budget; consumption is atomic so worker
/// threads can race on the same entry safely.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_RESILIENCE_FAULTINJECTOR_H
#define BAMBOO_RESILIENCE_FAULTINJECTOR_H

#include "resilience/FaultPlan.h"

#include <atomic>
#include <memory>
#include <vector>

namespace bamboo::resilience {

class FaultInjector {
public:
  /// Inactive injector: every query answers "no fault".
  FaultInjector() = default;

  /// \p Plan may be null (inactive) and is not owned; it must outlive the
  /// injector.
  FaultInjector(const FaultPlan *Plan, uint64_t Seed);

  FaultInjector(FaultInjector &&) = default;
  FaultInjector &operator=(FaultInjector &&) = default;

  bool active() const { return Plan != nullptr && !Plan->empty(); }

  /// What happens to one cross-core transfer attempt. Drop excludes the
  /// other effects for that attempt (a dropped message can't also arrive
  /// twice).
  struct SendDecision {
    bool Drop = false;
    bool Duplicate = false;
    machine::Cycles Delay = 0;
  };

  /// Decision for transfer attempt \p Attempt (0 = first transmission) of
  /// object \p ObjId over edge \p From -> \p To at virtual time \p Now.
  /// Executors without a virtual clock pass Now=0 (only cycle-0 scheduled
  /// faults and rates apply there).
  SendDecision onSend(machine::Cycles Now, int From, int To, uint64_t ObjId,
                      int Attempt);

  /// If a stall window opens for \p Core at \p Now, returns the cycle at
  /// which it ends; 0 otherwise. The caller tracks the open window and
  /// must not re-query inside it (re-querying a rate window is idempotent,
  /// but a scheduled stall is consumed per call).
  machine::Cycles stallUntil(machine::Cycles Now, int Core);

  /// Same contract for lock-sweep livelock windows.
  machine::Cycles lockFaultUntil(machine::Cycles Now, int Core);

  /// One-off lock-sweep failure draw for engines without a virtual clock
  /// (the thread-backed executor): true with probability LockRate, keyed
  /// by the sweep's identity. Also consumes cycle-0 scheduled lock
  /// faults.
  bool lockSweepFault(int Core, uint64_t ObjId, uint64_t Attempt);

  /// Scheduled permanent core failures, sorted by (cycle, core).
  std::vector<ScheduledFault> coreFailures() const;

  const FaultPlan *plan() const { return Plan; }
  uint64_t seed() const { return Seed; }

  /// Checkpoint support. Rate draws are pure functions of (plan, seed,
  /// site), so the injector's only mutable state is the per-entry
  /// scheduled-fault firing budget — that is all a snapshot carries.
  std::vector<int> remainingBudgets() const {
    std::vector<int> Out;
    if (Remaining && Plan)
      for (size_t I = 0; I < Plan->Scheduled.size(); ++I)
        Out.push_back(Remaining[I].load(std::memory_order_relaxed));
    return Out;
  }
  void restoreBudgets(const std::vector<int> &B) {
    if (!Remaining || !Plan)
      return;
    for (size_t I = 0; I < Plan->Scheduled.size() && I < B.size(); ++I)
      Remaining[I].store(B[I], std::memory_order_relaxed);
  }

private:
  const FaultPlan *Plan = nullptr;
  uint64_t Seed = 0;
  /// Remaining firing budget per Plan->Scheduled entry (parallel array).
  std::unique_ptr<std::atomic<int>[]> Remaining;

  /// True with probability \p Rate, as a pure function of the key.
  bool draw(FaultKind K, uint64_t A, uint64_t B, uint64_t C,
            double Rate) const;

  /// Atomically consumes one firing of a matching scheduled fault of kind
  /// \p K. Core kinds match on (Now, Core); message kinds additionally
  /// match an edge.
  bool consumeScheduled(FaultKind K, machine::Cycles Now, int Core, int From,
                        int To);

  machine::Cycles windowUntil(FaultKind K, machine::Cycles Now, int Core,
                              machine::Cycles Width, double Rate);
};

} // namespace bamboo::resilience

#endif // BAMBOO_RESILIENCE_FAULTINJECTOR_H
