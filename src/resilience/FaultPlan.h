//===- resilience/FaultPlan.h - Seeded, scheduled fault plans ---*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FaultPlan describes which failures a run should experience, either as
/// scheduled one-shot events (`kind@cycle[:core|:from-to][xN]`) or as a
/// seeded per-site rate (`kind~rate`). Plans are pure data: parsing a spec
/// string never touches the machine, and the same plan text always yields
/// the same plan. All randomness is deferred to FaultInjector, which draws
/// from a dedicated counter-based stream keyed by (plan, fault seed) so a
/// run's fault pattern is a pure function of its inputs — never of wall
/// clock, thread interleaving, or allocation order.
///
/// Supported kinds:
///   drop   message dropped in flight (the receiver never sees it)
///   dup    message duplicated (delivered twice)
///   delay  message delayed by DelayCycles
///   stall  transient core stall: the core dispatches nothing for
///          StallWidth cycles
///   fail   permanent core failure (schedule-only; a rate would make the
///          whole run a coin flip, so `fail~` is a parse error)
///   lock   lock-sweep livelock window: every all-or-nothing lock sweep on
///          the core fails for LockWidth cycles
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_RESILIENCE_FAULTPLAN_H
#define BAMBOO_RESILIENCE_FAULTPLAN_H

#include "machine/MachineConfig.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bamboo::resilience {

/// The failure categories a plan can inject.
enum class FaultKind : uint8_t {
  MsgDrop = 0,
  MsgDup = 1,
  MsgDelay = 2,
  CoreStall = 3,
  CoreFail = 4,
  LockSweep = 5,
};

/// Printable lowercase name (matches the spec grammar keyword).
const char *faultKindName(FaultKind K);

/// One scheduled fault: fires at (or, for message kinds, on the first
/// eligible site at-or-after) virtual cycle Cycle. Core restricts core
/// kinds (stall/fail/lock) and, for message kinds, the sending core; a
/// From-To pair restricts message kinds to one edge. Count > 1 arms the
/// fault for that many firings.
struct ScheduledFault {
  FaultKind Kind = FaultKind::MsgDrop;
  machine::Cycles Cycle = 0;
  int Core = -1; // -1: any core.
  int From = -1; // -1: any sender (message kinds with an edge target).
  int To = -1;   // -1: any receiver.
  int Count = 1;
};

/// A parsed fault plan. Value type; cheap to copy.
class FaultPlan {
public:
  /// Scheduled one-shot (or xN) faults, in spec order.
  std::vector<ScheduledFault> Scheduled;

  /// Per-site probabilities in [0,1], drawn independently at every
  /// eligible site from the injector's hash stream. Message rates are per
  /// cross-core send attempt; StallRate/LockRate are per dispatch attempt
  /// (quantized to windows so one draw covers a whole window).
  double DropRate = 0.0;
  double DupRate = 0.0;
  double DelayRate = 0.0;
  double StallRate = 0.0;
  double LockRate = 0.0;

  /// Tunable fault magnitudes (spec entries `stallwidth=N`, `delaycycles=N`,
  /// `lockwidth=N`).
  machine::Cycles StallWidth = 4096;
  machine::Cycles DelayCycles = 500;
  machine::Cycles LockWidth = 2048;

  /// True when the plan injects nothing.
  bool empty() const;

  /// Canonical round-trippable text form (parse(str()) == *this).
  std::string str() const;

  /// Parses a spec: comma-separated entries, each one of
  ///   KIND '@' CYCLE [':' CORE | ':' FROM '-' TO] ['x' COUNT]
  ///   KIND '~' RATE
  ///   PARAM '=' VALUE
  /// Returns std::nullopt and fills \p Error on malformed input.
  static std::optional<FaultPlan> parse(const std::string &Spec,
                                        std::string &Error);
};

} // namespace bamboo::resilience

#endif // BAMBOO_RESILIENCE_FAULTPLAN_H
