//===- serve/Client.h - Blocking line client for the job server -*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the serve protocol: connect, send a
/// line, receive a line. Shared by the ServeTest suite and the
/// fig_serve load generator so both speak the wire format through one
/// implementation.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SERVE_CLIENT_H
#define BAMBOO_SERVE_CLIENT_H

#include <cstdint>
#include <string>

namespace bamboo::serve {

/// One TCP connection to a job server. Methods return false on any
/// socket error (including orderly close with no pending line).
class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&Other) noexcept;
  Client &operator=(Client &&Other) noexcept;

  /// Connects to 127.0.0.1:\p Port (the server is loopback-only).
  bool connectTo(uint16_t Port, std::string &Error);
  bool connected() const { return Fd >= 0; }
  void close();

  /// Bounds how long recvLine() waits for the next byte. A wedged server
  /// then fails the caller with a clear lastError() instead of hanging a
  /// test run forever. <= 0 waits indefinitely (the pre-timeout
  /// behavior); the default is deliberately generous so a cold synthesis
  /// under a sanitizer does not trip it.
  void setRecvTimeoutMs(int Ms) { RecvTimeoutMs = Ms; }
  int recvTimeoutMs() const { return RecvTimeoutMs; }

  /// Sends \p Line plus the terminating newline.
  bool sendLine(const std::string &Line);
  /// Receives the next newline-terminated line (newline stripped).
  /// On failure lastError() says why (timeout, peer close, errno).
  bool recvLine(std::string &Line);

  /// Why the last recvLine()/connectTo() failed; empty after success.
  const std::string &lastError() const { return LastError; }

private:
  int Fd = -1;
  int RecvTimeoutMs = 15000;
  std::string Buffer;
  std::string LastError;
};

} // namespace bamboo::serve

#endif // BAMBOO_SERVE_CLIENT_H
