//===- serve/Client.cpp - Blocking line client for the job server ---------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "support/Format.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace bamboo;
using namespace bamboo::serve;

Client::~Client() { close(); }

Client::Client(Client &&Other) noexcept
    : Fd(Other.Fd), RecvTimeoutMs(Other.RecvTimeoutMs),
      Buffer(std::move(Other.Buffer)),
      LastError(std::move(Other.LastError)) {
  Other.Fd = -1;
}

Client &Client::operator=(Client &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    RecvTimeoutMs = Other.RecvTimeoutMs;
    Buffer = std::move(Other.Buffer);
    LastError = std::move(Other.LastError);
    Other.Fd = -1;
  }
  return *this;
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buffer.clear();
}

bool Client::connectTo(uint16_t Port, std::string &Error) {
  close();
  LastError.clear();
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = formatString("socket: %s", std::strerror(errno));
    LastError = Error;
    return false;
  }
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  while (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                   sizeof(Addr)) != 0) {
    if (errno == EINTR)
      continue;
    Error = formatString("connect to 127.0.0.1:%u: %s",
                                  static_cast<unsigned>(Port),
                                  std::strerror(errno));
    LastError = Error;
    close();
    return false;
  }
  // Requests are single small lines; latency matters more than batching.
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return true;
}

bool Client::sendLine(const std::string &Line) {
  if (Fd < 0)
    return false;
  std::string Wire = Line + "\n";
  size_t Sent = 0;
  while (Sent < Wire.size()) {
    ssize_t N = ::send(Fd, Wire.data() + Sent, Wire.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

bool Client::recvLine(std::string &Line) {
  if (Fd < 0) {
    LastError = "not connected";
    return false;
  }
  // The deadline spans the whole line, not each chunk: a server trickling
  // bytes cannot stretch one recvLine() past the configured budget.
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(RecvTimeoutMs);
  for (;;) {
    size_t Nl = Buffer.find('\n');
    if (Nl != std::string::npos) {
      Line = Buffer.substr(0, Nl);
      Buffer.erase(0, Nl + 1);
      LastError.clear();
      return true;
    }
    if (RecvTimeoutMs > 0) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0) {
        LastError = formatString(
            "recv timed out after %d ms waiting for a response line",
            RecvTimeoutMs);
        return false;
      }
      pollfd P = {};
      P.fd = Fd;
      P.events = POLLIN;
      int R = ::poll(&P, 1, static_cast<int>(Left));
      if (R < 0) {
        if (errno == EINTR)
          continue;
        LastError = formatString("poll: %s", std::strerror(errno));
        return false;
      }
      if (R == 0)
        continue; // Re-checks the deadline, then reports the timeout.
    }
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      LastError = formatString("recv: %s", std::strerror(errno));
      return false;
    }
    if (N == 0) {
      // Peer closed with no complete line pending.
      LastError = "server closed the connection";
      return false;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}
