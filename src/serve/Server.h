//===- serve/Server.h - Resident job server ---------------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `bamboo serve` engine room: a loopback TCP server that keeps
/// every DSL app in a directory resident — compiled once per worker,
/// synthesized once per (app, cores, seed, args) across all workers —
/// and serves execution requests without paying re-synthesis.
///
/// Architecture (DESIGN.md §3h):
///
///   acceptor thread ── accepts connections, one reader thread each
///   reader threads ─── parse/validate lines, admit into the queue
///   admission queue ── bounded FIFO; over-limit and draining requests
///                      are rejected with retry-after errors
///   worker pool ────── N resident workers; each claims up to Batch
///                      jobs per queue pass (sorted so same-program
///                      jobs run back to back against a warm cache),
///                      executes them on its own DslProgram instances,
///                      and writes responses
///
/// Per-request execution replays exactly the one-shot CLI's final-run
/// path (clear output, run the chosen engine over the synthesized
/// layout, collect output), so a response's output and checksum are
/// byte-identical to `bamboo <app>.bb` with the same flags. Synthesis
/// results (CSTG, profile, layout) are value types holding dense ids,
/// so one shared cache entry serves every worker's separately-compiled
/// copy of the same program.
///
/// Graceful drain: beginDrain() stops admitting (clients get
/// `draining` + retry_after_ms), lets in-flight and queued jobs finish,
/// and waitUntilDrained() returns once every accepted request has been
/// answered — SIGTERM loses no accepted work.
///
/// Supervision (DESIGN.md §3j): every running job sits in a per-worker
/// slot a dedicated supervisor thread scans; a job past its wall-clock
/// deadline is cancelled through the engines' Stop hook and answered
/// `deadline-exceeded`, a job whose engine watchdog fires is answered
/// `hung` (both with the WatchdogReport attached), a job that fails
/// under --chaos is re-run from its last in-memory checkpoint with a
/// bumped fault seed up to max_retries times, and a job that exhausts
/// its retries quarantines its (app, args, seed) key so repeat poison
/// requests are rejected at admission with `quarantined`. The per-job
/// fault seed is a pure function of (chaos seed, request id), so a
/// chaos run's outcomes are byte-reproducible across --workers/--jobs.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SERVE_SERVER_H
#define BAMBOO_SERVE_SERVER_H

#include "serve/Protocol.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace bamboo::interp {
class DslProgram;
}
namespace bamboo::machine {
class Topology;
}
namespace bamboo::driver {
struct PipelineResult;
}
namespace bamboo::resilience {
struct FaultPlan;
}

namespace bamboo::serve {

struct ServerOptions {
  /// TCP port to bind on loopback; 0 picks an ephemeral port (read it
  /// back via port()).
  uint16_t Port = 0;
  /// When non-empty, the bound port is written here (atomically, so a
  /// poller never reads a partial file). This is how scripts discover
  /// an ephemeral port without a race.
  std::string PortFile;
  /// Resident worker count.
  int Workers = 2;
  /// DSA synthesis threads per synthesis run (the CLI's --jobs).
  int Jobs = 1;
  /// Max jobs one worker claims per queue pass. Claimed jobs are sorted
  /// by (app, exec-mode) so a mixed batch runs same-program jobs back to
  /// back; the knob is benchmarked in bench/fig_serve.
  int Batch = 4;
  /// Admission-queue bound; requests beyond it get `queue-full`.
  size_t QueueLimit = 256;
  /// Directory of .bb sources to keep resident (each basename becomes a
  /// requestable app).
  std::string AppsDir;
  /// Base retry_after_ms hint attached to queue-full/draining/quarantined
  /// rejections. The wire hint scales with the current queue depth:
  /// base * (1 + depth), capped at 60 s — a client probing a loaded
  /// server is told to back off longer than one probing an idle one.
  int RetryAfterMs = 200;
  /// Optional request-span recorder (support::Trace RequestBegin/End;
  /// timestamps are microseconds since server start).
  support::Trace *Trace = nullptr;
  /// Optional hierarchical machine shape (the CLI's --topology). A
  /// request whose core count equals the topology total runs on the
  /// hierarchical machine; any other core count runs the flat mesh, so
  /// pre-topology clients see identical behavior.
  std::shared_ptr<const machine::Topology> Topo;

  // Supervision knobs (DESIGN.md §3j).

  /// Fault plan threaded into every worker engine (the CLI's --chaos).
  /// Not owned; must outlive the server. Null serves fault-free.
  const resilience::FaultPlan *Chaos = nullptr;
  /// Base seed for chaos fault draws. Each job draws from a splitmix64
  /// mix of (ChaosSeed, request id), bumped by the attempt number on
  /// retries — independent of worker assignment and batching.
  uint64_t ChaosSeed = 1;
  /// Per-job engine watchdog: abort a run whose clock advances this far
  /// past the last dispatch/completion and answer it `hung`. Virtual
  /// cycles for tile/sim; the wall-clock thread engine reads the same
  /// number as milliseconds (the CLI's --watchdog-cycles pun). 0 off.
  /// The default clears the longest single-task gap of the biggest
  /// admissible job (size 4096) with an order-of-magnitude margin.
  uint64_t WatchdogCycles = 50'000'000;
  /// In-memory checkpoint cadence for supervised retries (cycles for
  /// tile/sim, invocations for thread). Only active under --chaos; a
  /// fault-free server never pays snapshot overhead.
  uint64_t CheckpointEvery = 10'000;
  /// Default and cap for per-request max_retries (requests may ask for
  /// fewer; asking for more than MaxRetryLimit is a bad-request).
  int MaxRetries = 2;
  /// How long an exhausted (app, args, seed) key stays quarantined.
  /// <= 0 disables quarantine (bench/fig_serve_chaos does this so
  /// per-cell outcome counts stay deterministic under shared keys).
  int QuarantineMs = 5000;
  /// Deadline applied to requests that carry none; 0 = no deadline.
  uint64_t DefaultDeadlineMs = 0;
};

/// Monotonic counters; all totals since start().
struct ServerStats {
  uint64_t Accepted = 0;   ///< Requests admitted into the queue.
  uint64_t Completed = 0;  ///< Responses written for admitted requests.
  uint64_t BadRequests = 0;
  uint64_t QueueFullRejects = 0;
  uint64_t DrainingRejects = 0;
  uint64_t SynthRuns = 0;  ///< Pipeline syntheses actually executed.
  uint64_t Connections = 0;
  // Supervision counters.
  uint64_t Retries = 0;            ///< Supervised re-runs across all jobs.
  uint64_t TimedOut = 0;           ///< Jobs cancelled past their deadline.
  uint64_t Hung = 0;               ///< Jobs aborted by the engine watchdog.
  uint64_t RetriesExhausted = 0;   ///< Jobs that burned every re-run.
  uint64_t Quarantined = 0;        ///< Keys put into quarantine.
  uint64_t QuarantinedRejects = 0; ///< Admissions refused on a poison key.
  uint64_t HealthRequests = 0;     ///< Health probes answered inline.
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Loads apps, binds, and launches the acceptor and worker pool.
  /// Returns an error message, or empty on success.
  std::string start();

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }
  /// Number of resident apps (valid after start()).
  size_t appCount() const { return Apps.size(); }
  /// Resident app names, sorted.
  std::vector<std::string> appNames() const;

  /// Stops admitting requests; already-accepted requests keep running.
  void beginDrain();
  /// Blocks until every accepted request has been answered. Only
  /// meaningful after beginDrain() (otherwise new work keeps arriving).
  void waitUntilDrained();
  /// Full stop: drains implicitly if not already draining, closes all
  /// connections, joins every thread. Idempotent.
  void shutdown();

  ServerStats stats() const;

  /// The depth-scaled retry_after_ms hint: base * (1 + depth), capped at
  /// 60 s. Monotone nondecreasing in \p QueueDepth (pinned by a test).
  int scaledRetryAfterMs(size_t QueueDepth) const;

  /// Assembles a health report from live state (also answers the wire
  /// `health` request kind).
  HealthReport health() const;

private:
  struct Conn;
  struct Job;
  struct SynthEntry;
  struct WorkerState;
  struct WorkerSlot;

  ServerOptions Opts;
  uint16_t BoundPort = 0;
  int ListenFd = -1;
  std::chrono::steady_clock::time_point StartTime;

  /// App name -> source text, loaded once at start().
  std::map<std::string, std::string> Apps;

  // Admission queue. Draining/Stopping are written under QueueM so the
  // reject-vs-enqueue decision is race-free, and read as atomics on fast
  // paths.
  mutable std::mutex QueueM;
  std::condition_variable QueueCv;   ///< Workers: work available / stop.
  std::condition_variable DrainedCv; ///< Drain waiters: all answered.
  std::deque<Job> Queue;
  std::atomic<bool> Draining{false};
  std::atomic<bool> Stopping{false};
  bool Started = false;
  bool ShutdownDone = false;

  // Connections and their reader threads.
  std::mutex ConnsM;
  std::vector<std::shared_ptr<Conn>> Conns;
  std::vector<std::thread> Readers;

  std::thread Acceptor;
  std::vector<std::thread> Workers;

  // Supervision: one slot per worker, scanned by the supervisor thread;
  // quarantined request keys with their expiry.
  std::vector<std::unique_ptr<WorkerSlot>> Slots;
  std::thread Supervisor;
  mutable std::mutex QuarM;
  std::map<std::string, std::chrono::steady_clock::time_point> Quarantine;

  // Shared synthesis cache: (app, mode, cores, seed, args) -> entry.
  std::mutex SynthM;
  std::map<std::string, std::shared_ptr<SynthEntry>> SynthCache;

  mutable std::mutex StatsM;
  ServerStats Stats;

  uint64_t nowUs() const;

  void acceptorLoop();
  void readerLoop(std::shared_ptr<Conn> C);
  void workerLoop(int WorkerIdx);
  /// Scans the worker slots every few ms and raises the per-job cancel
  /// flag of any running job past its deadline.
  void supervisorLoop();
  /// Ms until \p Key leaves quarantine, or -1 when not quarantined
  /// (expired entries are erased on the way).
  int64_t quarantineRemainingMs(const std::string &Key);
  /// Handles one parsed line from \p C: validate, admit or reject.
  void handleLine(const std::shared_ptr<Conn> &C, const std::string &Line);
  void executeJob(WorkerState &WS, int WorkerIdx, Job &J);
  /// Looks up or computes the synthesis for \p J using \p WS's program.
  /// Returns null and fills \p Error on pipeline failure; \p WasCached
  /// reports whether the entry was already complete at lookup.
  std::shared_ptr<const driver::PipelineResult>
  getSynthesis(WorkerState &WS, const Job &J, interp::DslProgram &IP,
               bool &WasCached, std::string &Error);
  static bool writeLine(Conn &C, const std::string &Line);
};

} // namespace bamboo::serve

#endif // BAMBOO_SERVE_SERVER_H
