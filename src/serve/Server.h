//===- serve/Server.h - Resident job server ---------------------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `bamboo serve` engine room: a loopback TCP server that keeps
/// every DSL app in a directory resident — compiled once per worker,
/// synthesized once per (app, cores, seed, args) across all workers —
/// and serves execution requests without paying re-synthesis.
///
/// Architecture (DESIGN.md §3h):
///
///   acceptor thread ── accepts connections, one reader thread each
///   reader threads ─── parse/validate lines, admit into the queue
///   admission queue ── bounded FIFO; over-limit and draining requests
///                      are rejected with retry-after errors
///   worker pool ────── N resident workers; each claims up to Batch
///                      jobs per queue pass (sorted so same-program
///                      jobs run back to back against a warm cache),
///                      executes them on its own DslProgram instances,
///                      and writes responses
///
/// Per-request execution replays exactly the one-shot CLI's final-run
/// path (clear output, run the chosen engine over the synthesized
/// layout, collect output), so a response's output and checksum are
/// byte-identical to `bamboo <app>.bb` with the same flags. Synthesis
/// results (CSTG, profile, layout) are value types holding dense ids,
/// so one shared cache entry serves every worker's separately-compiled
/// copy of the same program.
///
/// Graceful drain: beginDrain() stops admitting (clients get
/// `draining` + retry_after_ms), lets in-flight and queued jobs finish,
/// and waitUntilDrained() returns once every accepted request has been
/// answered — SIGTERM loses no accepted work.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SERVE_SERVER_H
#define BAMBOO_SERVE_SERVER_H

#include "serve/Protocol.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace bamboo::interp {
class DslProgram;
}
namespace bamboo::driver {
struct PipelineResult;
}

namespace bamboo::serve {

struct ServerOptions {
  /// TCP port to bind on loopback; 0 picks an ephemeral port (read it
  /// back via port()).
  uint16_t Port = 0;
  /// When non-empty, the bound port is written here (atomically, so a
  /// poller never reads a partial file). This is how scripts discover
  /// an ephemeral port without a race.
  std::string PortFile;
  /// Resident worker count.
  int Workers = 2;
  /// DSA synthesis threads per synthesis run (the CLI's --jobs).
  int Jobs = 1;
  /// Max jobs one worker claims per queue pass. Claimed jobs are sorted
  /// by (app, exec-mode) so a mixed batch runs same-program jobs back to
  /// back; the knob is benchmarked in bench/fig_serve.
  int Batch = 4;
  /// Admission-queue bound; requests beyond it get `queue-full`.
  size_t QueueLimit = 256;
  /// Directory of .bb sources to keep resident (each basename becomes a
  /// requestable app).
  std::string AppsDir;
  /// retry_after_ms hint attached to queue-full/draining rejections.
  int RetryAfterMs = 200;
  /// Optional request-span recorder (support::Trace RequestBegin/End;
  /// timestamps are microseconds since server start).
  support::Trace *Trace = nullptr;
};

/// Monotonic counters; all totals since start().
struct ServerStats {
  uint64_t Accepted = 0;   ///< Requests admitted into the queue.
  uint64_t Completed = 0;  ///< Responses written for admitted requests.
  uint64_t BadRequests = 0;
  uint64_t QueueFullRejects = 0;
  uint64_t DrainingRejects = 0;
  uint64_t SynthRuns = 0;  ///< Pipeline syntheses actually executed.
  uint64_t Connections = 0;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Loads apps, binds, and launches the acceptor and worker pool.
  /// Returns an error message, or empty on success.
  std::string start();

  /// The bound port (valid after start()).
  uint16_t port() const { return BoundPort; }
  /// Number of resident apps (valid after start()).
  size_t appCount() const { return Apps.size(); }
  /// Resident app names, sorted.
  std::vector<std::string> appNames() const;

  /// Stops admitting requests; already-accepted requests keep running.
  void beginDrain();
  /// Blocks until every accepted request has been answered. Only
  /// meaningful after beginDrain() (otherwise new work keeps arriving).
  void waitUntilDrained();
  /// Full stop: drains implicitly if not already draining, closes all
  /// connections, joins every thread. Idempotent.
  void shutdown();

  ServerStats stats() const;

private:
  struct Conn;
  struct Job;
  struct SynthEntry;
  struct WorkerState;

  ServerOptions Opts;
  uint16_t BoundPort = 0;
  int ListenFd = -1;
  std::chrono::steady_clock::time_point StartTime;

  /// App name -> source text, loaded once at start().
  std::map<std::string, std::string> Apps;

  // Admission queue. Draining/Stopping are written under QueueM so the
  // reject-vs-enqueue decision is race-free, and read as atomics on fast
  // paths.
  mutable std::mutex QueueM;
  std::condition_variable QueueCv;   ///< Workers: work available / stop.
  std::condition_variable DrainedCv; ///< Drain waiters: all answered.
  std::deque<Job> Queue;
  std::atomic<bool> Draining{false};
  std::atomic<bool> Stopping{false};
  bool Started = false;
  bool ShutdownDone = false;

  // Connections and their reader threads.
  std::mutex ConnsM;
  std::vector<std::shared_ptr<Conn>> Conns;
  std::vector<std::thread> Readers;

  std::thread Acceptor;
  std::vector<std::thread> Workers;

  // Shared synthesis cache: (app, mode, cores, seed, args) -> entry.
  std::mutex SynthM;
  std::map<std::string, std::shared_ptr<SynthEntry>> SynthCache;

  mutable std::mutex StatsM;
  ServerStats Stats;

  uint64_t nowUs() const;

  void acceptorLoop();
  void readerLoop(std::shared_ptr<Conn> C);
  void workerLoop(int WorkerIdx);
  /// Handles one parsed line from \p C: validate, admit or reject.
  void handleLine(const std::shared_ptr<Conn> &C, const std::string &Line);
  void executeJob(WorkerState &WS, int WorkerIdx, Job &J);
  /// Looks up or computes the synthesis for \p J using \p WS's program.
  /// Returns null and fills \p Error on pipeline failure; \p WasCached
  /// reports whether the entry was already complete at lookup.
  std::shared_ptr<const driver::PipelineResult>
  getSynthesis(WorkerState &WS, const Job &J, interp::DslProgram &IP,
               bool &WasCached, std::string &Error);
  static bool writeLine(Conn &C, const std::string &Line);
};

} // namespace bamboo::serve

#endif // BAMBOO_SERVE_SERVER_H
