//===- serve/Protocol.cpp - Job-server request/response protocol ----------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "resilience/Checkpoint.h"
#include "support/Format.h"

using namespace bamboo;
using namespace bamboo::serve;

const char *serve::engineName(EngineKind E) {
  switch (E) {
  case EngineKind::Tile:
    return "tile";
  case EngineKind::Sim:
    return "sim";
  case EngineKind::Thread:
    return "thread";
  }
  return "tile";
}

const char *serve::execModeName(ExecMode M) {
  return M == ExecMode::Vm ? "vm" : "interp";
}

std::string serve::sizeArg(uint64_t N) {
  std::string Out;
  Out.reserve(N);
  for (uint64_t I = 0; I < N; ++I)
    Out += static_cast<char>('1' + (I % 9));
  return Out;
}

namespace {

/// Protocol bounds. Requests outside these are configuration mistakes or
/// hostile input, never legitimate jobs.
constexpr uint64_t MaxSize = 4096;
constexpr uint64_t MaxArgs = 16;
constexpr uint64_t MaxArgLen = 65536;
constexpr int MaxCores = 4096;

bool expectUInt(const Json &V, const char *Field, uint64_t &Out,
                std::string &Error) {
  if (!V.isUInt()) {
    Error = formatString(
        "field '%s' must be a non-negative integer", Field);
    return false;
  }
  Out = V.uint();
  return true;
}

} // namespace

bool serve::parseRequest(const std::string &Line, Request &Out,
                         std::string &Error, bool &HaveId, uint64_t &Id) {
  HaveId = false;
  Id = 0;
  Json Doc;
  if (!Json::parse(Line, Doc, Error)) {
    Error = "malformed JSON: " + Error;
    return false;
  }
  if (!Doc.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  // Recover the id first so even a rejected request can be correlated.
  if (const Json *IdV = Doc.find("id"); IdV && IdV->isUInt()) {
    HaveId = true;
    Id = IdV->uint();
  }

  Request R;
  bool SawId = false, SawSize = false, SawArgs = false;
  uint64_t Size = 0;
  for (const auto &[Key, V] : Doc.object()) {
    if (Key == "id") {
      if (!expectUInt(V, "id", R.Id, Error))
        return false;
      SawId = true;
    } else if (Key == "app") {
      if (!V.isString() || V.str().empty()) {
        Error = "field 'app' must be a non-empty string";
        return false;
      }
      R.App = V.str();
    } else if (Key == "size") {
      if (!expectUInt(V, "size", Size, Error))
        return false;
      if (Size == 0 || Size > MaxSize) {
        Error = formatString("field 'size' must be in [1, %llu]",
                                      static_cast<unsigned long long>(MaxSize));
        return false;
      }
      SawSize = true;
    } else if (Key == "args") {
      if (!V.isArray()) {
        Error = "field 'args' must be an array of strings";
        return false;
      }
      if (V.array().size() > MaxArgs) {
        Error = formatString("too many args (max %llu)",
                                      static_cast<unsigned long long>(MaxArgs));
        return false;
      }
      for (const Json &A : V.array()) {
        if (!A.isString()) {
          Error = "field 'args' must be an array of strings";
          return false;
        }
        if (A.str().size() > MaxArgLen) {
          Error = "argument too long";
          return false;
        }
        R.Args.push_back(A.str());
      }
      SawArgs = true;
    } else if (Key == "seed") {
      if (!expectUInt(V, "seed", R.Seed, Error))
        return false;
    } else if (Key == "cores") {
      uint64_t Cores = 0;
      if (!expectUInt(V, "cores", Cores, Error))
        return false;
      if (Cores == 0 || Cores > static_cast<uint64_t>(MaxCores)) {
        Error = formatString("field 'cores' must be in [1, %d]",
                                      MaxCores);
        return false;
      }
      R.Cores = static_cast<int>(Cores);
    } else if (Key == "engine") {
      if (!V.isString()) {
        Error = "field 'engine' must be a string";
        return false;
      }
      if (V.str() == "tile")
        R.Engine = EngineKind::Tile;
      else if (V.str() == "sim")
        R.Engine = EngineKind::Sim;
      else if (V.str() == "thread")
        R.Engine = EngineKind::Thread;
      else {
        Error = formatString(
            "field 'engine' expects 'tile', 'sim' or 'thread', got '%s'",
            V.str().c_str());
        return false;
      }
    } else if (Key == "sched") {
      if (!V.isString()) {
        Error = "field 'sched' must be a string";
        return false;
      }
      if (!sched::parsePolicy(V.str(), R.Sched)) {
        Error = formatString("field 'sched' expects %s, got '%s'",
                             sched::policyChoices(), V.str().c_str());
        return false;
      }
    } else if (Key == "exec_mode") {
      if (!V.isString()) {
        Error = "field 'exec_mode' must be a string";
        return false;
      }
      if (V.str() == "vm")
        R.Mode = ExecMode::Vm;
      else if (V.str() == "interp")
        R.Mode = ExecMode::Interp;
      else {
        Error = formatString(
            "field 'exec_mode' expects 'vm' or 'interp', got '%s'",
            V.str().c_str());
        return false;
      }
    } else {
      // Unknown fields are rejected like unknown CLI flags: a typo must
      // not silently fall back to a default.
      Error = formatString("unknown field '%s'", Key.c_str());
      return false;
    }
  }
  if (!SawId) {
    Error = "missing required field 'id'";
    return false;
  }
  if (R.App.empty()) {
    Error = "missing required field 'app'";
    return false;
  }
  if (SawSize && SawArgs) {
    Error = "fields 'size' and 'args' are mutually exclusive";
    return false;
  }
  if (SawSize)
    R.Args = {sizeArg(Size)};
  Out = std::move(R);
  return true;
}

std::string serve::successLine(const Request &R, const ExecReport &E,
                               uint64_t LatencyUs, int Worker,
                               bool SynthCached) {
  uint32_t Crc = resilience::crc32(E.Output.data(), E.Output.size());
  JsonObject O;
  O.emplace_back("id", Json(R.Id));
  O.emplace_back("ok", Json(true));
  O.emplace_back("app", Json(R.App));
  O.emplace_back("engine", Json(engineName(R.Engine)));
  O.emplace_back("exec_mode", Json(execModeName(R.Mode)));
  O.emplace_back("cores", Json(R.Cores));
  O.emplace_back("seed", Json(R.Seed));
  O.emplace_back("checksum", Json(formatString("%08x", Crc)));
  O.emplace_back("cycles", Json(E.Cycles));
  O.emplace_back("invocations", Json(E.Invocations));
  O.emplace_back("output", Json(E.Output));
  O.emplace_back("latency_us", Json(LatencyUs));
  O.emplace_back("worker", Json(Worker));
  O.emplace_back("synth_cached", Json(SynthCached));
  return Json(std::move(O)).dump();
}

std::string serve::errorLine(bool HaveId, uint64_t Id,
                             const std::string &Code,
                             const std::string &Error, int64_t RetryAfterMs) {
  JsonObject O;
  if (HaveId)
    O.emplace_back("id", Json(Id));
  O.emplace_back("ok", Json(false));
  O.emplace_back("code", Json(Code));
  O.emplace_back("error", Json(Error));
  if (RetryAfterMs >= 0)
    O.emplace_back("retry_after_ms",
                   Json(static_cast<uint64_t>(RetryAfterMs)));
  return Json(std::move(O)).dump();
}
