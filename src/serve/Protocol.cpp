//===- serve/Protocol.cpp - Job-server request/response protocol ----------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "resilience/Checkpoint.h"
#include "support/Format.h"
#include "support/Parse.h"

using namespace bamboo;
using namespace bamboo::serve;

const char *serve::engineName(EngineKind E) {
  switch (E) {
  case EngineKind::Tile:
    return "tile";
  case EngineKind::Sim:
    return "sim";
  case EngineKind::Thread:
    return "thread";
  }
  return "tile";
}

const char *serve::execModeName(ExecMode M) {
  return M == ExecMode::Vm ? "vm" : "interp";
}

std::string serve::sizeArg(uint64_t N) {
  std::string Out;
  Out.reserve(N);
  for (uint64_t I = 0; I < N; ++I)
    Out += static_cast<char>('1' + (I % 9));
  return Out;
}

namespace {

/// Protocol bounds. Requests outside these are configuration mistakes or
/// hostile input, never legitimate jobs.
constexpr uint64_t MaxSize = 4096;
constexpr uint64_t MaxArgs = 16;
constexpr uint64_t MaxArgLen = 65536;
// Matches the one-shot driver's --cores ceiling (Topology::MaxTotalCores)
// so a hierarchical server can be asked for its full machine width.
constexpr int MaxCores = 1 << 20;

bool expectUInt(const Json &V, const char *Field, uint64_t &Out,
                std::string &Error) {
  if (!V.isUInt()) {
    Error = formatString(
        "field '%s' must be a non-negative integer", Field);
    return false;
  }
  Out = V.uint();
  return true;
}

/// The supervision fields (deadline_ms, max_retries) additionally accept
/// a decimal string, routed through support::Parse so the hostile-numeric
/// rules the CLI enforces ("12x", " 3", signs, overflow) apply on the
/// wire too. Negative JSON numbers never satisfy isUInt, so they land in
/// the error path by construction.
bool expectBoundedU64(const Json &V, const char *Field, uint64_t Max,
                      uint64_t &Out, std::string &Error) {
  uint64_t Val = 0;
  if (V.isUInt()) {
    Val = V.uint();
  } else if (V.isString()) {
    if (!support::parseU64(V.str(), Val)) {
      Error = formatString(
          "field '%s' must be a non-negative decimal integer, got '%s'",
          Field, V.str().c_str());
      return false;
    }
  } else {
    Error = formatString("field '%s' must be a non-negative integer",
                         Field);
    return false;
  }
  if (Val > Max) {
    Error = formatString("field '%s' must be at most %llu", Field,
                         static_cast<unsigned long long>(Max));
    return false;
  }
  Out = Val;
  return true;
}

} // namespace

bool serve::parseRequest(const std::string &Line, Request &Out,
                         std::string &Error, bool &HaveId, uint64_t &Id) {
  HaveId = false;
  Id = 0;
  Json Doc;
  if (!Json::parse(Line, Doc, Error)) {
    Error = "malformed JSON: " + Error;
    return false;
  }
  if (!Doc.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  // Recover the id first so even a rejected request can be correlated.
  if (const Json *IdV = Doc.find("id"); IdV && IdV->isUInt()) {
    HaveId = true;
    Id = IdV->uint();
  }

  Request R;
  // Resolve the request kind up front: a health probe takes only id (and
  // kind itself), so the field loop can reject run-only fields for it.
  if (const Json *KindV = Doc.find("kind")) {
    if (!KindV->isString()) {
      Error = "field 'kind' must be a string";
      return false;
    }
    if (KindV->str() == "run")
      R.Kind = RequestKind::Run;
    else if (KindV->str() == "health")
      R.Kind = RequestKind::Health;
    else {
      Error = formatString("field 'kind' expects 'run' or 'health', "
                           "got '%s'",
                           KindV->str().c_str());
      return false;
    }
  }
  bool SawId = false, SawSize = false, SawArgs = false;
  uint64_t Size = 0;
  for (const auto &[Key, V] : Doc.object()) {
    if (R.Kind == RequestKind::Health && Key != "id" && Key != "kind") {
      Error = formatString(
          "field '%s' is not valid for kind 'health'", Key.c_str());
      return false;
    }
    if (Key == "kind") {
      // Validated above.
    } else if (Key == "id") {
      if (!expectUInt(V, "id", R.Id, Error))
        return false;
      SawId = true;
    } else if (Key == "app") {
      if (!V.isString() || V.str().empty()) {
        Error = "field 'app' must be a non-empty string";
        return false;
      }
      R.App = V.str();
    } else if (Key == "size") {
      if (!expectUInt(V, "size", Size, Error))
        return false;
      if (Size == 0 || Size > MaxSize) {
        Error = formatString("field 'size' must be in [1, %llu]",
                                      static_cast<unsigned long long>(MaxSize));
        return false;
      }
      SawSize = true;
    } else if (Key == "args") {
      if (!V.isArray()) {
        Error = "field 'args' must be an array of strings";
        return false;
      }
      if (V.array().size() > MaxArgs) {
        Error = formatString("too many args (max %llu)",
                                      static_cast<unsigned long long>(MaxArgs));
        return false;
      }
      for (const Json &A : V.array()) {
        if (!A.isString()) {
          Error = "field 'args' must be an array of strings";
          return false;
        }
        if (A.str().size() > MaxArgLen) {
          Error = "argument too long";
          return false;
        }
        R.Args.push_back(A.str());
      }
      SawArgs = true;
    } else if (Key == "seed") {
      if (!expectUInt(V, "seed", R.Seed, Error))
        return false;
    } else if (Key == "cores") {
      uint64_t Cores = 0;
      if (!expectUInt(V, "cores", Cores, Error))
        return false;
      if (Cores == 0 || Cores > static_cast<uint64_t>(MaxCores)) {
        Error = formatString("field 'cores' must be in [1, %d]",
                                      MaxCores);
        return false;
      }
      R.Cores = static_cast<int>(Cores);
    } else if (Key == "engine") {
      if (!V.isString()) {
        Error = "field 'engine' must be a string";
        return false;
      }
      if (V.str() == "tile")
        R.Engine = EngineKind::Tile;
      else if (V.str() == "sim")
        R.Engine = EngineKind::Sim;
      else if (V.str() == "thread")
        R.Engine = EngineKind::Thread;
      else {
        Error = formatString(
            "field 'engine' expects 'tile', 'sim' or 'thread', got '%s'",
            V.str().c_str());
        return false;
      }
    } else if (Key == "sched") {
      if (!V.isString()) {
        Error = "field 'sched' must be a string";
        return false;
      }
      if (!sched::parsePolicy(V.str(), R.Sched)) {
        Error = formatString("field 'sched' expects %s, got '%s'",
                             sched::policyChoices(), V.str().c_str());
        return false;
      }
    } else if (Key == "deadline_ms") {
      if (!expectBoundedU64(V, "deadline_ms", MaxDeadlineMs, R.DeadlineMs,
                            Error))
        return false;
    } else if (Key == "max_retries") {
      uint64_t Retries = 0;
      if (!expectBoundedU64(V, "max_retries", MaxRetryLimit, Retries,
                            Error))
        return false;
      R.MaxRetries = static_cast<int>(Retries);
    } else if (Key == "exec_mode") {
      if (!V.isString()) {
        Error = "field 'exec_mode' must be a string";
        return false;
      }
      if (V.str() == "vm")
        R.Mode = ExecMode::Vm;
      else if (V.str() == "interp")
        R.Mode = ExecMode::Interp;
      else {
        Error = formatString(
            "field 'exec_mode' expects 'vm' or 'interp', got '%s'",
            V.str().c_str());
        return false;
      }
    } else {
      // Unknown fields are rejected like unknown CLI flags: a typo must
      // not silently fall back to a default.
      Error = formatString("unknown field '%s'", Key.c_str());
      return false;
    }
  }
  if (!SawId) {
    Error = "missing required field 'id'";
    return false;
  }
  if (R.Kind == RequestKind::Health) {
    Out = std::move(R);
    return true;
  }
  if (R.App.empty()) {
    Error = "missing required field 'app'";
    return false;
  }
  if (SawSize && SawArgs) {
    Error = "fields 'size' and 'args' are mutually exclusive";
    return false;
  }
  if (SawSize)
    R.Args = {sizeArg(Size)};
  Out = std::move(R);
  return true;
}

std::string serve::successLine(const Request &R, const ExecReport &E,
                               uint64_t LatencyUs, int Worker,
                               bool SynthCached, uint64_t Retries) {
  uint32_t Crc = resilience::crc32(E.Output.data(), E.Output.size());
  JsonObject O;
  O.emplace_back("id", Json(R.Id));
  O.emplace_back("ok", Json(true));
  O.emplace_back("app", Json(R.App));
  O.emplace_back("engine", Json(engineName(R.Engine)));
  O.emplace_back("exec_mode", Json(execModeName(R.Mode)));
  O.emplace_back("cores", Json(R.Cores));
  O.emplace_back("seed", Json(R.Seed));
  O.emplace_back("checksum", Json(formatString("%08x", Crc)));
  O.emplace_back("cycles", Json(E.Cycles));
  O.emplace_back("invocations", Json(E.Invocations));
  O.emplace_back("output", Json(E.Output));
  O.emplace_back("latency_us", Json(LatencyUs));
  O.emplace_back("worker", Json(Worker));
  O.emplace_back("synth_cached", Json(SynthCached));
  if (Retries > 0)
    O.emplace_back("retries", Json(Retries));
  return Json(std::move(O)).dump();
}

std::string serve::errorLine(bool HaveId, uint64_t Id,
                             const std::string &Code,
                             const std::string &Error, int64_t RetryAfterMs,
                             const std::string &Report, int64_t Attempts) {
  JsonObject O;
  if (HaveId)
    O.emplace_back("id", Json(Id));
  O.emplace_back("ok", Json(false));
  O.emplace_back("code", Json(Code));
  O.emplace_back("error", Json(Error));
  if (RetryAfterMs >= 0)
    O.emplace_back("retry_after_ms",
                   Json(static_cast<uint64_t>(RetryAfterMs)));
  if (!Report.empty())
    O.emplace_back("report", Json(Report));
  if (Attempts >= 0)
    O.emplace_back("attempts", Json(static_cast<uint64_t>(Attempts)));
  return Json(std::move(O)).dump();
}

std::string serve::healthLine(uint64_t Id, const HealthReport &H) {
  JsonArray Workers;
  for (const WorkerHealth &W : H.Workers) {
    JsonObject O;
    O.emplace_back("busy", Json(W.Busy));
    O.emplace_back("request", W.RequestId < 0
                                  ? Json(-1)
                                  : Json(static_cast<uint64_t>(W.RequestId)));
    O.emplace_back("completed", Json(W.Completed));
    Workers.push_back(Json(std::move(O)));
  }
  JsonObject O;
  O.emplace_back("id", Json(Id));
  O.emplace_back("ok", Json(true));
  O.emplace_back("kind", Json("health"));
  O.emplace_back("workers", Json(std::move(Workers)));
  O.emplace_back("queue_depth", Json(H.QueueDepth));
  O.emplace_back("queue_limit", Json(H.QueueLimit));
  O.emplace_back("quarantine_size", Json(H.QuarantineSize));
  O.emplace_back("draining", Json(H.Draining));
  O.emplace_back("accepted", Json(H.Accepted));
  O.emplace_back("completed", Json(H.Completed));
  O.emplace_back("retries", Json(H.Retries));
  O.emplace_back("timeouts", Json(H.Timeouts));
  O.emplace_back("hung", Json(H.Hung));
  O.emplace_back("quarantined_rejects", Json(H.QuarantinedRejects));
  return Json(std::move(O)).dump();
}
