//===- serve/Json.cpp - Minimal JSON for the serve protocol ---------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include "support/Format.h"

#include <cmath>
#include <cstdlib>

using namespace bamboo;
using namespace bamboo::serve;

Json::Json(int N) {
  if (N >= 0) {
    K = Kind::UInt;
    UIntV = static_cast<uint64_t>(N);
  } else {
    K = Kind::Double;
    DoubleV = N;
  }
}

Json::Json(JsonArray A)
    : K(Kind::Array), ArrayV(std::make_shared<JsonArray>(std::move(A))) {}

Json::Json(JsonObject O)
    : K(Kind::Object), ObjectV(std::make_shared<JsonObject>(std::move(O))) {}

const Json *Json::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[K2, V] : *ObjectV)
    if (K2 == Key)
      return &V;
  return nullptr;
}

std::string Json::quote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
  return Out;
}

std::string Json::dump() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return BoolV ? "true" : "false";
  case Kind::UInt:
    return formatString("%llu",
                                 static_cast<unsigned long long>(UIntV));
  case Kind::Double: {
    // %.17g round-trips doubles; integral values print without exponent
    // where possible so output stays readable.
    std::string S = formatString("%.17g", DoubleV);
    return S;
  }
  case Kind::String:
    return quote(StringV);
  case Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I < ArrayV->size(); ++I) {
      if (I)
        Out += ',';
      Out += (*ArrayV)[I].dump();
    }
    Out += ']';
    return Out;
  }
  case Kind::Object: {
    std::string Out = "{";
    for (size_t I = 0; I < ObjectV->size(); ++I) {
      if (I)
        Out += ',';
      Out += quote((*ObjectV)[I].first);
      Out += ':';
      Out += (*ObjectV)[I].second.dump();
    }
    Out += '}';
    return Out;
  }
  }
  return "null";
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text) : Text(Text) {}

  bool parse(Json &Out, std::string &Error) {
    skipWs();
    if (!value(Out, Error))
      return false;
    skipWs();
    if (Pos != Text.size()) {
      Error = formatString("trailing characters at offset %zu", Pos);
      return false;
    }
    return true;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
  // Nesting bound: protocol documents are flat; a deep bomb must not
  // blow the stack.
  int Depth = 0;
  static constexpr int MaxDepth = 32;

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(std::string &Error, const std::string &What) {
    Error = formatString("%s at offset %zu", What.c_str(), Pos);
    return false;
  }

  bool literal(const char *Word, std::string &Error) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(Error, "invalid literal");
    Pos += Len;
    return true;
  }

  bool value(Json &Out, std::string &Error) {
    if (++Depth > MaxDepth)
      return fail(Error, "nesting too deep");
    bool Ok = valueInner(Out, Error);
    --Depth;
    return Ok;
  }

  bool valueInner(Json &Out, std::string &Error) {
    if (Pos >= Text.size())
      return fail(Error, "unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case 'n':
      if (!literal("null", Error))
        return false;
      Out = Json();
      return true;
    case 't':
      if (!literal("true", Error))
        return false;
      Out = Json(true);
      return true;
    case 'f':
      if (!literal("false", Error))
        return false;
      Out = Json(false);
      return true;
    case '"': {
      std::string S;
      if (!string(S, Error))
        return false;
      Out = Json(std::move(S));
      return true;
    }
    case '[':
      return array(Out, Error);
    case '{':
      return object(Out, Error);
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return number(Out, Error);
      return fail(Error, "unexpected character");
    }
  }

  bool hex4(uint32_t &Out, std::string &Error) {
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      if (Pos >= Text.size())
        return fail(Error, "truncated \\u escape");
      char C = Text[Pos++];
      uint32_t D;
      if (C >= '0' && C <= '9')
        D = static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = static_cast<uint32_t>(C - 'a') + 10;
      else if (C >= 'A' && C <= 'F')
        D = static_cast<uint32_t>(C - 'A') + 10;
      else
        return fail(Error, "bad \\u escape digit");
      Out = Out * 16 + D;
    }
    return true;
  }

  bool string(std::string &Out, std::string &Error) {
    ++Pos; // Opening quote.
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail(Error, "unterminated string");
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail(Error, "control character in string");
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return fail(Error, "truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Cp;
        if (!hex4(Cp, Error))
          return false;
        // Surrogate pair.
        if (Cp >= 0xD800 && Cp <= 0xDBFF) {
          if (Pos + 1 >= Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail(Error, "unpaired surrogate");
          Pos += 2;
          uint32_t Lo;
          if (!hex4(Lo, Error))
            return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF)
            return fail(Error, "bad low surrogate");
          Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
        } else if (Cp >= 0xDC00 && Cp <= 0xDFFF) {
          return fail(Error, "unpaired surrogate");
        }
        // UTF-8 encode.
        if (Cp < 0x80) {
          Out += static_cast<char>(Cp);
        } else if (Cp < 0x800) {
          Out += static_cast<char>(0xC0 | (Cp >> 6));
          Out += static_cast<char>(0x80 | (Cp & 0x3F));
        } else if (Cp < 0x10000) {
          Out += static_cast<char>(0xE0 | (Cp >> 12));
          Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Cp & 0x3F));
        } else {
          Out += static_cast<char>(0xF0 | (Cp >> 18));
          Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3F));
          Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Cp & 0x3F));
        }
        break;
      }
      default:
        return fail(Error, "unknown escape");
      }
    }
  }

  bool number(Json &Out, std::string &Error) {
    size_t Start = Pos;
    bool Negative = false;
    if (Text[Pos] == '-') {
      Negative = true;
      ++Pos;
    }
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail(Error, "malformed number");
    // No leading zeros (JSON).
    if (Text[Pos] == '0' && Pos + 1 < Text.size() && Text[Pos + 1] >= '0' &&
        Text[Pos + 1] <= '9')
      return fail(Error, "leading zero in number");
    bool Integral = true;
    bool Overflow = false;
    uint64_t IntVal = 0;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
      uint64_t D = static_cast<uint64_t>(Text[Pos] - '0');
      if (IntVal > (UINT64_MAX - D) / 10)
        Overflow = true;
      else
        IntVal = IntVal * 10 + D;
      ++Pos;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail(Error, "malformed fraction");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail(Error, "malformed exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Integral && !Negative && !Overflow) {
      Out = Json(IntVal);
      return true;
    }
    Out = Json(std::strtod(Text.substr(Start, Pos - Start).c_str(), nullptr));
    return true;
  }

  bool array(Json &Out, std::string &Error) {
    ++Pos; // '['
    JsonArray Items;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      Out = Json(std::move(Items));
      return true;
    }
    while (true) {
      Json V;
      skipWs();
      if (!value(V, Error))
        return false;
      Items.push_back(std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail(Error, "unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        Out = Json(std::move(Items));
        return true;
      }
      return fail(Error, "expected ',' or ']'");
    }
  }

  bool object(Json &Out, std::string &Error) {
    ++Pos; // '{'
    JsonObject Fields;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      Out = Json(std::move(Fields));
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail(Error, "expected object key");
      std::string Key;
      if (!string(Key, Error))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail(Error, "expected ':'");
      ++Pos;
      skipWs();
      Json V;
      if (!value(V, Error))
        return false;
      Fields.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail(Error, "unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        Out = Json(std::move(Fields));
        return true;
      }
      return fail(Error, "expected ',' or '}'");
    }
  }
};

} // namespace

bool Json::parse(const std::string &Text, Json &Out, std::string &Error) {
  return Parser(Text).parse(Out, Error);
}
