//===- serve/Protocol.h - Job-server request/response protocol --*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `bamboo serve` wire protocol: line-delimited JSON over TCP, one
/// request per line, one response line per request. A request names a
/// resident app plus the same knobs the one-shot CLI takes — responses
/// are required to be byte-identical to what `bamboo <app>.bb` would
/// print for the same (app, args, seed, cores, engine, exec-mode).
///
/// Request:
///
///   {"id":1,"app":"series","size":8,"seed":1,"cores":4,
///    "engine":"tile","exec_mode":"vm"}
///
///   - `id` (required): caller-chosen uint64, echoed in the response.
///   - `app` (required): basename of a .bb file the server loaded.
///   - `size` or `args`: `size` N expands to the single argument
///     "12345678…" (N digits, cycling 1-9) that the size-scaled apps
///     take; `args` passes explicit strings. At most one of the two.
///   - `seed`, `cores`, `engine`, `exec_mode`: optional, defaulting to
///     1 / 62 / "tile" / "vm" — the CLI defaults.
///   - `sched` (optional): scheduling policy for the run, mirroring the
///     CLI's --sched values "rr" (default), "ws", "locality", "dep".
///     Like the CLI, synthesis always measures under rr; the policy
///     applies to the final (reported) run only.
///
/// Validation is strict in the same way the CLI flag parser is: unknown
/// fields, wrong types, and out-of-range numbers are rejected with a
/// `bad-request` error rather than guessed at.
///
/// Success response (field order fixed):
///
///   {"id":1,"ok":true,"app":"series","engine":"tile","exec_mode":"vm",
///    "cores":4,"seed":1,"checksum":"ab12cd34","cycles":123,
///    "invocations":45,"output":"…","latency_us":678,"worker":0,
///    "synth_cached":true}
///
///   `checksum` is the zlib-compatible CRC-32 of `output`; `cycles` is
///   virtual cycles (tile/sim; 0 for the wall-clock thread engine).
///
/// Error response:
///
///   {"id":1,"ok":false,"code":"bad-request","error":"…"}
///
///   Codes: `bad-request`, `queue-full`, `draining`, `runtime-error`,
///   `internal`. `queue-full` and `draining` carry `retry_after_ms`.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SERVE_PROTOCOL_H
#define BAMBOO_SERVE_PROTOCOL_H

#include "sched/Scheduler.h"
#include "serve/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bamboo::serve {

/// Engine names mirror the CLI's --engine values.
enum class EngineKind : uint8_t { Tile, Sim, Thread };
/// Exec-mode names mirror the CLI's --exec-mode values.
enum class ExecMode : uint8_t { Vm, Interp };

const char *engineName(EngineKind E);
const char *execModeName(ExecMode M);

/// A validated job request.
struct Request {
  uint64_t Id = 0;
  std::string App;
  std::vector<std::string> Args;
  uint64_t Seed = 1;
  int Cores = 62;
  EngineKind Engine = EngineKind::Tile;
  sched::Policy Sched = sched::Policy::Rr;
  ExecMode Mode = ExecMode::Vm;
};

/// The argument string `size` N expands to: N digits cycling '1'..'9'
/// (so 8 -> "12345678", matching the bench suite's canonical workload).
std::string sizeArg(uint64_t N);

/// Parses and validates one request line. On failure returns false and
/// fills \p Error with a message suitable for a bad-request response.
/// \p HaveId is set as soon as an id could be recovered, so the error
/// response can still echo it.
bool parseRequest(const std::string &Line, Request &Out, std::string &Error,
                  bool &HaveId, uint64_t &Id);

/// What one executed request reports back (the transport-independent
/// half; the server adds latency/worker/cache fields it owns).
struct ExecReport {
  std::string Output;
  uint64_t Cycles = 0;
  uint64_t Invocations = 0;
};

/// Renders the success response line (no trailing newline).
std::string successLine(const Request &R, const ExecReport &E,
                        uint64_t LatencyUs, int Worker, bool SynthCached);

/// Renders an error response line (no trailing newline). \p RetryAfterMs
/// < 0 omits the retry_after_ms field.
std::string errorLine(bool HaveId, uint64_t Id, const std::string &Code,
                      const std::string &Error, int64_t RetryAfterMs = -1);

} // namespace bamboo::serve

#endif // BAMBOO_SERVE_PROTOCOL_H
