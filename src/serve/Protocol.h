//===- serve/Protocol.h - Job-server request/response protocol --*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `bamboo serve` wire protocol: line-delimited JSON over TCP, one
/// request per line, one response line per request. A request names a
/// resident app plus the same knobs the one-shot CLI takes — responses
/// are required to be byte-identical to what `bamboo <app>.bb` would
/// print for the same (app, args, seed, cores, engine, exec-mode).
///
/// Request:
///
///   {"id":1,"app":"series","size":8,"seed":1,"cores":4,
///    "engine":"tile","exec_mode":"vm"}
///
///   - `id` (required): caller-chosen uint64, echoed in the response.
///   - `app` (required): basename of a .bb file the server loaded.
///   - `size` or `args`: `size` N expands to the single argument
///     "12345678…" (N digits, cycling 1-9) that the size-scaled apps
///     take; `args` passes explicit strings. At most one of the two.
///   - `seed`, `cores`, `engine`, `exec_mode`: optional, defaulting to
///     1 / 62 / "tile" / "vm" — the CLI defaults.
///   - `sched` (optional): scheduling policy for the run, mirroring the
///     CLI's --sched values "rr" (default), "ws", "locality", "dep".
///     Like the CLI, synthesis always measures under rr; the policy
///     applies to the final (reported) run only.
///   - `deadline_ms` (optional): wall-clock budget from admission; an
///     over-deadline job is cancelled and answered `deadline-exceeded`.
///     0 (the default) means no deadline. Accepts a JSON integer or a
///     decimal string; both go through support::Parse's strict rules.
///   - `max_retries` (optional): in-server re-runs granted to a job that
///     fails under `--chaos` before it is quarantined; defaults to the
///     server's --max-retries. Same numeric rules as deadline_ms.
///   - `kind` (optional): "run" (default) executes the app; "health"
///     takes only `id` and is answered inline by the reader thread with
///     per-worker liveness, queue depth, and quarantine size — it works
///     even while every worker is busy or the server is draining.
///
/// Validation is strict in the same way the CLI flag parser is: unknown
/// fields, wrong types, and out-of-range numbers are rejected with a
/// `bad-request` error rather than guessed at.
///
/// Success response (field order fixed):
///
///   {"id":1,"ok":true,"app":"series","engine":"tile","exec_mode":"vm",
///    "cores":4,"seed":1,"checksum":"ab12cd34","cycles":123,
///    "invocations":45,"output":"…","latency_us":678,"worker":0,
///    "synth_cached":true}
///
///   `checksum` is the zlib-compatible CRC-32 of `output`; `cycles` is
///   virtual cycles (tile/sim; 0 for the wall-clock thread engine).
///
/// Error response:
///
///   {"id":1,"ok":false,"code":"bad-request","error":"…"}
///
///   Codes: `bad-request`, `queue-full`, `draining`, `runtime-error`,
///   `internal`, plus the supervision codes `deadline-exceeded`, `hung`,
///   `retries-exhausted`, and `quarantined`. `queue-full`, `draining`,
///   and `quarantined` carry `retry_after_ms` (scaled by current queue
///   depth); `deadline-exceeded` and `hung` carry a `report` field with
///   the supervisor's WatchdogReport text; `retries-exhausted` carries
///   `attempts`.
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SERVE_PROTOCOL_H
#define BAMBOO_SERVE_PROTOCOL_H

#include "sched/Scheduler.h"
#include "serve/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bamboo::serve {

/// Engine names mirror the CLI's --engine values.
enum class EngineKind : uint8_t { Tile, Sim, Thread };
/// Exec-mode names mirror the CLI's --exec-mode values.
enum class ExecMode : uint8_t { Vm, Interp };
/// Request kinds: execute an app, or answer a health probe inline.
enum class RequestKind : uint8_t { Run, Health };

const char *engineName(EngineKind E);
const char *execModeName(ExecMode M);

/// Protocol bounds for the supervision fields. A deadline above an hour
/// or more than 8 re-runs is a configuration mistake, never a real job.
constexpr uint64_t MaxDeadlineMs = 3'600'000;
constexpr uint64_t MaxRetryLimit = 8;

/// A validated job request.
struct Request {
  uint64_t Id = 0;
  RequestKind Kind = RequestKind::Run;
  std::string App;
  std::vector<std::string> Args;
  uint64_t Seed = 1;
  int Cores = 62;
  EngineKind Engine = EngineKind::Tile;
  sched::Policy Sched = sched::Policy::Rr;
  ExecMode Mode = ExecMode::Vm;
  /// Wall-clock budget in ms from admission; 0 = no deadline.
  uint64_t DeadlineMs = 0;
  /// Supervised re-runs granted under faults; -1 = server default.
  int MaxRetries = -1;
};

/// The argument string `size` N expands to: N digits cycling '1'..'9'
/// (so 8 -> "12345678", matching the bench suite's canonical workload).
std::string sizeArg(uint64_t N);

/// Parses and validates one request line. On failure returns false and
/// fills \p Error with a message suitable for a bad-request response.
/// \p HaveId is set as soon as an id could be recovered, so the error
/// response can still echo it.
bool parseRequest(const std::string &Line, Request &Out, std::string &Error,
                  bool &HaveId, uint64_t &Id);

/// What one executed request reports back (the transport-independent
/// half; the server adds latency/worker/cache fields it owns).
struct ExecReport {
  std::string Output;
  uint64_t Cycles = 0;
  uint64_t Invocations = 0;
};

/// Renders the success response line (no trailing newline). \p Retries
/// appends a trailing `retries` field when > 0 (a job that needed
/// supervision re-runs), so fault-free responses are byte-identical to
/// earlier releases.
std::string successLine(const Request &R, const ExecReport &E,
                        uint64_t LatencyUs, int Worker, bool SynthCached,
                        uint64_t Retries = 0);

/// Renders an error response line (no trailing newline). \p RetryAfterMs
/// < 0 omits the retry_after_ms field; an empty \p Report omits the
/// report field (deadline-exceeded/hung attach their WatchdogReport
/// here); \p Attempts < 0 omits the attempts field (retries-exhausted
/// reports how many runs were burned).
std::string errorLine(bool HaveId, uint64_t Id, const std::string &Code,
                      const std::string &Error, int64_t RetryAfterMs = -1,
                      const std::string &Report = std::string(),
                      int64_t Attempts = -1);

/// One worker's slice of a health response.
struct WorkerHealth {
  bool Busy = false;
  /// Request id the worker is executing; -1 when idle.
  int64_t RequestId = -1;
  /// Jobs this worker has finished since start().
  uint64_t Completed = 0;
};

/// What a `health` request reports. Assembled by the server from live
/// state; rendered here so the wire format stays in one file.
struct HealthReport {
  std::vector<WorkerHealth> Workers;
  uint64_t QueueDepth = 0;
  uint64_t QueueLimit = 0;
  uint64_t QuarantineSize = 0;
  bool Draining = false;
  uint64_t Accepted = 0;
  uint64_t Completed = 0;
  uint64_t Retries = 0;
  uint64_t Timeouts = 0;
  uint64_t Hung = 0;
  uint64_t QuarantinedRejects = 0;
};

/// Renders the health response line (no trailing newline).
std::string healthLine(uint64_t Id, const HealthReport &H);

} // namespace bamboo::serve

#endif // BAMBOO_SERVE_PROTOCOL_H
