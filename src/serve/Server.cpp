//===- serve/Server.cpp - Resident job server -----------------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "analysis/Disjoint.h"
#include "driver/Pipeline.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "runtime/ThreadExecutor.h"
#include "schedsim/SchedSim.h"
#include "support/Format.h"
#include "vm/Vm.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

using namespace bamboo;
using namespace bamboo::serve;

//===----------------------------------------------------------------------===//
// Internal structures
//===----------------------------------------------------------------------===//

/// One client connection. Workers and the reader share it, so writes are
/// serialized by WriteM and liveness is an atomic.
struct Server::Conn {
  int Fd = -1;
  std::mutex WriteM;
  std::atomic<bool> Closed{false};
};

/// One admitted request, bound to the connection awaiting its response.
struct Server::Job {
  Request Req;
  std::shared_ptr<Conn> C;
  /// When the reader admitted the request; reported latency spans from
  /// here to the response write, so queue wait is included.
  std::chrono::steady_clock::time_point Admitted;
};

/// One synthesis cache slot. The first worker to need a key computes it;
/// concurrent requesters block on Cv. Entries are immutable once Ready.
struct Server::SynthEntry {
  std::mutex M;
  std::condition_variable Cv;
  bool Ready = false;
  bool Computing = false;
  std::string Error; ///< Non-empty when the pipeline failed.
  std::shared_ptr<const driver::PipelineResult> Result;
};

/// Worker-resident state: one compiled DslProgram per (app, exec-mode),
/// created on first use and kept warm for the server's lifetime.
struct Server::WorkerState {
  std::map<std::string, std::unique_ptr<interp::DslProgram>> Programs;
};

namespace {

std::string programKey(const std::string &App, ExecMode Mode) {
  return App + "|" + execModeName(Mode);
}

std::string synthKey(const Request &R) {
  std::string Key = R.App;
  Key += '|';
  Key += execModeName(R.Mode);
  Key += formatString("|c%d|s%llu", R.Cores,
                               static_cast<unsigned long long>(R.Seed));
  for (const std::string &A : R.Args) {
    Key += '|';
    Key += A;
  }
  return Key;
}

/// Compiles \p Source into a mode-appropriate resident program. Returns
/// null and fills \p Error on compile failure (shipped apps compile; this
/// guards a corrupted apps directory).
std::unique_ptr<interp::DslProgram>
makeProgram(const std::string &Source, const std::string &Name, ExecMode Mode,
            std::string &Error) {
  frontend::DiagnosticEngine Diags;
  auto CM = frontend::compileString(Source, Name, Diags);
  if (!CM) {
    Error = "compile failed: " + Diags.render(Name);
    return nullptr;
  }
  analysis::analyzeDisjointness(*CM);
  if (Mode == ExecMode::Vm)
    return std::make_unique<vm::VmProgram>(std::move(*CM));
  return std::make_unique<interp::InterpProgram>(std::move(*CM));
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions O) : Opts(std::move(O)) {
  if (Opts.Workers < 1)
    Opts.Workers = 1;
  if (Opts.Batch < 1)
    Opts.Batch = 1;
  if (Opts.QueueLimit < 1)
    Opts.QueueLimit = 1;
}

Server::~Server() { shutdown(); }

uint64_t Server::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - StartTime)
          .count());
}

std::string Server::start() {
  StartTime = std::chrono::steady_clock::now();

  // Load every .bb source in the apps directory.
  std::error_code Ec;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Opts.AppsDir, Ec)) {
    if (!Entry.is_regular_file() || Entry.path().extension() != ".bb")
      continue;
    std::ifstream In(Entry.path());
    if (!In)
      return formatString("cannot read %s",
                                   Entry.path().c_str());
    std::stringstream Buf;
    Buf << In.rdbuf();
    Apps[Entry.path().stem().string()] = Buf.str();
  }
  if (Ec)
    return formatString("cannot scan apps dir '%s': %s",
                                 Opts.AppsDir.c_str(),
                                 Ec.message().c_str());
  if (Apps.empty())
    return formatString("no .bb apps found in '%s'",
                                 Opts.AppsDir.c_str());

  // Bind loopback-only: the server executes arbitrary resident programs
  // and must not be reachable off-host.
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return formatString("socket: %s", std::strerror(errno));
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opts.Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    std::string Err = formatString("bind port %u: %s",
                                            static_cast<unsigned>(Opts.Port),
                                            std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return Err;
  }
  if (::listen(ListenFd, 64) != 0) {
    std::string Err =
        formatString("listen: %s", std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return Err;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) !=
      0) {
    std::string Err =
        formatString("getsockname: %s", std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return Err;
  }
  BoundPort = ntohs(Addr.sin_port);

  if (!Opts.PortFile.empty()) {
    // Write-then-rename so a polling script never reads a partial file.
    std::string Tmp = Opts.PortFile + ".tmp";
    {
      std::ofstream Out(Tmp, std::ios::trunc);
      if (!Out) {
        ::close(ListenFd);
        ListenFd = -1;
        return formatString("cannot write port file '%s'",
                                     Tmp.c_str());
      }
      Out << BoundPort << "\n";
    }
    if (std::rename(Tmp.c_str(), Opts.PortFile.c_str()) != 0) {
      std::remove(Tmp.c_str());
      ::close(ListenFd);
      ListenFd = -1;
      return formatString("cannot move port file into place at "
                                   "'%s'",
                                   Opts.PortFile.c_str());
    }
  }

  Workers.reserve(static_cast<size_t>(Opts.Workers));
  for (int W = 0; W < Opts.Workers; ++W)
    Workers.emplace_back([this, W] { workerLoop(W); });
  Acceptor = std::thread([this] { acceptorLoop(); });
  Started = true;
  return {};
}

std::vector<std::string> Server::appNames() const {
  std::vector<std::string> Names;
  Names.reserve(Apps.size());
  for (const auto &[Name, Src] : Apps)
    Names.push_back(Name);
  return Names;
}

void Server::beginDrain() {
  std::lock_guard<std::mutex> L(QueueM);
  Draining.store(true, std::memory_order_release);
  QueueCv.notify_all();
}

void Server::waitUntilDrained() {
  std::unique_lock<std::mutex> L(QueueM);
  DrainedCv.wait(L, [this] {
    if (!Queue.empty())
      return false;
    std::lock_guard<std::mutex> S(StatsM);
    return Stats.Completed == Stats.Accepted;
  });
}

void Server::shutdown() {
  if (!Started || ShutdownDone)
    return;
  ShutdownDone = true;
  beginDrain();
  waitUntilDrained();
  {
    std::lock_guard<std::mutex> L(QueueM);
    Stopping.store(true, std::memory_order_release);
    QueueCv.notify_all();
  }
  // Unblock the acceptor, then the readers (shutdown() forces blocked
  // recv/accept to return; close happens after the join).
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  // Half-close the read side first and join the readers: recv keeps
  // returning data already buffered by the kernel, so every line a
  // client managed to send gets an explicit response (a `draining`
  // rejection by now) before the socket goes away. Leaving bytes unread
  // at close() would RST the connection and could destroy responses
  // still in flight to the client.
  {
    std::lock_guard<std::mutex> L(ConnsM);
    for (auto &C : Conns)
      if (!C->Closed.load(std::memory_order_acquire))
        ::shutdown(C->Fd, SHUT_RD);
  }
  for (std::thread &T : Readers)
    if (T.joinable())
      T.join();
  {
    std::lock_guard<std::mutex> L(ConnsM);
    for (auto &C : Conns)
      if (!C->Closed.exchange(true))
        ::shutdown(C->Fd, SHUT_WR);
  }
  for (std::thread &T : Workers)
    if (T.joinable())
      T.join();
  {
    std::lock_guard<std::mutex> L(ConnsM);
    for (auto &C : Conns)
      if (C->Fd >= 0) {
        ::close(C->Fd);
        C->Fd = -1;
      }
    Conns.clear();
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> L(StatsM);
  return Stats;
}

//===----------------------------------------------------------------------===//
// Acceptor and readers
//===----------------------------------------------------------------------===//

void Server::acceptorLoop() {
  for (;;) {
    if (Stopping.load(std::memory_order_acquire))
      return;
    pollfd P = {};
    P.fd = ListenFd;
    P.events = POLLIN;
    int N = ::poll(&P, 1, 100);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (N == 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      return; // Listen socket shut down.
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    {
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.Connections;
    }
    std::lock_guard<std::mutex> L(ConnsM);
    Conns.push_back(C);
    Readers.emplace_back([this, C] { readerLoop(C); });
  }
}

void Server::readerLoop(std::shared_ptr<Conn> C) {
  std::string Buffer;
  char Chunk[4096];
  for (;;) {
    size_t Nl;
    while ((Nl = Buffer.find('\n')) != std::string::npos) {
      std::string Line = Buffer.substr(0, Nl);
      Buffer.erase(0, Nl + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      handleLine(C, Line);
    }
    if (C->Closed.load(std::memory_order_acquire))
      return;
    ssize_t N = ::recv(C->Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (N == 0)
      return; // Client closed.
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}

bool Server::writeLine(Conn &C, const std::string &Line) {
  if (C.Closed.load(std::memory_order_acquire))
    return false;
  std::string Wire = Line + "\n";
  std::lock_guard<std::mutex> L(C.WriteM);
  size_t Sent = 0;
  while (Sent < Wire.size()) {
    ssize_t N = ::send(C.Fd, Wire.data() + Sent, Wire.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      C.Closed.store(true, std::memory_order_release);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

void Server::handleLine(const std::shared_ptr<Conn> &C,
                        const std::string &Line) {
  Request Req;
  std::string Error;
  bool HaveId = false;
  uint64_t Id = 0;
  if (!parseRequest(Line, Req, Error, HaveId, Id)) {
    {
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.BadRequests;
    }
    writeLine(*C, errorLine(HaveId, Id, "bad-request", Error));
    return;
  }
  if (Apps.find(Req.App) == Apps.end()) {
    {
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.BadRequests;
    }
    writeLine(*C, errorLine(true, Req.Id, "bad-request",
                            formatString(
                                "unknown app '%s'", Req.App.c_str())));
    return;
  }

  // Admission. The draining/stopping check and the enqueue share QueueM
  // with beginDrain(), so an accepted request is always drained and a
  // rejected one never sits in a dead queue.
  enum class Reject { None, Draining, QueueFull } Why = Reject::None;
  {
    std::lock_guard<std::mutex> L(QueueM);
    if (Draining.load(std::memory_order_acquire) ||
        Stopping.load(std::memory_order_acquire)) {
      Why = Reject::Draining;
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.DrainingRejects;
    } else if (Queue.size() >= Opts.QueueLimit) {
      Why = Reject::QueueFull;
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.QueueFullRejects;
    } else {
      Job J;
      J.Req = Req;
      J.C = C;
      J.Admitted = std::chrono::steady_clock::now();
      Queue.push_back(std::move(J));
      {
        std::lock_guard<std::mutex> S(StatsM);
        ++Stats.Accepted;
      }
      QueueCv.notify_one();
      return;
    }
  }
  if (Why == Reject::Draining)
    writeLine(*C, errorLine(true, Req.Id, "draining",
                            "server is draining; retry against a fresh "
                            "instance",
                            Opts.RetryAfterMs));
  else
    writeLine(*C, errorLine(true, Req.Id, "queue-full",
                            "admission queue is full",
                            Opts.RetryAfterMs));
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void Server::workerLoop(int WorkerIdx) {
  WorkerState WS;
  for (;;) {
    std::vector<Job> Claimed;
    {
      std::unique_lock<std::mutex> L(QueueM);
      QueueCv.wait(L, [this] {
        return !Queue.empty() || Stopping.load(std::memory_order_acquire);
      });
      if (Queue.empty()) {
        if (Stopping.load(std::memory_order_acquire))
          return;
        continue;
      }
      size_t Take = std::min(Queue.size(),
                             static_cast<size_t>(Opts.Batch));
      for (size_t I = 0; I < Take; ++I) {
        Claimed.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
    }
    // Group same-program jobs so they hit this worker's warm instance
    // back to back; stable sort keeps arrival order within a group.
    std::stable_sort(Claimed.begin(), Claimed.end(),
                     [](const Job &A, const Job &B) {
                       if (A.Req.App != B.Req.App)
                         return A.Req.App < B.Req.App;
                       return static_cast<int>(A.Req.Mode) <
                              static_cast<int>(B.Req.Mode);
                     });
    for (Job &J : Claimed) {
      executeJob(WS, WorkerIdx, J);
      // Completion is published under QueueM so waitUntilDrained()'s
      // predicate check cannot miss the wakeup.
      {
        std::lock_guard<std::mutex> L(QueueM);
        {
          std::lock_guard<std::mutex> S(StatsM);
          ++Stats.Completed;
        }
        DrainedCv.notify_all();
      }
    }
  }
}

std::shared_ptr<const driver::PipelineResult>
Server::getSynthesis(WorkerState &WS, const Job &J, interp::DslProgram &IP,
                     bool &WasCached, std::string &Error) {
  (void)WS;
  std::string Key = synthKey(J.Req);
  std::shared_ptr<SynthEntry> E;
  {
    std::lock_guard<std::mutex> L(SynthM);
    auto &Slot = SynthCache[Key];
    if (!Slot)
      Slot = std::make_shared<SynthEntry>();
    E = Slot;
  }
  std::unique_lock<std::mutex> L(E->M);
  if (E->Ready) {
    WasCached = true;
    Error = E->Error;
    return E->Result;
  }
  WasCached = false;
  if (E->Computing) {
    // Another worker is synthesizing this key; ride its result.
    E->Cv.wait(L, [&] { return E->Ready; });
    Error = E->Error;
    return E->Result;
  }
  E->Computing = true;
  L.unlock();

  driver::PipelineOptions PO;
  PO.Target = machine::MachineConfig::tilePro64();
  PO.Target.NumCores = J.Req.Cores;
  PO.Dsa.Seed = J.Req.Seed;
  PO.Dsa.Jobs = Opts.Jobs;
  PO.Exec.Args = J.Req.Args;
  PO.Exec.Seed = J.Req.Seed;
  auto Result = std::make_shared<driver::PipelineResult>(
      driver::runPipeline(IP.bound(), PO));
  {
    std::lock_guard<std::mutex> S(StatsM);
    ++Stats.SynthRuns;
  }

  L.lock();
  if (!Result->Prof)
    E->Error = "synthesis produced no profile";
  E->Result = std::move(Result);
  E->Ready = true;
  E->Cv.notify_all();
  Error = E->Error;
  return E->Result;
}

void Server::executeJob(WorkerState &WS, int WorkerIdx, Job &J) {
  const Request &Req = J.Req;
  if (Opts.Trace)
    Opts.Trace->requestBegin(nowUs(), WorkerIdx,
                             static_cast<int64_t>(Req.Id));
  bool Ok = false;
  auto Finish = [&](const std::string &Line) {
    writeLine(*J.C, Line);
    if (Opts.Trace)
      Opts.Trace->requestEnd(nowUs(), WorkerIdx,
                             static_cast<int64_t>(Req.Id), Ok);
  };

  // Resolve (or build) this worker's resident program for (app, mode).
  std::string PKey = programKey(Req.App, Req.Mode);
  auto It = WS.Programs.find(PKey);
  if (It == WS.Programs.end()) {
    std::string Error;
    auto IP = makeProgram(Apps.at(Req.App), Req.App + ".bb", Req.Mode,
                          Error);
    if (!IP) {
      Finish(errorLine(true, Req.Id, "internal", Error));
      return;
    }
    It = WS.Programs.emplace(PKey, std::move(IP)).first;
  }
  interp::DslProgram &IP = *It->second;

  bool WasCached = false;
  std::string SynthError;
  auto R = getSynthesis(WS, J, IP, WasCached, SynthError);
  if (!R || !SynthError.empty()) {
    Finish(errorLine(true, Req.Id, "internal",
                     SynthError.empty() ? "synthesis failed" : SynthError));
    return;
  }

  // The final run mirrors the one-shot CLI exactly: clear accumulated
  // output, execute the chosen engine over the synthesized layout, and
  // report what the CLI would have printed to stdout.
  machine::MachineConfig Target = machine::MachineConfig::tilePro64();
  Target.NumCores = Req.Cores;
  // Clear accumulated state up front: the resident program carries
  // output/error from synthesis profiling runs and earlier requests.
  IP.clearOutput();
  IP.clearError();
  ExecReport Rep;
  if (Req.Engine == EngineKind::Sim) {
    // Token-level replay: scheduling behavior only, no program output —
    // same as the CLI, whose stdout is empty under --engine=sim.
    schedsim::SimOptions SO;
    SO.Sched = Req.Sched;
    schedsim::SimResult S = schedsim::simulateLayout(
        IP.bound().program(), R->Graph, *R->Prof, IP.bound().hints(),
        Target, R->BestLayout, SO);
    Rep.Cycles = S.EstimatedCycles;
    Rep.Invocations = S.Invocations;
  } else if (Req.Engine == EngineKind::Thread) {
    runtime::ThreadExecOptions TO;
    TO.Args = Req.Args;
    TO.Seed = Req.Seed;
    TO.Sched = Req.Sched;
    runtime::ThreadExecutor Exec(IP.bound(), R->Graph, R->BestLayout);
    runtime::ThreadExecResult TR = Exec.run(TO);
    Rep.Output = IP.output();
    Rep.Invocations = TR.TaskInvocations;
    // The host engine has wall time, not virtual cycles.
    Rep.Cycles = 0;
  } else {
    runtime::TileExecutor Exec(IP.bound(), R->Graph, Target,
                               R->BestLayout);
    runtime::ExecOptions EO;
    EO.Args = Req.Args;
    EO.Seed = Req.Seed;
    EO.Sched = Req.Sched;
    runtime::ExecResult FR = Exec.run(EO);
    Rep.Output = IP.output();
    Rep.Cycles = FR.TotalCycles;
    Rep.Invocations = FR.TaskInvocations;
  }

  if (IP.hadError()) {
    Finish(errorLine(true, Req.Id, "runtime-error", IP.error()));
    return;
  }
  uint64_t LatencyUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - J.Admitted)
          .count());
  Ok = true;
  Finish(successLine(Req, Rep, LatencyUs, WorkerIdx, WasCached));
}
