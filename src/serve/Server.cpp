//===- serve/Server.cpp - Resident job server -----------------------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "analysis/Disjoint.h"
#include "driver/Pipeline.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "machine/Topology.h"
#include "resilience/Checkpoint.h"
#include "resilience/FaultPlan.h"
#include "runtime/ThreadExecutor.h"
#include "schedsim/SchedSim.h"
#include "support/Format.h"
#include "support/Watchdog.h"
#include "vm/Vm.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

using namespace bamboo;
using namespace bamboo::serve;

//===----------------------------------------------------------------------===//
// Internal structures
//===----------------------------------------------------------------------===//

/// One client connection. Workers and the reader share it, so writes are
/// serialized by WriteM and liveness is an atomic.
struct Server::Conn {
  int Fd = -1;
  std::mutex WriteM;
  std::atomic<bool> Closed{false};
};

/// One admitted request, bound to the connection awaiting its response.
struct Server::Job {
  Request Req;
  std::shared_ptr<Conn> C;
  /// When the reader admitted the request; reported latency spans from
  /// here to the response write, so queue wait is included.
  std::chrono::steady_clock::time_point Admitted;
};

/// One synthesis cache slot. The first worker to need a key computes it;
/// concurrent requesters block on Cv. Entries are immutable once Ready.
struct Server::SynthEntry {
  std::mutex M;
  std::condition_variable Cv;
  bool Ready = false;
  bool Computing = false;
  std::string Error; ///< Non-empty when the pipeline failed.
  std::shared_ptr<const driver::PipelineResult> Result;
};

/// Worker-resident state: one compiled DslProgram per (app, exec-mode),
/// created on first use and kept warm for the server's lifetime.
struct Server::WorkerState {
  std::map<std::string, std::unique_ptr<interp::DslProgram>> Programs;
};

/// One worker's supervision slot. The worker publishes what it is
/// running (and until when) under M; the supervisor thread scans the
/// slots and raises Cancel — also under M, so a cancel can never leak
/// onto the next job. The engines poll Cancel lock-free through their
/// Stop hook.
struct Server::WorkerSlot {
  std::mutex M;
  bool Busy = false;
  uint64_t ReqId = 0;
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline;
  uint64_t Done = 0; ///< Jobs finished by this worker (health report).
  std::atomic<bool> Cancel{false};
};

namespace {

std::string programKey(const std::string &App, ExecMode Mode) {
  return App + "|" + execModeName(Mode);
}

std::string synthKey(const Request &R, const machine::Topology *Topo) {
  std::string Key = R.App;
  Key += '|';
  Key += execModeName(R.Mode);
  Key += formatString("|c%d|s%llu", R.Cores,
                               static_cast<unsigned long long>(R.Seed));
  // Only topology-applied requests carry the shape in their key, so every
  // flat request hits exactly the cache slot it always did.
  if (Topo)
    Key += "|t" + Topo->spec();
  for (const std::string &A : R.Args) {
    Key += '|';
    Key += A;
  }
  return Key;
}

/// The server-wide topology, when it applies to this request: the
/// request must ask for exactly the topology's core count (any other
/// width runs the historical flat mesh).
const machine::Topology *
appliedTopology(const std::shared_ptr<const machine::Topology> &Topo,
                const Request &R) {
  return Topo && Topo->totalCores() == R.Cores ? Topo.get() : nullptr;
}

/// Quarantine key: the (app, args, seed) identity of a poison request.
/// Narrower than synthKey on purpose — the same inputs are poison no
/// matter which engine, mode, or core count runs them.
std::string quarantineKey(const Request &R) {
  std::string Key = R.App;
  Key += formatString("|s%llu", static_cast<unsigned long long>(R.Seed));
  for (const std::string &A : R.Args) {
    Key += '\x1f';
    Key += A;
  }
  return Key;
}

/// Per-job chaos fault seed: a splitmix64 finalizer over (base seed,
/// request id). A pure function of the request, never of worker or
/// batch assignment, so a chaos run's outcomes are byte-reproducible
/// across --workers/--jobs. Retries bump the result by the attempt
/// number, mirroring the CLI's --recovery=restart.
uint64_t jobFaultSeed(uint64_t ChaosSeed, uint64_t ReqId) {
  uint64_t X = ChaosSeed ^ (ReqId + 0x9E3779B97F4A7C15ULL);
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ULL;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBULL;
  X ^= X >> 31;
  return X;
}

/// Compiles \p Source into a mode-appropriate resident program. Returns
/// null and fills \p Error on compile failure (shipped apps compile; this
/// guards a corrupted apps directory).
std::unique_ptr<interp::DslProgram>
makeProgram(const std::string &Source, const std::string &Name, ExecMode Mode,
            std::string &Error) {
  frontend::DiagnosticEngine Diags;
  auto CM = frontend::compileString(Source, Name, Diags);
  if (!CM) {
    Error = "compile failed: " + Diags.render(Name);
    return nullptr;
  }
  analysis::analyzeDisjointness(*CM);
  if (Mode == ExecMode::Vm)
    return std::make_unique<vm::VmProgram>(std::move(*CM));
  return std::make_unique<interp::InterpProgram>(std::move(*CM));
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions O) : Opts(std::move(O)) {
  if (Opts.Workers < 1)
    Opts.Workers = 1;
  if (Opts.Batch < 1)
    Opts.Batch = 1;
  if (Opts.QueueLimit < 1)
    Opts.QueueLimit = 1;
  if (Opts.MaxRetries < 0)
    Opts.MaxRetries = 0;
  if (Opts.MaxRetries > static_cast<int>(MaxRetryLimit))
    Opts.MaxRetries = static_cast<int>(MaxRetryLimit);
  if (Opts.Chaos && Opts.Chaos->empty())
    Opts.Chaos = nullptr;
}

Server::~Server() { shutdown(); }

uint64_t Server::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - StartTime)
          .count());
}

std::string Server::start() {
  StartTime = std::chrono::steady_clock::now();

  // Load every .bb source in the apps directory.
  std::error_code Ec;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Opts.AppsDir, Ec)) {
    if (!Entry.is_regular_file() || Entry.path().extension() != ".bb")
      continue;
    std::ifstream In(Entry.path());
    if (!In)
      return formatString("cannot read %s",
                                   Entry.path().c_str());
    std::stringstream Buf;
    Buf << In.rdbuf();
    Apps[Entry.path().stem().string()] = Buf.str();
  }
  if (Ec)
    return formatString("cannot scan apps dir '%s': %s",
                                 Opts.AppsDir.c_str(),
                                 Ec.message().c_str());
  if (Apps.empty())
    return formatString("no .bb apps found in '%s'",
                                 Opts.AppsDir.c_str());

  // Bind loopback-only: the server executes arbitrary resident programs
  // and must not be reachable off-host.
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return formatString("socket: %s", std::strerror(errno));
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opts.Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    std::string Err = formatString("bind port %u: %s",
                                            static_cast<unsigned>(Opts.Port),
                                            std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return Err;
  }
  if (::listen(ListenFd, 64) != 0) {
    std::string Err =
        formatString("listen: %s", std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return Err;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) !=
      0) {
    std::string Err =
        formatString("getsockname: %s", std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return Err;
  }
  BoundPort = ntohs(Addr.sin_port);

  if (!Opts.PortFile.empty()) {
    // Write-then-rename so a polling script never reads a partial file.
    std::string Tmp = Opts.PortFile + ".tmp";
    {
      std::ofstream Out(Tmp, std::ios::trunc);
      if (!Out) {
        ::close(ListenFd);
        ListenFd = -1;
        return formatString("cannot write port file '%s'",
                                     Tmp.c_str());
      }
      Out << BoundPort << "\n";
    }
    if (std::rename(Tmp.c_str(), Opts.PortFile.c_str()) != 0) {
      std::remove(Tmp.c_str());
      ::close(ListenFd);
      ListenFd = -1;
      return formatString("cannot move port file into place at "
                                   "'%s'",
                                   Opts.PortFile.c_str());
    }
  }

  Slots.clear();
  for (int W = 0; W < Opts.Workers; ++W)
    Slots.push_back(std::make_unique<WorkerSlot>());
  Workers.reserve(static_cast<size_t>(Opts.Workers));
  for (int W = 0; W < Opts.Workers; ++W)
    Workers.emplace_back([this, W] { workerLoop(W); });
  Supervisor = std::thread([this] { supervisorLoop(); });
  Acceptor = std::thread([this] { acceptorLoop(); });
  Started = true;
  return {};
}

std::vector<std::string> Server::appNames() const {
  std::vector<std::string> Names;
  Names.reserve(Apps.size());
  for (const auto &[Name, Src] : Apps)
    Names.push_back(Name);
  return Names;
}

void Server::beginDrain() {
  std::lock_guard<std::mutex> L(QueueM);
  Draining.store(true, std::memory_order_release);
  QueueCv.notify_all();
}

void Server::waitUntilDrained() {
  std::unique_lock<std::mutex> L(QueueM);
  DrainedCv.wait(L, [this] {
    if (!Queue.empty())
      return false;
    std::lock_guard<std::mutex> S(StatsM);
    return Stats.Completed == Stats.Accepted;
  });
}

void Server::shutdown() {
  if (!Started || ShutdownDone)
    return;
  ShutdownDone = true;
  beginDrain();
  waitUntilDrained();
  {
    std::lock_guard<std::mutex> L(QueueM);
    Stopping.store(true, std::memory_order_release);
    QueueCv.notify_all();
  }
  // Unblock the acceptor, then the readers (shutdown() forces blocked
  // recv/accept to return; close happens after the join).
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  // Half-close the read side first and join the readers: recv keeps
  // returning data already buffered by the kernel, so every line a
  // client managed to send gets an explicit response (a `draining`
  // rejection by now) before the socket goes away. Leaving bytes unread
  // at close() would RST the connection and could destroy responses
  // still in flight to the client.
  {
    std::lock_guard<std::mutex> L(ConnsM);
    for (auto &C : Conns)
      if (!C->Closed.load(std::memory_order_acquire))
        ::shutdown(C->Fd, SHUT_RD);
  }
  for (std::thread &T : Readers)
    if (T.joinable())
      T.join();
  {
    std::lock_guard<std::mutex> L(ConnsM);
    for (auto &C : Conns)
      if (!C->Closed.exchange(true))
        ::shutdown(C->Fd, SHUT_WR);
  }
  for (std::thread &T : Workers)
    if (T.joinable())
      T.join();
  if (Supervisor.joinable())
    Supervisor.join();
  {
    std::lock_guard<std::mutex> L(ConnsM);
    for (auto &C : Conns)
      if (C->Fd >= 0) {
        ::close(C->Fd);
        C->Fd = -1;
      }
    Conns.clear();
  }
}

void Server::supervisorLoop() {
  // 5 ms scan granularity bounds how late a deadline can fire; the
  // engines notice the raised flag at their next event boundary.
  while (!Stopping.load(std::memory_order_acquire)) {
    auto Now = std::chrono::steady_clock::now();
    for (auto &S : Slots) {
      std::lock_guard<std::mutex> L(S->M);
      if (S->Busy && S->HasDeadline && Now >= S->Deadline)
        S->Cancel.store(true, std::memory_order_release);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

int Server::scaledRetryAfterMs(size_t QueueDepth) const {
  long long Base = Opts.RetryAfterMs < 0 ? 0 : Opts.RetryAfterMs;
  long long Hint = Base * (1 + static_cast<long long>(QueueDepth));
  return static_cast<int>(std::min(Hint, 60'000LL));
}

int64_t Server::quarantineRemainingMs(const std::string &Key) {
  std::lock_guard<std::mutex> L(QuarM);
  auto It = Quarantine.find(Key);
  if (It == Quarantine.end())
    return -1;
  auto Now = std::chrono::steady_clock::now();
  if (Now >= It->second) {
    Quarantine.erase(It);
    return -1;
  }
  return std::chrono::duration_cast<std::chrono::milliseconds>(It->second -
                                                               Now)
      .count();
}

HealthReport Server::health() const {
  HealthReport H;
  for (const auto &S : Slots) {
    std::lock_guard<std::mutex> L(S->M);
    WorkerHealth W;
    W.Busy = S->Busy;
    W.RequestId = S->Busy ? static_cast<int64_t>(S->ReqId) : -1;
    W.Completed = S->Done;
    H.Workers.push_back(W);
  }
  {
    std::lock_guard<std::mutex> L(QueueM);
    H.QueueDepth = Queue.size();
    H.Draining = Draining.load(std::memory_order_acquire) ||
                 Stopping.load(std::memory_order_acquire);
  }
  H.QueueLimit = Opts.QueueLimit;
  {
    auto Now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> L(QuarM);
    for (const auto &[Key, Until] : Quarantine)
      if (Until > Now)
        ++H.QuarantineSize;
  }
  {
    std::lock_guard<std::mutex> L(StatsM);
    H.Accepted = Stats.Accepted;
    H.Completed = Stats.Completed;
    H.Retries = Stats.Retries;
    H.Timeouts = Stats.TimedOut;
    H.Hung = Stats.Hung;
    H.QuarantinedRejects = Stats.QuarantinedRejects;
  }
  return H;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> L(StatsM);
  return Stats;
}

//===----------------------------------------------------------------------===//
// Acceptor and readers
//===----------------------------------------------------------------------===//

void Server::acceptorLoop() {
  for (;;) {
    if (Stopping.load(std::memory_order_acquire))
      return;
    pollfd P = {};
    P.fd = ListenFd;
    P.events = POLLIN;
    int N = ::poll(&P, 1, 100);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (N == 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      return; // Listen socket shut down.
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    {
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.Connections;
    }
    std::lock_guard<std::mutex> L(ConnsM);
    Conns.push_back(C);
    Readers.emplace_back([this, C] { readerLoop(C); });
  }
}

void Server::readerLoop(std::shared_ptr<Conn> C) {
  std::string Buffer;
  char Chunk[4096];
  for (;;) {
    size_t Nl;
    while ((Nl = Buffer.find('\n')) != std::string::npos) {
      std::string Line = Buffer.substr(0, Nl);
      Buffer.erase(0, Nl + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      handleLine(C, Line);
    }
    if (C->Closed.load(std::memory_order_acquire))
      return;
    ssize_t N = ::recv(C->Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (N == 0)
      return; // Client closed.
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}

bool Server::writeLine(Conn &C, const std::string &Line) {
  if (C.Closed.load(std::memory_order_acquire))
    return false;
  std::string Wire = Line + "\n";
  std::lock_guard<std::mutex> L(C.WriteM);
  size_t Sent = 0;
  while (Sent < Wire.size()) {
    ssize_t N = ::send(C.Fd, Wire.data() + Sent, Wire.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      C.Closed.store(true, std::memory_order_release);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

void Server::handleLine(const std::shared_ptr<Conn> &C,
                        const std::string &Line) {
  Request Req;
  std::string Error;
  bool HaveId = false;
  uint64_t Id = 0;
  if (!parseRequest(Line, Req, Error, HaveId, Id)) {
    {
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.BadRequests;
    }
    writeLine(*C, errorLine(HaveId, Id, "bad-request", Error));
    return;
  }
  // Health probes are answered inline on the reader thread: they must
  // work while every worker is wedged mid-job and while draining —
  // that is exactly when a load generator needs them.
  if (Req.Kind == RequestKind::Health) {
    {
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.HealthRequests;
    }
    writeLine(*C, healthLine(Req.Id, health()));
    return;
  }
  if (Apps.find(Req.App) == Apps.end()) {
    {
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.BadRequests;
    }
    writeLine(*C, errorLine(true, Req.Id, "bad-request",
                            formatString(
                                "unknown app '%s'", Req.App.c_str())));
    return;
  }

  // Poison keys are refused before they can burn another worker. The
  // hint tells the client when the quarantine lapses (or to back off
  // for the queue to clear, whichever is longer).
  if (int64_t QuarMs = quarantineRemainingMs(quarantineKey(Req));
      QuarMs >= 0) {
    size_t Depth;
    {
      std::lock_guard<std::mutex> L(QueueM);
      Depth = Queue.size();
    }
    {
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.QuarantinedRejects;
    }
    writeLine(*C, errorLine(true, Req.Id, "quarantined",
                            "request key is quarantined after repeated "
                            "failures",
                            std::max<int64_t>(
                                QuarMs, scaledRetryAfterMs(Depth))));
    return;
  }

  // Admission. The draining/stopping check and the enqueue share QueueM
  // with beginDrain(), so an accepted request is always drained and a
  // rejected one never sits in a dead queue.
  enum class Reject { None, Draining, QueueFull } Why = Reject::None;
  size_t Depth = 0;
  {
    std::lock_guard<std::mutex> L(QueueM);
    Depth = Queue.size();
    if (Draining.load(std::memory_order_acquire) ||
        Stopping.load(std::memory_order_acquire)) {
      Why = Reject::Draining;
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.DrainingRejects;
    } else if (Queue.size() >= Opts.QueueLimit) {
      Why = Reject::QueueFull;
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.QueueFullRejects;
    } else {
      Job J;
      J.Req = Req;
      J.C = C;
      J.Admitted = std::chrono::steady_clock::now();
      Queue.push_back(std::move(J));
      {
        std::lock_guard<std::mutex> S(StatsM);
        ++Stats.Accepted;
      }
      QueueCv.notify_one();
      return;
    }
  }
  if (Why == Reject::Draining)
    writeLine(*C, errorLine(true, Req.Id, "draining",
                            "server is draining; retry against a fresh "
                            "instance",
                            scaledRetryAfterMs(Depth)));
  else
    writeLine(*C, errorLine(true, Req.Id, "queue-full",
                            "admission queue is full",
                            scaledRetryAfterMs(Depth)));
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void Server::workerLoop(int WorkerIdx) {
  WorkerState WS;
  for (;;) {
    std::vector<Job> Claimed;
    {
      std::unique_lock<std::mutex> L(QueueM);
      QueueCv.wait(L, [this] {
        return !Queue.empty() || Stopping.load(std::memory_order_acquire);
      });
      if (Queue.empty()) {
        if (Stopping.load(std::memory_order_acquire))
          return;
        continue;
      }
      size_t Take = std::min(Queue.size(),
                             static_cast<size_t>(Opts.Batch));
      for (size_t I = 0; I < Take; ++I) {
        Claimed.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
    }
    // Group same-program jobs so they hit this worker's warm instance
    // back to back; stable sort keeps arrival order within a group.
    std::stable_sort(Claimed.begin(), Claimed.end(),
                     [](const Job &A, const Job &B) {
                       if (A.Req.App != B.Req.App)
                         return A.Req.App < B.Req.App;
                       return static_cast<int>(A.Req.Mode) <
                              static_cast<int>(B.Req.Mode);
                     });
    for (Job &J : Claimed) {
      executeJob(WS, WorkerIdx, J);
      // Completion is published under QueueM so waitUntilDrained()'s
      // predicate check cannot miss the wakeup.
      {
        std::lock_guard<std::mutex> L(QueueM);
        {
          std::lock_guard<std::mutex> S(StatsM);
          ++Stats.Completed;
        }
        DrainedCv.notify_all();
      }
    }
  }
}

std::shared_ptr<const driver::PipelineResult>
Server::getSynthesis(WorkerState &WS, const Job &J, interp::DslProgram &IP,
                     bool &WasCached, std::string &Error) {
  (void)WS;
  std::string Key = synthKey(J.Req, appliedTopology(Opts.Topo, J.Req));
  std::shared_ptr<SynthEntry> E;
  {
    std::lock_guard<std::mutex> L(SynthM);
    auto &Slot = SynthCache[Key];
    if (!Slot)
      Slot = std::make_shared<SynthEntry>();
    E = Slot;
  }
  std::unique_lock<std::mutex> L(E->M);
  if (E->Ready) {
    WasCached = true;
    Error = E->Error;
    return E->Result;
  }
  WasCached = false;
  if (E->Computing) {
    // Another worker is synthesizing this key; ride its result.
    E->Cv.wait(L, [&] { return E->Ready; });
    Error = E->Error;
    return E->Result;
  }
  E->Computing = true;
  L.unlock();

  driver::PipelineOptions PO;
  PO.Target = appliedTopology(Opts.Topo, J.Req)
                  ? machine::MachineConfig::hierarchical(Opts.Topo)
                  : machine::MachineConfig::tilePro64();
  PO.Target.NumCores = J.Req.Cores;
  PO.Dsa.Seed = J.Req.Seed;
  PO.Dsa.Jobs = Opts.Jobs;
  PO.Exec.Args = J.Req.Args;
  PO.Exec.Seed = J.Req.Seed;
  auto Result = std::make_shared<driver::PipelineResult>(
      driver::runPipeline(IP.bound(), PO));
  {
    std::lock_guard<std::mutex> S(StatsM);
    ++Stats.SynthRuns;
  }

  L.lock();
  if (!Result->Prof)
    E->Error = "synthesis produced no profile";
  E->Result = std::move(Result);
  E->Ready = true;
  E->Cv.notify_all();
  Error = E->Error;
  return E->Result;
}

void Server::executeJob(WorkerState &WS, int WorkerIdx, Job &J) {
  const Request &Req = J.Req;
  WorkerSlot &Slot = *Slots[static_cast<size_t>(WorkerIdx)];
  if (Opts.Trace)
    Opts.Trace->requestBegin(nowUs(), WorkerIdx,
                             static_cast<int64_t>(Req.Id));
  bool Ok = false;
  auto Finish = [&](const std::string &Line) {
    {
      std::lock_guard<std::mutex> L(Slot.M);
      Slot.Busy = false;
      Slot.HasDeadline = false;
      ++Slot.Done;
    }
    writeLine(*J.C, Line);
    if (Opts.Trace)
      Opts.Trace->requestEnd(nowUs(), WorkerIdx,
                             static_cast<int64_t>(Req.Id), Ok);
  };

  // Supervision parameters. The deadline is measured from admission, so
  // queue wait and synthesis count against the budget — a client asking
  // for 100 ms gets an answer near 100 ms, not 100 ms of pure engine
  // time after an unbounded wait.
  uint64_t DeadlineMs =
      Req.DeadlineMs > 0 ? Req.DeadlineMs : Opts.DefaultDeadlineMs;
  auto DeadlineAt = J.Admitted + std::chrono::milliseconds(DeadlineMs);
  int MaxRetries = Req.MaxRetries >= 0
                       ? std::min(Req.MaxRetries,
                                  static_cast<int>(MaxRetryLimit))
                       : Opts.MaxRetries;

  // Register with the supervisor before any heavy work; it raises
  // Slot.Cancel (the engines' Stop hook) once the deadline passes.
  {
    std::lock_guard<std::mutex> L(Slot.M);
    Slot.Busy = true;
    Slot.ReqId = Req.Id;
    Slot.HasDeadline = DeadlineMs > 0;
    Slot.Deadline = DeadlineAt;
    Slot.Cancel.store(false, std::memory_order_release);
  }

  auto ElapsedMs = [&J] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - J.Admitted)
            .count());
  };
  auto PastDeadline = [&] {
    return DeadlineMs > 0 && std::chrono::steady_clock::now() >= DeadlineAt;
  };
  // The deadline report reuses the engines' WatchdogReport format so
  // every supervision dump reads the same way.
  auto DeadlineReport = [&] {
    support::WatchdogReport R("serve", ElapsedMs(), 0, DeadlineMs, "ms");
    R.section("job");
    R.line(formatString("request %llu: app '%s', engine %s, worker %d",
                        static_cast<unsigned long long>(Req.Id),
                        Req.App.c_str(), engineName(Req.Engine),
                        WorkerIdx));
    return R.str();
  };
  auto FinishTimeout = [&](bool Hung, const std::string &Report) {
    {
      std::lock_guard<std::mutex> S(StatsM);
      if (Hung)
        ++Stats.Hung;
      else
        ++Stats.TimedOut;
    }
    if (Opts.Trace)
      Opts.Trace->jobTimeout(nowUs(), WorkerIdx,
                             static_cast<int64_t>(Req.Id), Hung);
    Finish(errorLine(
        true, Req.Id, Hung ? "hung" : "deadline-exceeded",
        Hung ? "engine watchdog fired: no scheduler progress"
             : formatString("deadline of %llu ms exceeded after %llu ms",
                            static_cast<unsigned long long>(DeadlineMs),
                            static_cast<unsigned long long>(ElapsedMs())),
        -1, Report));
  };

  // Resolve (or build) this worker's resident program for (app, mode).
  std::string PKey = programKey(Req.App, Req.Mode);
  auto It = WS.Programs.find(PKey);
  if (It == WS.Programs.end()) {
    std::string Error;
    auto IP = makeProgram(Apps.at(Req.App), Req.App + ".bb", Req.Mode,
                          Error);
    if (!IP) {
      Finish(errorLine(true, Req.Id, "internal", Error));
      return;
    }
    It = WS.Programs.emplace(PKey, std::move(IP)).first;
  }
  interp::DslProgram &IP = *It->second;

  bool WasCached = false;
  std::string SynthError;
  auto R = getSynthesis(WS, J, IP, WasCached, SynthError);
  if (!R || !SynthError.empty()) {
    Finish(errorLine(true, Req.Id, "internal",
                     SynthError.empty() ? "synthesis failed" : SynthError));
    return;
  }

  // The final run mirrors the one-shot CLI's final-run path, wrapped in
  // the supervision loop: cancel hooks and watchdog on every attempt,
  // chaos faults with a per-request seed, and retry-from-checkpoint (the
  // CLI's --recovery=restart machinery) for damaged runs.
  machine::MachineConfig Target =
      appliedTopology(Opts.Topo, Req)
          ? machine::MachineConfig::hierarchical(Opts.Topo)
          : machine::MachineConfig::tilePro64();
  Target.NumCores = Req.Cores;
  const resilience::FaultPlan *Chaos = Opts.Chaos;
  uint64_t BaseFaultSeed =
      Chaos ? jobFaultSeed(Opts.ChaosSeed, Req.Id) : 0;
  resilience::Checkpoint LastCkpt;
  bool HaveCkpt = false;
  auto KeepCleanCkpt = [&](const resilience::Checkpoint &Ck) {
    if (!Ck.Tainted) {
      LastCkpt = Ck;
      HaveCkpt = true;
    }
  };

  for (int Attempt = 0;; ++Attempt) {
    if (PastDeadline()) {
      FinishTimeout(false, DeadlineReport());
      return;
    }
    // Clear accumulated state before every attempt: the resident program
    // carries output/error from synthesis profiling runs, earlier
    // requests, and the attempt that just failed.
    IP.clearOutput();
    IP.clearError();
    ExecReport Rep;
    bool Completed = false, WatchdogFired = false, Interrupted = false;
    std::string WatchdogDump, RestoreError;

    if (Req.Engine == EngineKind::Sim) {
      // Token-level replay: scheduling behavior only, no program output —
      // same as the CLI, whose stdout is empty under --engine=sim.
      schedsim::SimOptions SO;
      SO.Sched = Req.Sched;
      SO.Stop = &Slot.Cancel;
      SO.WatchdogCycles = Opts.WatchdogCycles;
      if (Chaos) {
        SO.Faults = Chaos;
        SO.FaultSeed = BaseFaultSeed + static_cast<uint64_t>(Attempt);
        SO.Recovery = false;
        SO.CheckpointEvery = Opts.CheckpointEvery;
        SO.OnCheckpoint = KeepCleanCkpt;
        if (Attempt > 0 && HaveCkpt)
          SO.Restore = &LastCkpt;
      }
      schedsim::SimResult S = schedsim::simulateLayout(
          IP.bound().program(), R->Graph, *R->Prof, IP.bound().hints(),
          Target, R->BestLayout, SO);
      Rep.Cycles = S.EstimatedCycles;
      Rep.Invocations = S.Invocations;
      Completed = S.Terminated;
      WatchdogFired = S.WatchdogFired;
      WatchdogDump = std::move(S.WatchdogDump);
      Interrupted = S.Interrupted;
      RestoreError = std::move(S.RestoreError);
    } else if (Req.Engine == EngineKind::Thread) {
      runtime::ThreadExecOptions TO;
      TO.Args = Req.Args;
      TO.Seed = Req.Seed;
      TO.Sched = Req.Sched;
      TO.Stop = &Slot.Cancel;
      // The host engine has no virtual clock; it reads the same knob as
      // milliseconds (the CLI's --watchdog-cycles pun) and checkpoints
      // by invocation count.
      TO.WatchdogMs = static_cast<int64_t>(Opts.WatchdogCycles);
      if (Chaos) {
        TO.Faults = Chaos;
        TO.FaultSeed = BaseFaultSeed + static_cast<uint64_t>(Attempt);
        TO.Recovery = false;
        TO.CheckpointEveryInvocations = Opts.CheckpointEvery;
        TO.OnCheckpoint = KeepCleanCkpt;
        if (Attempt > 0 && HaveCkpt)
          TO.Restore = &LastCkpt;
      }
      runtime::ThreadExecutor Exec(IP.bound(), R->Graph, R->BestLayout);
      runtime::ThreadExecResult TR = Exec.run(TO);
      Rep.Output = IP.output();
      Rep.Invocations = TR.TaskInvocations;
      // The host engine has wall time, not virtual cycles.
      Rep.Cycles = 0;
      Completed = TR.Completed;
      WatchdogFired = TR.WatchdogFired;
      WatchdogDump = std::move(TR.WatchdogDump);
      Interrupted = TR.Interrupted;
      RestoreError = std::move(TR.RestoreError);
    } else {
      runtime::TileExecutor Exec(IP.bound(), R->Graph, Target,
                                 R->BestLayout);
      runtime::ExecOptions EO;
      EO.Args = Req.Args;
      EO.Seed = Req.Seed;
      EO.Sched = Req.Sched;
      EO.Stop = &Slot.Cancel;
      EO.WatchdogCycles = Opts.WatchdogCycles;
      if (Chaos) {
        EO.Faults = Chaos;
        EO.FaultSeed = BaseFaultSeed + static_cast<uint64_t>(Attempt);
        EO.Recovery = false;
        EO.CheckpointEvery = Opts.CheckpointEvery;
        EO.OnCheckpoint = KeepCleanCkpt;
        if (Attempt > 0 && HaveCkpt)
          EO.Restore = &LastCkpt;
      }
      runtime::ExecResult FR = Exec.run(EO);
      Rep.Output = IP.output();
      Rep.Cycles = FR.TotalCycles;
      Rep.Invocations = FR.TaskInvocations;
      Completed = FR.Completed;
      WatchdogFired = FR.WatchdogFired;
      WatchdogDump = std::move(FR.WatchdogDump);
      Interrupted = FR.Interrupted;
      RestoreError = std::move(FR.RestoreError);
    }

    if (!RestoreError.empty()) {
      // In-memory snapshots come from the same program and layout, so
      // this is a server bug, not a client mistake.
      Finish(errorLine(true, Req.Id, "internal",
                       "checkpoint restore failed: " + RestoreError));
      return;
    }
    if (WatchdogFired) {
      // Cap the attached dump: it is a diagnostic aid, not a payload.
      if (WatchdogDump.size() > 4000) {
        WatchdogDump.resize(4000);
        WatchdogDump += "\n[truncated]";
      }
      FinishTimeout(true, WatchdogDump);
      return;
    }
    if (Interrupted) {
      // The only Stop source for a serve job is the supervisor's
      // deadline cancel (drain never cancels running jobs).
      FinishTimeout(false, DeadlineReport());
      return;
    }
    if (IP.hadError()) {
      // A DSL runtime error is deterministic program behavior, not fault
      // damage: retrying would burn workers to reach the same state.
      Finish(errorLine(true, Req.Id, "runtime-error", IP.error()));
      return;
    }
    if (Completed) {
      uint64_t LatencyUs = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - J.Admitted)
              .count());
      Ok = true;
      Finish(successLine(Req, Rep, LatencyUs, WorkerIdx, WasCached,
                         static_cast<uint64_t>(Attempt)));
      return;
    }

    // Damaged run (raw chaos faults, or an event-cap abort). Re-run from
    // the last clean checkpoint with a bumped fault seed, like the CLI's
    // --recovery=restart, until the request's retry budget is gone.
    if (Attempt < MaxRetries) {
      {
        std::lock_guard<std::mutex> S(StatsM);
        ++Stats.Retries;
      }
      if (Opts.Trace)
        Opts.Trace->jobRetry(nowUs(), WorkerIdx,
                             static_cast<int64_t>(Req.Id),
                             static_cast<uint64_t>(Attempt) + 1);
      continue;
    }
    if (Opts.QuarantineMs > 0) {
      {
        std::lock_guard<std::mutex> L(QuarM);
        Quarantine[quarantineKey(Req)] =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(Opts.QuarantineMs);
      }
      {
        std::lock_guard<std::mutex> S(StatsM);
        ++Stats.Quarantined;
      }
      if (Opts.Trace)
        Opts.Trace->jobQuarantine(nowUs(), WorkerIdx,
                                  static_cast<int64_t>(Req.Id));
    }
    {
      std::lock_guard<std::mutex> S(StatsM);
      ++Stats.RetriesExhausted;
    }
    Finish(errorLine(
        true, Req.Id, "retries-exhausted",
        formatString("run did not complete after %d attempt(s)%s",
                     Attempt + 1,
                     Chaos ? " under injected faults" : ""),
        -1, std::string(), Attempt + 1));
    return;
  }
}
