//===- serve/Json.h - Minimal JSON for the serve protocol -------*- C++ -*-===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value type plus parser and serializer, sized for the
/// job-server's line-delimited protocol. Deliberately minimal rather
/// than general:
///
///   - integers that fit uint64_t are kept exact (seeds and request ids
///     must round-trip without floating-point loss);
///   - objects preserve insertion order, so serialization is
///     deterministic and responses diff cleanly in tests;
///   - the parser rejects trailing garbage, making "one line = one
///     document" enforceable at the protocol layer.
///
/// No dependencies beyond the standard library; the trace exporter keeps
/// its own hand-rolled emitter (it predates this and is hot-path).
///
//===----------------------------------------------------------------------===//

#ifndef BAMBOO_SERVE_JSON_H
#define BAMBOO_SERVE_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace bamboo::serve {

class Json;

/// Insertion-ordered key/value list (objects are tiny; linear lookup).
using JsonObject = std::vector<std::pair<std::string, Json>>;
using JsonArray = std::vector<Json>;

class Json {
public:
  enum class Kind : uint8_t { Null, Bool, UInt, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  Json(std::nullptr_t) : K(Kind::Null) {}
  Json(bool B) : K(Kind::Bool), BoolV(B) {}
  Json(uint64_t N) : K(Kind::UInt), UIntV(N) {}
  Json(int N);
  Json(double D) : K(Kind::Double), DoubleV(D) {}
  Json(std::string S) : K(Kind::String), StringV(std::move(S)) {}
  Json(const char *S) : K(Kind::String), StringV(S) {}
  Json(JsonArray A);
  Json(JsonObject O);

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  /// True for any number; isUInt() additionally means the exact-integer
  /// representation is available.
  bool isNumber() const { return K == Kind::UInt || K == Kind::Double; }
  bool isUInt() const { return K == Kind::UInt; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return BoolV; }
  uint64_t uint() const { return UIntV; }
  double number() const {
    return K == Kind::UInt ? static_cast<double>(UIntV) : DoubleV;
  }
  const std::string &str() const { return StringV; }
  const JsonArray &array() const { return *ArrayV; }
  const JsonObject &object() const { return *ObjectV; }

  /// Object field lookup; null when absent or not an object.
  const Json *find(const std::string &Key) const;

  /// Compact, deterministic serialization (no whitespace; object fields
  /// in insertion order; strings escaped to pure-ASCII JSON).
  std::string dump() const;

  /// Parses exactly one JSON document spanning all of \p Text (trailing
  /// whitespace allowed, anything else is an error). Returns false and
  /// fills \p Error on malformed input.
  static bool parse(const std::string &Text, Json &Out, std::string &Error);

  /// Escapes \p S into a double-quoted JSON string literal.
  static std::string quote(const std::string &S);

private:
  Kind K;
  bool BoolV = false;
  uint64_t UIntV = 0;
  double DoubleV = 0.0;
  std::string StringV;
  // Indirection keeps Json movable while recursive.
  std::shared_ptr<JsonArray> ArrayV;
  std::shared_ptr<JsonObject> ObjectV;
};

} // namespace bamboo::serve

#endif // BAMBOO_SERVE_JSON_H
