//===- examples/quickstart.cpp - Bamboo embedded-API quickstart ------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: the keyword-counting example of Section 2 of the Bamboo
/// paper, written against the embedded C++ API. It shows the full
/// lifecycle a Bamboo application goes through:
///
///   1. declare classes with abstract-state flags, tasks with parameter
///      guards, task exits, and allocation sites (ir::ProgramBuilder);
///   2. attach C++ bodies to the tasks (runtime::BoundProgram);
///   3. let the compiler pipeline profile the program, synthesize a
///      many-core layout with directed simulated annealing, and execute
///      it on the virtual 62-core machine (driver::runPipeline).
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart "some text to scan for keywords"
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/ProgramBuilder.h"
#include "runtime/TaskContext.h"

#include <cstdio>
#include <memory>
#include <string>

using namespace bamboo;

namespace {

// -------------------------------------------------------------------------
// Application data. Payloads are plain structs derived from ObjectData;
// the runtime never looks inside them — abstract state lives in flags.
// -------------------------------------------------------------------------

struct TextData : runtime::ObjectData {
  std::string Section;
  int Hits = 0;
};

struct ResultsData : runtime::ObjectData {
  int Expected = 0;
  int Merged = 0;
  int Total = 0;
};

/// Counts non-overlapping occurrences of Word in Section.
int countWord(const std::string &Section, const std::string &Word) {
  int Hits = 0;
  for (size_t Pos = Section.find(Word); Pos != std::string::npos;
       Pos = Section.find(Word, Pos + 1))
    ++Hits;
  return Hits;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Input = Argc > 1
                          ? Argv[1]
                          : "the quick brown fox jumps over the lazy dog "
                            "while the cat watches the birds in the tree";
  const int Sections = 8;

  // -----------------------------------------------------------------------
  // 1. Task declarations — the exact structure of Figure 2 in the paper.
  // -----------------------------------------------------------------------
  ir::ProgramBuilder PB("keywordcount");
  ir::ClassId Startup = PB.addClass("StartupObject", {"initialstate"});
  ir::ClassId Text = PB.addClass("Text", {"process", "submit"});
  ir::ClassId Results = PB.addClass("Results", {"finished"});

  // task startup(StartupObject s in initialstate)
  ir::TaskId StartupTask = PB.addTask("startup");
  PB.addParam(StartupTask, "s", Startup, PB.flagRef(Startup, "initialstate"));
  ir::ExitId SDone = PB.addExit(StartupTask, "done");
  PB.setFlagEffect(StartupTask, SDone, 0, "initialstate", false);
  ir::SiteId TextSite =
      PB.addSite(StartupTask, Text, {"process"}, {}, "sections");
  ir::SiteId ResultsSite = PB.addSite(StartupTask, Results, {}, {}, "merge");

  // task processText(Text tp in process)
  ir::TaskId Process = PB.addTask("processText");
  PB.addParam(Process, "tp", Text, PB.flagRef(Text, "process"));
  ir::ExitId PDone = PB.addExit(Process, "done");
  PB.setFlagEffect(Process, PDone, 0, "process", false);
  PB.setFlagEffect(Process, PDone, 0, "submit", true);

  // task mergeIntermediateResult(Results rp in !finished, Text tp in submit)
  ir::TaskId Merge = PB.addTask("mergeIntermediateResult");
  PB.addParam(Merge, "rp", Results, PB.notFlag(Results, "finished"));
  PB.addParam(Merge, "tp", Text, PB.flagRef(Text, "submit"));
  ir::ExitId MAll = PB.addExit(Merge, "allprocessed");
  PB.setFlagEffect(Merge, MAll, 0, "finished", true);
  PB.setFlagEffect(Merge, MAll, 1, "submit", false);
  ir::ExitId MMore = PB.addExit(Merge, "more");
  PB.setFlagEffect(Merge, MMore, 1, "submit", false);

  PB.setStartup(Startup, "initialstate");

  // -----------------------------------------------------------------------
  // 2. Task bodies. Bodies see only their locked parameters, allocate at
  //    declared sites, meter their work in virtual cycles, and select an
  //    exit. The runtime applies the exit's flag effects and routes the
  //    transitioned objects to whatever tasks they now enable.
  // -----------------------------------------------------------------------
  runtime::BoundProgram BP(PB.take());

  BP.bind(StartupTask, [&](runtime::TaskContext &Ctx) {
    const std::string &Whole = Ctx.args().at(0);
    for (int S = 0; S < Sections; ++S) {
      size_t Lo = Whole.size() * static_cast<size_t>(S) / Sections;
      size_t Hi = Whole.size() * static_cast<size_t>(S + 1) / Sections;
      auto Data = std::make_unique<TextData>();
      Data->Section = Whole.substr(Lo, Hi - Lo);
      Ctx.allocate(TextSite, std::move(Data)); // Born in {process}.
      Ctx.charge(10);
    }
    auto Data = std::make_unique<ResultsData>();
    Data->Expected = Sections;
    Ctx.allocate(ResultsSite, std::move(Data));
    Ctx.exitWith(SDone);
  });

  BP.bind(Process, [](runtime::TaskContext &Ctx) {
    auto &Text = Ctx.paramData<TextData>(0);
    Text.Hits = countWord(Text.Section, "the");
    Ctx.charge(machine::Cycles(Text.Section.size()) * 4);
    Ctx.exitWith(0); // process := false, submit := true.
  });

  BP.bind(Merge, [MAll, MMore](runtime::TaskContext &Ctx) {
    auto &Results = Ctx.paramData<ResultsData>(0);
    auto &Text = Ctx.paramData<TextData>(1);
    Results.Total += Text.Hits;
    ++Results.Merged;
    Ctx.charge(8);
    Ctx.exitWith(Results.Merged == Results.Expected ? MAll : MMore);
  });
  BP.hintPerObjectExits(Merge);

  // -----------------------------------------------------------------------
  // 3. Profile, synthesize, optimize, execute.
  // -----------------------------------------------------------------------
  driver::PipelineOptions Opts;
  Opts.Target = machine::MachineConfig::tilePro64();
  Opts.Target.NumCores = 8; // A small machine keeps the demo readable.
  Opts.Exec.Args = {Input};
  driver::PipelineResult R = driver::runPipeline(BP, Opts);

  std::printf("synthesized layout:\n%s\n",
              R.BestLayout.str(BP.program()).c_str());
  std::printf("1-core execution:  %8llu cycles\n",
              static_cast<unsigned long long>(R.Real1Core));
  std::printf("8-core execution:  %8llu cycles  (speedup %.2fx)\n",
              static_cast<unsigned long long>(R.RealNCore),
              R.speedupVsOneCore());

  // Pull the final Results object out of the heap of the measured run.
  runtime::TileExecutor Exec(BP, R.Graph, Opts.Target, R.BestLayout);
  Exec.run(Opts.Exec);
  for (size_t I = 0; I < Exec.heap().numObjects(); ++I)
    if (auto *Final = dynamic_cast<ResultsData *>(
            Exec.heap().objectAt(I)->Data.get()))
      std::printf("\"the\" occurs %d times in the input\n", Final->Total);
  return 0;
}
