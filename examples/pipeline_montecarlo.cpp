//===- examples/pipeline_montecarlo.cpp - Synthesized pipelining -----------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's flagship anecdote (Sections 5.1, 5.6): Bamboo's
/// implementation synthesis discovered, on its own, a heterogeneous
/// MonteCarlo implementation that *pipelines* aggregation with
/// simulation. This example runs the MonteCarlo benchmark, shows where
/// the synthesizer placed the (pinned) aggregate task relative to the
/// simulate instantiations, and demonstrates the overlap by comparing
/// against an artificial two-phase schedule in which no aggregation can
/// begin until every simulation finished.
///
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "apps/MonteCarlo.h"
#include "driver/Pipeline.h"

#include <algorithm>
#include <cstdio>

using namespace bamboo;

int main() {
  auto App = apps::makeApp("MonteCarlo");
  runtime::BoundProgram BP = App->makeBound(1);
  const ir::Program &Prog = BP.program();

  driver::PipelineOptions Opts;
  Opts.Target = machine::MachineConfig::tilePro64();
  driver::PipelineResult R = driver::runPipeline(BP, Opts);

  ir::TaskId Aggregate = Prog.findTask("aggregate");
  ir::TaskId Simulate = Prog.findTask("simulate");
  std::vector<int> AggInstances = R.BestLayout.instancesOf(Aggregate);
  int AggCore = R.BestLayout.Instances[static_cast<size_t>(
                                           AggInstances.at(0))]
                    .Core;
  size_t SimInstances = R.BestLayout.instancesOf(Simulate).size();
  int SimOnAggCore = 0;
  for (const machine::TaskInstance &Inst : R.BestLayout.Instances)
    if (Inst.Task == Simulate && Inst.Core == AggCore)
      ++SimOnAggCore;

  std::printf("MonteCarlo synthesis on 62 cores:\n");
  std::printf("  simulate instantiations: %zu\n", SimInstances);
  std::printf("  aggregate pinned on core %d (%d simulate instance(s) "
              "sharing it)\n",
              AggCore, SimOnAggCore);
  std::printf("  62-core execution: %llu cycles (speedup %.1fx)\n\n",
              static_cast<unsigned long long>(R.RealNCore),
              R.speedupVsOneCore());

  // How much of the run did the aggregator core overlap with simulation?
  // Compare against the no-pipelining lower bound: all simulation first
  // (perfectly parallel), then all aggregation strictly afterwards.
  apps::MonteCarloParams P = apps::MonteCarloParams::forScale(1);
  machine::Cycles SimWork =
      static_cast<machine::Cycles>(P.Samples) *
      static_cast<machine::Cycles>(P.TimeSteps);
  machine::Cycles AggWork =
      static_cast<machine::Cycles>(P.Samples) *
      static_cast<machine::Cycles>(P.AggregateCost +
                                   static_cast<int>(
                                       Opts.Target.DispatchOverhead) +
                                   2 * static_cast<int>(
                                           Opts.Target.LockOverhead));
  machine::Cycles TwoPhase =
      SimWork / static_cast<machine::Cycles>(Opts.Target.NumCores) +
      AggWork;
  std::printf("two-phase (no pipelining) bound: %llu cycles\n",
              static_cast<unsigned long long>(TwoPhase));
  std::printf("synthesized pipelined execution: %llu cycles ",
              static_cast<unsigned long long>(R.RealNCore));
  if (R.RealNCore < TwoPhase)
    std::printf("(%.0f%% faster: aggregation overlapped simulation)\n",
                100.0 * (1.0 - static_cast<double>(R.RealNCore) /
                                   static_cast<double>(TwoPhase)));
  else
    std::printf("(no overlap found)\n");
  return 0;
}
