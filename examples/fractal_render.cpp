//===- examples/fractal_render.cpp - Mandelbrot on the many-core VM --------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the Fractal benchmark application (Mandelbrot) through the full
/// pipeline on the 62-core virtual machine, prints per-core utilization,
/// and renders a small ASCII view of the computed set — demonstrating
/// that task bodies really compute their results while the discrete-event
/// machine accounts their cost.
///
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "apps/Fractal.h"
#include "driver/Pipeline.h"

#include <cstdio>

using namespace bamboo;

namespace {

/// A tiny stand-alone ASCII rendering (independent of the benchmark's
/// parameters, just for show).
void renderAscii() {
  const int W = 72, H = 24, MaxIter = 48;
  const char *Shades = " .:-=+*#%@";
  for (int Row = 0; Row < H; ++Row) {
    for (int Col = 0; Col < W; ++Col) {
      double Cx = -2.2 + 3.2 * Col / W;
      double Cy = -1.2 + 2.4 * Row / H;
      double X = 0, Y = 0;
      int It = 0;
      while (X * X + Y * Y <= 4.0 && It < MaxIter) {
        double Xn = X * X - Y * Y + Cx;
        Y = 2 * X * Y + Cy;
        X = Xn;
        ++It;
      }
      std::putchar(Shades[(It * 9) / MaxIter]);
    }
    std::putchar('\n');
  }
}

} // namespace

int main() {
  renderAscii();

  auto App = apps::makeApp("Fractal");
  apps::BaselineResult Base = App->runBaseline(1);
  runtime::BoundProgram BP = App->makeBound(1);

  driver::PipelineOptions Opts;
  Opts.Target = machine::MachineConfig::tilePro64();
  driver::PipelineResult R = driver::runPipeline(BP, Opts);

  std::printf("\nFractal benchmark on the 62-core virtual TILEPro64:\n");
  std::printf("  1-core C baseline: %llu cycles\n",
              static_cast<unsigned long long>(Base.MeteredCycles));
  std::printf("  1-core Bamboo:     %llu cycles\n",
              static_cast<unsigned long long>(R.Real1Core));
  std::printf("  62-core Bamboo:    %llu cycles (speedup %.1fx)\n",
              static_cast<unsigned long long>(R.RealNCore),
              R.speedupVsOneCore());

  // Utilization of the measured run.
  runtime::TileExecutor Exec(BP, R.Graph, Opts.Target, R.BestLayout);
  runtime::ExecResult Run = Exec.run(runtime::ExecOptions{});
  std::printf("  checksum matches baseline: %s\n",
              App->checksumFromHeap(Exec.heap()) == Base.Checksum ? "yes"
                                                                  : "NO");
  std::printf("\nper-core busy fraction (one char per core, 0-9):\n  ");
  for (machine::Cycles Busy : Run.CoreBusy) {
    int Digit = static_cast<int>(10.0 * static_cast<double>(Busy) /
                                 static_cast<double>(Run.TotalCycles));
    std::putchar(static_cast<char>('0' + (Digit > 9 ? 9 : Digit)));
  }
  std::putchar('\n');
  return 0;
}
