// Monte-Carlo kernel: each Walker draws a seeded pseudo-random point
// stream (Bamboo.rand is deterministic per task invocation), counts
// hits inside the unit circle, and prices a toy log-normal payoff.
// Integer hit counts merge exactly in any order; the per-walker payoff
// means are slotted by walker index and reduced in index order, so the
// printed results are identical on every engine and schedule.
//
//   bamboo montecarlo.bb --run --cores=8

class Walker {
  flag walk;
  flag done;
  int index;
  int samples;
  int hits;
  double payoff;

  Walker(int idx, int n) {
    index = idx;
    samples = n;
    hits = 0;
    payoff = 0.0;
  }

  void simulate() {
    double acc = 0.0;
    for (int i = 0; i < samples; i = i + 1) {
      double x = Bamboo.rand(65536) / 65536.0;
      double y = Bamboo.rand(65536) / 65536.0;
      if (x * x + y * y <= 1.0) {
        hits = hits + 1;
      }
      // Toy geometric-Brownian endpoint: exp of a drifted uniform,
      // clipped into the log's domain.
      double u = x + 0.0001;
      double z = Math.exp(0.05 + 0.2 * Math.log(u));
      acc = acc + Math.sqrt(z * z + y);
    }
    payoff = acc / samples;
    Bamboo.charge(samples * 8);
  }
}

class Pricer {
  flag open;
  int expected;
  int merged;
  int totalhits;
  int totalsamples;
  double[] means;

  Pricer(int n) {
    expected = n;
    merged = 0;
    totalhits = 0;
    totalsamples = 0;
    means = new double[n];
  }

  boolean fold(Walker w) {
    totalhits = totalhits + w.hits;
    totalsamples = totalsamples + w.samples;
    means[w.index] = w.payoff;
    merged = merged + 1;
    return merged == expected;
  }

  double meanPayoff() {
    double t = 0.0;
    for (int i = 0; i < expected; i = i + 1) {
      t = t + means[i];
    }
    return t / expected;
  }
}

task startup(StartupObject s in initialstate) {
  int walkers = 6;
  int per = 200;
  if (s.args.length > 0) {
    per = per * s.args[0].length();
  }
  for (int w = 0; w < walkers; w = w + 1) {
    Walker wk = new Walker(w, per) { walk := true };
  }
  Pricer p = new Pricer(walkers) { open := true };
  taskexit(s: initialstate := false);
}

task simulate(Walker w in walk) {
  w.simulate();
  taskexit(w: walk := false, done := true);
}

task price(Pricer p in open, Walker w in done) {
  boolean all = p.fold(w);
  if (all) {
    System.printString("mc hits: ");
    System.printInt(p.totalhits);
    System.printString(" of ");
    System.printInt(p.totalsamples);
    System.printString(" payoff: ");
    System.printDouble(p.meanPayoff());
    taskexit(p: open := false; w: done := false);
  }
  taskexit(w: done := false);
}
