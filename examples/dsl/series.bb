// Fourier series coefficients (the Series kernel of the paper's
// benchmark suite). The startup task splits the coefficient range over
// Range worker objects; each computeRange invocation integrates its
// slice by the trapezoid rule, and the collector folds the per-worker
// partial sums in worker order so the printed checksum is independent
// of merge order.
//
//   bamboo series.bb --run --cores=8

class Range {
  flag compute;
  flag done;
  int index;
  int first;
  int count;
  double sum;

  Range(int idx, int f, int n) {
    index = idx;
    first = f;
    count = n;
    sum = 0.0;
  }

  // 64-interval trapezoid rule for the k-th Fourier coefficient of
  // f(x) = (x+1)^x over [0,2].
  double integrate(int k, boolean cosine) {
    int intervals = 64;
    double width = 2.0 / intervals;
    double total = 0.0;
    for (int i = 0; i <= intervals; i = i + 1) {
      double x = width * i;
      double fx = Math.pow(x + 1.0, x);
      if (k > 0) {
        double omega = 3.141592653589793 * k * x;
        if (cosine) {
          fx = fx * Math.cos(omega);
        } else {
          fx = fx * Math.sin(omega);
        }
      }
      if (i == 0 || i == intervals) {
        fx = fx * 0.5;
      }
      total = total + fx;
    }
    return total * width;
  }

  void computeSlice() {
    int stop = first + count;
    for (int k = first; k < stop; k = k + 1) {
      sum = sum + integrate(k, true);
      if (k > 0) {
        sum = sum + integrate(k, false);
      }
    }
    Bamboo.charge(count * 16);
  }
}

class Collector {
  flag open;
  int expected;
  int merged;
  double[] slices;

  Collector(int n) {
    expected = n;
    merged = 0;
    slices = new double[n];
  }

  boolean fold(Range r) {
    // Slot the partial sum by worker index: the final reduction below
    // runs in index order, so the checksum does not depend on which
    // worker merged first.
    slices[r.index] = r.sum;
    merged = merged + 1;
    return merged == expected;
  }

  double total() {
    double t = 0.0;
    for (int i = 0; i < expected; i = i + 1) {
      t = t + slices[i];
    }
    return t;
  }
}

task startup(StartupObject s in initialstate) {
  int workers = 4;
  int per = 6;
  if (s.args.length > 0) {
    per = per + s.args[0].length();
  }
  for (int w = 0; w < workers; w = w + 1) {
    Range r = new Range(w, w * per, per) { compute := true };
  }
  Collector c = new Collector(workers) { open := true };
  taskexit(s: initialstate := false);
}

task computeRange(Range r in compute) {
  r.computeSlice();
  taskexit(r: compute := false, done := true);
}

task collect(Collector c in open, Range r in done) {
  boolean all = c.fold(r);
  if (all) {
    System.printString("series checksum: ");
    System.printDouble(c.total());
    taskexit(c: open := false; r: done := false);
  }
  taskexit(r: done := false);
}
