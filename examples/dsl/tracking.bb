// Feature tracking (the vision pipeline of the paper's benchmark
// suite): each Frame fans out into feature Patch objects linked back to
// their frame by a tag instance, the gradient pass scores every patch,
// and the accumulate task uses the tag constraint to fold each patch
// into exactly the frame that spawned it. Per-frame motion scores are
// slotted by frame index and reported in index order.
//
//   bamboo tracking.bb --run --cores=8

tagtype framelink;

class Patch {
  flag raw;
  flag scored;
  int index;
  int n;
  int[] pixels;
  int score;

  Patch(int idx, int size, int seed) {
    index = idx;
    n = size;
    pixels = new int[size];
    for (int i = 0; i < size; i = i + 1) {
      pixels[i] = (seed + i * i * 7) - ((seed + i * i * 7) / 256) * 256;
    }
    score = 0;
  }

  void gradient() {
    for (int i = 0; i + 1 < n; i = i + 1) {
      score = score + Math.abs(pixels[i + 1] - pixels[i]);
    }
    Bamboo.charge(n * 3);
  }
}

class Frame {
  flag open;
  flag summed;
  int index;
  String label;
  int expected;
  int psize;
  int folded;
  int motion;

  Frame(int idx, String name, int patches, int size) {
    index = idx;
    label = name;
    expected = patches;
    psize = size;
    folded = 0;
    motion = 0;
  }

  boolean fold(Patch p) {
    motion = motion + p.score;
    folded = folded + 1;
    return folded == expected;
  }

  // Checksum the label so the string builtins feed the printed result:
  // sum of character codes, plus a marker when this is the key frame.
  int labelChecksum() {
    int sum = 0;
    for (int i = 0; i < label.length(); i = i + 1) {
      sum = sum + label.charAt(i);
    }
    if (label.equals("key")) {
      sum = sum + 10000;
    }
    return sum;
  }
}

class Tracker {
  flag waiting;
  int expected;
  int merged;
  int[] motions;
  int[] labels;

  Tracker(int frames) {
    expected = frames;
    merged = 0;
    motions = new int[frames];
    labels = new int[frames];
  }

  boolean fold(Frame f) {
    motions[f.index] = f.motion;
    labels[f.index] = f.labelChecksum();
    merged = merged + 1;
    return merged == expected;
  }

  void report() {
    System.printString("tracking motion:");
    for (int i = 0; i < expected; i = i + 1) {
      System.printString(" ");
      System.printInt(motions[i]);
      System.printString("/");
      System.printInt(labels[i]);
    }
  }
}

task startup(StartupObject s in initialstate) {
  int frames = 3;
  int patches = 4;
  int size = 64;
  if (s.args.length > 0) {
    size = size * s.args[0].length();
  }
  // Frame names come from a packed string; the key frame is the one
  // whose token reads "key".
  String names = "key pan tilt";
  int cursor = 0;
  for (int f = 0; f < frames; f = f + 1) {
    int stop = names.indexOf(" ", cursor);
    if (stop < 0) {
      stop = names.length();
    }
    String name = names.substring(cursor, stop);
    cursor = stop + 1;
    Frame fr = new Frame(f, name, patches, size) { open := true };
  }
  Tracker tr = new Tracker(frames) { waiting := true };
  taskexit(s: initialstate := false);
}

task spawnPatches(Frame f in open and !summed) {
  tag t = new tag(framelink);
  for (int p = 0; p < f.expected; p = p + 1) {
    Patch pt = new Patch(p, f.psize, f.index * 100 + p * 17) { raw := true, add t };
  }
  taskexit(f: summed := true, add t);
}

task gradient(Patch p in raw) {
  p.gradient();
  taskexit(p: raw := false, scored := true);
}

task accumulate(Frame f in open with framelink t,
                Patch p in scored with framelink t) {
  boolean all = f.fold(p);
  if (all) {
    taskexit(f: open := false, clear t; p: scored := false, clear t);
  }
  taskexit(p: scored := false, clear t);
}

task report(Tracker tr in waiting, Frame f in !open and summed) {
  boolean all = tr.fold(f);
  if (all) {
    tr.report();
    taskexit(tr: waiting := false; f: summed := false);
  }
  taskexit(f: summed := false);
}
