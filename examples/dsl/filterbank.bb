// Multirate filter bank: one shared input signal fans out to per-band
// worker objects, each running a two-stage FIR cascade (convolve,
// downsample, convolve) over its own coefficient matrix, and the sink
// slots each band's output energy by band index so the report is
// independent of completion order.
//
//   bamboo filterbank.bb --run --cores=8

class Band {
  flag filter;
  flag done;
  int index;
  int taps;
  int decim;
  double[] signal;
  double[][] coeff;
  double energy;
  double peak;

  Band(int idx, double[] sig, int t) {
    index = idx;
    taps = t;
    decim = 4;
    signal = sig;
    energy = 0.0;
    peak = 0.0;
    coeff = new double[2][t];
    for (int stage = 0; stage < 2; stage = stage + 1) {
      for (int j = 0; j < t; j = j + 1) {
        coeff[stage][j] = Math.cos(0.3 * (idx + 1) * (stage + 1) * j) / t;
      }
    }
  }

  double convolveAt(int stage, double[] data, int at) {
    double acc = 0.0;
    for (int j = 0; j < taps; j = j + 1) {
      int src = at - j;
      if (src >= 0) {
        acc = acc + coeff[stage][j] * data[src];
      }
    }
    return acc;
  }

  void run() {
    int n = signal.length;
    int half = n / decim;
    double[] mid = new double[half];
    for (int i = 0; i < half; i = i + 1) {
      mid[i] = convolveAt(0, signal, i * decim);
    }
    for (int i = 0; i < half; i = i + 1) {
      double y = convolveAt(1, mid, i);
      energy = energy + y * y;
      peak = Math.max(peak, Math.min(y, 1000.0));
    }
    Bamboo.charge(half * taps * 2);
  }
}

class Sink {
  flag open;
  int expected;
  int merged;
  double[] energies;
  double[] peaks;

  Sink(int n) {
    expected = n;
    merged = 0;
    energies = new double[n];
    peaks = new double[n];
  }

  boolean fold(Band b) {
    energies[b.index] = b.energy;
    peaks[b.index] = b.peak;
    merged = merged + 1;
    return merged == expected;
  }

  void report() {
    System.printString("filterbank energies:");
    for (int i = 0; i < expected; i = i + 1) {
      System.printString(" ");
      System.printDouble(energies[i]);
      System.printString("/");
      System.printDouble(peaks[i]);
    }
  }
}

task startup(StartupObject s in initialstate) {
  int bands = 4;
  int n = 128;
  if (s.args.length > 0) {
    n = n * s.args[0].length();
  }
  double[] signal = new double[n];
  for (int i = 0; i < n; i = i + 1) {
    signal[i] = Math.sin(0.02 * i) + 0.5 * Math.sin(0.11 * i);
  }
  for (int b = 0; b < bands; b = b + 1) {
    Band bd = new Band(b, signal, 8) { filter := true };
  }
  Sink k = new Sink(bands) { open := true };
  taskexit(s: initialstate := false);
}

task runBand(Band b in filter) {
  b.run();
  taskexit(b: filter := false, done := true);
}

task drain(Sink k in open, Band b in done) {
  boolean all = k.fold(b);
  if (all) {
    k.report();
    taskexit(k: open := false; b: done := false);
  }
  taskexit(b: done := false);
}
