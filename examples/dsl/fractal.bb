// Mandelbrot fractal renderer: the image is split into row objects,
// each escape-time loop uses break to bail out of the iteration and
// continue to skip the interlaced columns, and the integer iteration
// checksum merges exactly in any order.
//
//   bamboo fractal.bb --run --cores=8

class Row {
  flag render;
  flag done;
  int y;
  int width;
  int height;
  int maxiter;
  int checksum;

  Row(int line, int w, int h) {
    y = line;
    width = w;
    height = h;
    maxiter = 64;
    checksum = 0;
  }

  void renderLine() {
    double ci = -1.2 + 2.4 * y / height;
    for (int x = 0; x < width; x = x + 1) {
      // Interlace: every fourth column is skipped (rendered by a
      // cheaper pass in the real application).
      if (x - (x / 4) * 4 == 3) {
        continue;
      }
      double cr = -2.0 + 3.0 * x / width;
      double zr = 0.0;
      double zi = 0.0;
      int iter = 0;
      while (iter < maxiter) {
        double zr2 = zr * zr;
        double zi2 = zi * zi;
        if (zr2 + zi2 > 4.0) {
          break;
        }
        zi = 2.0 * zr * zi + ci;
        zr = zr2 - zi2 + cr;
        iter = iter + 1;
      }
      checksum = checksum + iter * (x + 1);
    }
    Bamboo.charge(width * 8);
  }
}

class Canvas {
  flag open;
  int expected;
  int merged;
  int total;

  Canvas(int rows) {
    expected = rows;
    merged = 0;
    total = 0;
  }

  boolean fold(Row r) {
    total = total + r.checksum;
    merged = merged + 1;
    return merged == expected;
  }
}

task startup(StartupObject s in initialstate) {
  int width = 48;
  int height = 12;
  if (s.args.length > 0) {
    height = height * s.args[0].length();
  }
  for (int y = 0; y < height; y = y + 1) {
    Row r = new Row(y, width, height) { render := true };
  }
  Canvas c = new Canvas(height) { open := true };
  taskexit(s: initialstate := false);
}

task renderRow(Row r in render) {
  r.renderLine();
  taskexit(r: render := false, done := true);
}

task compose(Canvas c in open, Row r in done) {
  boolean all = c.fold(r);
  if (all) {
    System.printString("fractal checksum: ");
    System.printInt(c.total);
    taskexit(c: open := false; r: done := false);
  }
  taskexit(r: done := false);
}
