// K-means clustering over 2-D points, iterated through the flag state
// machine: assign (per-chunk nearest-centroid pass, in parallel) ->
// merge (fold per-chunk partial sums into per-chunk slots) -> rearm
// (broadcast the recomputed centroids and start the next iteration).
// Partial sums are slotted by chunk index and reduced in index order,
// so the centroids are bit-identical on every engine and schedule.
//
//   bamboo kmeans.bb --run --cores=8

class Chunk {
  flag process;
  flag submit;
  flag parked;
  int index;
  int n;
  int k;
  double[] px;
  double[] py;
  double[] cx;
  double[] cy;
  double[] sumx;
  double[] sumy;
  int[] cnt;

  Chunk(int idx, int points, int clusters) {
    index = idx;
    n = points;
    k = clusters;
    px = new double[points];
    py = new double[points];
    cx = new double[clusters];
    cy = new double[clusters];
    sumx = new double[clusters];
    sumy = new double[clusters];
    cnt = new int[clusters];
    for (int i = 0; i < points; i = i + 1) {
      px[i] = Bamboo.rand(1000) / 100.0;
      py[i] = Bamboo.rand(1000) / 100.0;
    }
    for (int c = 0; c < clusters; c = c + 1) {
      cx[c] = 1.0 + 3.0 * c;
      cy[c] = 9.0 - 3.0 * c;
    }
  }

  void assignPoints() {
    for (int c = 0; c < k; c = c + 1) {
      sumx[c] = 0.0;
      sumy[c] = 0.0;
      cnt[c] = 0;
    }
    for (int i = 0; i < n; i = i + 1) {
      int best = 0;
      double bestd = 1000000.0;
      for (int c = 0; c < k; c = c + 1) {
        double dx = px[i] - cx[c];
        double dy = py[i] - cy[c];
        double d = Math.sqrt(dx * dx + dy * dy);
        if (d < bestd) {
          bestd = d;
          best = c;
        }
      }
      sumx[best] = sumx[best] + px[i];
      sumy[best] = sumy[best] + py[i];
      cnt[best] = cnt[best] + 1;
    }
    Bamboo.charge(n * k * 4);
  }
}

class Controller {
  flag merging;
  flag update;
  int k;
  int chunks;
  int iter;
  int maxiter;
  int merged;
  int armed;
  double[] cx;
  double[] cy;
  double[][] slotx;
  double[][] sloty;
  int[][] slotn;

  Controller(int clusters, int workers, int iterations) {
    k = clusters;
    chunks = workers;
    iter = 0;
    maxiter = iterations;
    merged = 0;
    armed = 0;
    cx = new double[clusters];
    cy = new double[clusters];
    slotx = new double[clusters][workers];
    sloty = new double[clusters][workers];
    slotn = new int[clusters][workers];
    for (int c = 0; c < clusters; c = c + 1) {
      cx[c] = 1.0 + 3.0 * c;
      cy[c] = 9.0 - 3.0 * c;
    }
  }

  boolean fold(Chunk ch) {
    for (int c = 0; c < k; c = c + 1) {
      slotx[c][ch.index] = ch.sumx[c];
      sloty[c][ch.index] = ch.sumy[c];
      slotn[c][ch.index] = ch.cnt[c];
    }
    merged = merged + 1;
    return merged == chunks;
  }

  void recompute() {
    for (int c = 0; c < k; c = c + 1) {
      double tx = 0.0;
      double ty = 0.0;
      int tn = 0;
      for (int w = 0; w < chunks; w = w + 1) {
        tx = tx + slotx[c][w];
        ty = ty + sloty[c][w];
        tn = tn + slotn[c][w];
      }
      if (tn > 0) {
        cx[c] = tx / tn;
        cy[c] = ty / tn;
      }
    }
    iter = iter + 1;
    armed = 0;
  }

  boolean armWorker(Chunk ch) {
    for (int c = 0; c < k; c = c + 1) {
      ch.cx[c] = cx[c];
      ch.cy[c] = cy[c];
    }
    armed = armed + 1;
    return armed == chunks;
  }

  void report() {
    System.printString("kmeans centroids:");
    for (int c = 0; c < k; c = c + 1) {
      System.printString(" ");
      System.printDouble(cx[c]);
      System.printString(",");
      System.printDouble(cy[c]);
    }
  }
}

task startup(StartupObject s in initialstate) {
  int workers = 4;
  int clusters = 3;
  int points = 32;
  if (s.args.length > 0) {
    points = points * s.args[0].length();
  }
  for (int w = 0; w < workers; w = w + 1) {
    Chunk ch = new Chunk(w, points, clusters) { process := true };
  }
  Controller c = new Controller(clusters, workers, 3) { merging := true };
  taskexit(s: initialstate := false);
}

task assign(Chunk ch in process) {
  ch.assignPoints();
  taskexit(ch: process := false, submit := true);
}

task merge(Controller c in merging, Chunk ch in submit) {
  boolean all = c.fold(ch);
  if (all) {
    c.recompute();
    taskexit(c: merging := false, update := true;
             ch: submit := false, parked := true);
  }
  taskexit(ch: submit := false, parked := true);
}

task rearm(Controller c in update, Chunk ch in parked) {
  boolean last = c.armWorker(ch);
  boolean more = c.iter < c.maxiter;
  if (last) {
    if (more) {
      c.merged = 0;
      taskexit(c: update := false, merging := true;
               ch: parked := false, process := true);
    }
    c.report();
    taskexit(c: update := false; ch: parked := false);
  }
  if (more) {
    taskexit(ch: parked := false, process := true);
  }
  taskexit(ch: parked := false);
}
