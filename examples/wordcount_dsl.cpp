//===- examples/wordcount_dsl.cpp - The DSL path end to end ----------------===//
//
// Part of the Bamboo reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The same keyword-counting application as examples/quickstart.cpp, but
/// written in the Bamboo *language* and pushed through the whole compiler:
/// lexer, parser, semantic analysis, disjointness analysis, dependence
/// analysis (printed as the Figure-3 CSTG), lock planning, implementation
/// synthesis, and execution via the task-body interpreter.
///
/// Run:
///   ./build/examples/wordcount_dsl "text to scan"
///
//===----------------------------------------------------------------------===//

#include "analysis/Disjoint.h"
#include "driver/KeywordExample.h"
#include "driver/Pipeline.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"

#include <cstdio>

using namespace bamboo;

int main(int Argc, char **Argv) {
  std::string Input = Argc > 1
                          ? Argv[1]
                          : "the cat sat on the mat and the dog slept by "
                            "the door of the old house";

  // ---- Frontend: source text to typed AST + task-level IR. ----
  frontend::DiagnosticEngine Diags;
  auto CM = frontend::compileString(driver::KeywordCountSource,
                                    "keywordcount.bb", Diags);
  if (!CM) {
    std::fprintf(stderr, "%s", Diags.render("keywordcount.bb").c_str());
    return 1;
  }
  std::printf("--- task-level IR ---\n%s\n", CM->Prog.str().c_str());

  // ---- Disjointness analysis: lock plans for transactional tasks. ----
  analysis::analyzeDisjointness(*CM);
  auto Locks = analysis::buildLockPlans(CM->Prog);
  std::printf("--- lock plans ---\n%s\n",
              analysis::lockPlanSummary(CM->Prog, Locks).c_str());

  // ---- Dependence analysis: the combined state transition graph. ----
  analysis::Cstg Graph = analysis::buildCstg(CM->Prog);
  std::printf("--- CSTG (Figure 3; render with `dot -Tpng`) ---\n%s\n",
              Graph.toDot(CM->Prog).c_str());

  // ---- Bind the interpreter and run the full synthesis pipeline. ----
  interp::InterpProgram IP(std::move(*CM));
  driver::PipelineOptions Opts;
  Opts.Target = machine::MachineConfig::tilePro64();
  Opts.Target.NumCores = 4;
  Opts.Exec.Args = {Input};
  driver::PipelineResult R = driver::runPipeline(IP.bound(), Opts);

  std::printf("--- synthesized quad-core layout (Figure 4) ---\n%s\n",
              R.BestLayout.str(IP.bound().program()).c_str());

  IP.clearOutput();
  runtime::TileExecutor Exec(IP.bound(), R.Graph, Opts.Target, R.BestLayout);
  Exec.run(Opts.Exec);
  std::printf("--- program output ---\n%s\n", IP.output().c_str());
  std::printf("1 core: %llu cycles; 4 cores: %llu cycles (speedup %.2fx)\n",
              static_cast<unsigned long long>(R.Real1Core),
              static_cast<unsigned long long>(R.RealNCore),
              R.speedupVsOneCore());
  return IP.hadError() ? 1 : 0;
}
